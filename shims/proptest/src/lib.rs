//! Offline, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `proptest` crate cannot be fetched. This shim keeps the property
//! tests runnable: it implements the same surface — the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/vec/`Just`
//! strategies, [`arbitrary::any`], and [`test_runner::ProptestConfig`] —
//! with a deterministic seeded case runner instead of the real crate's
//! shrinking engine. Failing cases report their case number and seed so they
//! reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case execution: config, RNG, and error plumbing for the macros.
pub mod test_runner {
    /// Deterministic xoshiro256++ generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed (splitmix64 expansion).
        pub fn from_seed(state: u64) -> Self {
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Returns the next random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }
    }

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion carrying its message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Stable per-case seed derived from the test identity and case index.
    pub fn case_seed(module: &str, test: &str, case: u32) -> u64 {
        // FNV-1a over the identity, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (helper used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Weighted union of same-valued strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Creates a union from weighted boxed arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum covers all draws")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start <= self.end, "inverted range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible vector lengths: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test]` fn runs its body over many
/// generated cases. Failures report the case number and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(
                    module_path!(),
                    stringify!($name),
                    __case,
                );
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {} (seed {:#x}): {}",
                        stringify!($name),
                        __case,
                        __seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a != __b, "assertion failed: both sides equal `{:?}`", __a);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5.0..6.0f64), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5.0..6.0).contains(&b), "b = {b}");
            let _ = flag;
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0u32..5).prop_map(|x| x * 2), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![3 => Just(1u8), 1 => 5u8..7]) {
            prop_assert!(x == 1 || x == 5 || x == 6, "x = {x}");
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 0u64..100) {
            prop_assert!(n < 100);
        }
    }

    #[test]
    fn failing_case_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x = {x}");
                }
            }
            always_fails();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("seed"), "message was: {msg}");
    }
}
