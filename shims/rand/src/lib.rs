//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` crate cannot be fetched. This shim provides the same call
//! surface (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`) backed
//! by a deterministic xoshiro256++ generator seeded through splitmix64.
//! Determinism is a feature here: every dataset generator and sampler in the
//! workspace seeds explicitly, so runs are reproducible across machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's native output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference: `Range<T>` links directly to `T` through one generic impl).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "cannot sample inverted range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Convenience draws layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real
    /// `StdRng`; statistical quality is more than adequate for data
    /// generation and sampling estimators).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extension methods, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0..=4u32);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!([1, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
