//! Differential suite for the spatial sharding layer: a histogram
//! partitioned into per-shard sub-histograms behind the partition router
//! (`ShardedHistogram::estimate_count_sharded`) must be **bit-identical**
//! to the unsharded linear reference (`SpatialEstimator::estimate_count`)
//! at every shard count — sharding is a concurrency/locality layout, never
//! a semantic change.
//!
//! The same contract is pinned end to end through the engine: a
//! [`SpatialTable`] configured with `shards = s` must serve every estimate
//! with exactly the bits of an identically-built `shards = 1` table, both
//! through the locked table path and through lock-free [`SpatialReader`]s,
//! including after insert/delete churn and after a re-`ANALYZE`.
//!
//! The base matrix below always runs (tier 1). The `sharded` feature turns
//! on the exhaustive cross product on larger inputs; the `proptest` feature
//! adds randomized differentials. CI also runs the suite under
//! `RUST_TEST_THREADS=1` so scheduler interference cannot mask bugs.

use minskew::prelude::*;
use minskew_datagen::{charminar_with, uniform_rects, SyntheticSpec};

const RULES: [ExtensionRule; 3] = [
    ExtensionRule::Minkowski,
    ExtensionRule::PaperLiteral,
    ExtensionRule::None,
];

/// Shard counts named by the acceptance criteria: the degenerate single
/// shard, powers of two, and an odd count that cannot divide anything
/// evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 9];

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("charminar", charminar_with(2_000 * scale, 7)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(1_200 * scale).generate(11),
        ),
        (
            "uniform",
            uniform_rects(
                1_000 * scale,
                Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
                40.0,
                40.0,
                17,
            ),
        ),
        (
            "point-pile",
            Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 64]),
        ),
    ]
}

/// The three bucket techniques named by the sharding contract.
fn techniques(data: &Dataset, buckets: usize) -> Vec<SpatialHistogram> {
    vec![
        MinSkewBuilder::new(buckets).regions(1_024).build(data),
        build_equi_area(data, buckets),
        build_equi_count(data, buckets),
    ]
}

/// Deterministic query mix: range queries at three sizes across the
/// extent, point queries, and adversarial shapes (exact bounds,
/// everything-covering, fully disjoint, degenerate lines).
fn queries_for(data: &Dataset) -> Vec<Rect> {
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for i in 0..10 {
        let fx = i as f64 / 10.0;
        for size in [0.02, 0.1, 0.35] {
            let x = mbr.lo.x + fx * w * 0.9;
            let y = mbr.lo.y + (1.0 - fx) * h * 0.9;
            out.push(Rect::new(x, y, x + size * w, y + size * h));
        }
    }
    for i in 0..6 {
        let f = i as f64 / 6.0;
        out.push(Rect::from_point(Point::new(
            mbr.lo.x + f * w,
            mbr.lo.y + f * h,
        )));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h)); // covers everything: all shards route
    out.push(Rect::new(
        mbr.hi.x + 3.0 * w,
        mbr.hi.y + 3.0 * h,
        mbr.hi.x + 4.0 * w,
        mbr.hi.y + 4.0 * h,
    )); // fully disjoint: no shard routes
    out.push(Rect::new(mbr.lo.x, mbr.lo.y, mbr.lo.x, mbr.hi.y)); // line
    out
}

/// Asserts sharded == linear, bit for bit, for one histogram across the
/// full query mix; the scratch is deliberately reused across queries.
fn assert_sharded_differential(
    context: &str,
    hist: &SpatialHistogram,
    shards: usize,
    queries: &[Rect],
    scratch: &mut ShardScratch,
) {
    let sharded = ShardedHistogram::build(hist.clone(), shards);
    for q in queries {
        let linear = hist.estimate_count(q);
        let routed = sharded.estimate_count_sharded(q, scratch);
        assert_eq!(
            linear.to_bits(),
            routed.to_bits(),
            "sharded estimate diverged: {context} technique={} shards={shards} q={q} \
             (linear={linear}, sharded={routed})",
            hist.name(),
        );
    }
}

#[test]
fn sharded_estimates_match_linear_for_every_technique_and_rule() {
    let mut scratch = ShardScratch::new();
    for (name, data) in datasets(1) {
        let queries = queries_for(&data);
        for hist in techniques(&data, 40) {
            for rule in RULES {
                let hist = hist.clone().with_extension_rule(rule);
                for shards in SHARD_COUNTS {
                    let context = format!("dataset={name} rule={rule:?}");
                    assert_sharded_differential(&context, &hist, shards, &queries, &mut scratch);
                }
            }
        }
    }
}

#[test]
fn shard_partitions_cover_every_bucket_exactly_once() {
    let data = charminar_with(3_000, 19);
    for hist in techniques(&data, 48) {
        let total: f64 = hist.buckets().iter().map(|b| b.count).sum();
        for shards in SHARD_COUNTS {
            let sharded = ShardedHistogram::build(hist.clone(), shards);
            assert_eq!(sharded.num_shards(), shards.max(1));
            let mut seen = vec![0usize; hist.num_buckets()];
            for info in sharded.shards() {
                for &id in info.bucket_ids() {
                    seen[id as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "every bucket must be owned by exactly one shard \
                 (technique={}, shards={shards})",
                hist.name()
            );
            let shard_total: f64 = sharded.shards().iter().map(ShardInfo::count).sum();
            assert!(
                (total - shard_total).abs() <= 1e-9 * total.max(1.0),
                "per-shard counts must sum to the histogram total"
            );
        }
    }
}

#[test]
fn merge_reconstructs_the_original_histogram_bytes() {
    let data = charminar_with(2_500, 29);
    for hist in techniques(&data, 32) {
        for rule in RULES {
            let hist = hist.clone().with_extension_rule(rule);
            for shards in SHARD_COUNTS {
                let sharded = ShardedHistogram::build(hist.clone(), shards);
                let merged = sharded.merge();
                assert_eq!(
                    hist.to_bytes(),
                    merged.to_bytes(),
                    "merge must reconstruct the original bytes \
                     (technique={}, rule={rule:?}, shards={shards})",
                    hist.name()
                );
            }
        }
    }
}

/// Builds one table per shard count over the same rows, installing the
/// same statistics bytes, and returns `(tables, reference)` where the
/// reference is the `shards = 1` table.
fn table_fleet(data: &Dataset, stats: &[u8], shard_counts: &[usize]) -> Vec<SpatialTable> {
    shard_counts
        .iter()
        .map(|&shards| {
            let mut table = SpatialTable::new(TableOptions {
                shards,
                ..TableOptions::default()
            });
            for r in data.rects() {
                table.insert(*r);
            }
            let diag = table.load_stats(stats);
            assert!(!diag.degraded, "installing valid stats must not degrade");
            table
        })
        .collect()
}

#[test]
fn tables_serve_identical_bits_at_every_shard_count_through_churn() {
    let data = charminar_with(2_500, 37);
    let queries = queries_for(&data);
    for hist in techniques(&data, 40) {
        for rule in RULES {
            let stats = hist.clone().with_extension_rule(rule).to_bytes();
            let mut fleet = table_fleet(&data, &stats, &SHARD_COUNTS);
            let context = format!("technique={} rule={rule:?}", hist.name());
            let mut readers: Vec<SpatialReader> = fleet.iter().map(SpatialTable::reader).collect();
            assert_fleet_agrees(&context, "fresh", &mut fleet, &mut readers, &queries);

            // Insert/delete churn: every table mutates identically; the
            // in-place patched statistics must still agree bit for bit.
            let mbr = data.stats().mbr;
            let mut churn_ids: Vec<Vec<_>> = vec![Vec::new(); fleet.len()];
            for i in 0..30 {
                let f = i as f64 / 30.0;
                let x = mbr.lo.x + f * mbr.width();
                let y = mbr.lo.y + (1.0 - f) * mbr.height();
                let rect = Rect::new(x, y, x + 25.0, y + 25.0);
                for (table, ids) in fleet.iter_mut().zip(&mut churn_ids) {
                    ids.push(table.insert(rect));
                }
            }
            assert_fleet_agrees(&context, "post-insert", &mut fleet, &mut readers, &queries);
            for (table, ids) in fleet.iter_mut().zip(&churn_ids) {
                for id in ids.iter().take(15) {
                    assert!(table.delete(*id), "churn row must exist");
                }
            }
            assert_fleet_agrees(&context, "post-delete", &mut fleet, &mut readers, &queries);
            // A re-ANALYZE rebuilds statistics from the (identical) rows;
            // the fresh histograms must agree at every shard count too.
            for table in &mut fleet {
                table.analyze();
            }
            assert_fleet_agrees(&context, "post-analyze", &mut fleet, &mut readers, &queries);
        }
    }
}

/// Asserts every table and every reader in the fleet returns exactly the
/// reference (`shards = 1`) bits for every query.
fn assert_fleet_agrees(
    context: &str,
    stage: &str,
    fleet: &mut [SpatialTable],
    readers: &mut [SpatialReader],
    queries: &[Rect],
) {
    for q in queries {
        let expected = fleet[0].estimate(q).to_bits();
        for (i, table) in fleet.iter().enumerate().skip(1) {
            assert_eq!(
                expected,
                table.estimate(q).to_bits(),
                "{context} {stage}: table shards={} diverged on q={q}",
                SHARD_COUNTS[i]
            );
        }
        for (i, reader) in readers.iter_mut().enumerate() {
            assert_eq!(
                expected,
                reader.estimate(q).to_bits(),
                "{context} {stage}: reader shards={} diverged on q={q}",
                SHARD_COUNTS[i]
            );
        }
    }
}

#[test]
fn sharded_tables_reject_invalid_shard_counts() {
    for shards in [0usize, MAX_SHARDS + 1] {
        assert!(
            SpatialTable::try_new(TableOptions {
                shards,
                ..TableOptions::default()
            })
            .is_err(),
            "shards={shards} must be rejected"
        );
    }
    assert!(SpatialTable::try_new(TableOptions {
        shards: MAX_SHARDS,
        ..TableOptions::default()
    })
    .is_ok());
}

/// Exhaustive cross product on larger inputs — enabled by the `sharded`
/// feature (CI runs it; plain `cargo test` keeps the fast base matrix).
#[cfg(feature = "sharded")]
#[test]
fn exhaustive_sharded_matrix() {
    let mut scratch = ShardScratch::new();
    for (name, data) in datasets(4) {
        let queries = queries_for(&data);
        for buckets in [8usize, 64, 200] {
            for hist in techniques(&data, buckets) {
                for rule in RULES {
                    let hist = hist.clone().with_extension_rule(rule);
                    for shards in [1usize, 2, 3, 4, 9, 17, 64] {
                        let context = format!("dataset={name} buckets={buckets} rule={rule:?}");
                        assert_sharded_differential(
                            &context,
                            &hist,
                            shards,
                            &queries,
                            &mut scratch,
                        );
                    }
                }
            }
        }
    }
}

/// More shards than buckets, single-bucket histograms, and shard counts at
/// the cap — enabled with the exhaustive matrix.
#[cfg(feature = "sharded")]
#[test]
fn exhaustive_degenerate_shard_shapes() {
    let mut scratch = ShardScratch::new();
    let tiny = Dataset::new(vec![Rect::new(0.0, 0.0, 10.0, 10.0); 16]);
    let queries = queries_for(&tiny);
    for hist in techniques(&tiny, 1) {
        for shards in [1usize, 2, 9, MAX_SHARDS] {
            assert_sharded_differential("tiny", &hist, shards, &queries, &mut scratch);
        }
    }
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        proptest::collection::vec(
            (0.0..2_000.0f64, 0.0..2_000.0f64, 0.0..80.0f64, 0.0..80.0f64),
            30..250,
        )
        .prop_map(|raw| {
            Dataset::new(
                raw.iter()
                    .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                    .collect(),
            )
        })
    }

    fn arb_query() -> impl Strategy<Value = Rect> {
        (
            -500.0..2_500.0f64,
            -500.0..2_500.0f64,
            0.0..1_500.0f64,
            0.0..1_500.0f64,
        )
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For random datasets, budgets, shard counts, and query batches,
        /// the partition router equals the linear scan bit for bit.
        #[test]
        fn prop_sharded_equals_linear(
            data in arb_dataset(),
            buckets in 1usize..40,
            shards in 1usize..24,
            queries in proptest::collection::vec(arb_query(), 1..30),
            rule_pick in 0usize..3,
        ) {
            let rule = RULES[rule_pick];
            let mut scratch = ShardScratch::new();
            for hist in [
                MinSkewBuilder::new(buckets).regions(256).build(&data),
                build_equi_count(&data, buckets),
            ] {
                let hist = hist.with_extension_rule(rule);
                let sharded = ShardedHistogram::build(hist.clone(), shards);
                for q in &queries {
                    let linear = hist.estimate_count(q);
                    let routed = sharded.estimate_count_sharded(q, &mut scratch);
                    prop_assert_eq!(
                        linear.to_bits(), routed.to_bits(),
                        "technique={} rule={:?} shards={} q={}",
                        hist.name(), rule, shards, q
                    );
                }
            }
        }
    }
}
