//! Differential test suite: every parallel path must be **bit-identical**
//! to its serial reference implementation, at every thread count.
//!
//! The serial paths (`threads == 1`, the default everywhere) are the
//! reference semantics; the parallel paths are an optimisation that must be
//! observationally invisible. This suite pins that contract for the three
//! parallelized layers — density-grid construction, Min-Skew histogram
//! construction, and batch counting/estimation — by comparing *codec bytes*
//! (for histograms) and exact values (for grids and counts) across thread
//! counts {1, 2, 3, 8}, split strategies, extension rules, and refinement
//! settings.
//!
//! The base matrix below always runs (tier 1). The `parallel` feature turns
//! on the exhaustive cross product on larger inputs; the `proptest` feature
//! adds randomized differential properties. CI runs the suite both under
//! the default test scheduler and under `RUST_TEST_THREADS=1`, so pool
//! contention from concurrently running tests cannot mask ordering bugs.

use minskew::prelude::*;
use minskew_datagen::{charminar_with, uniform_rects, RoadNetworkSpec, SyntheticSpec};

/// Thread counts every differential assertion sweeps. 1 is the reference,
/// 2 and 3 exercise uneven chunk boundaries, 8 oversubscribes the host.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("charminar", charminar_with(3_000 * scale, 7)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(2_000 * scale).generate(11),
        ),
        (
            "road",
            RoadNetworkSpec {
                segments: 2_000 * scale,
                ..RoadNetworkSpec::default()
            }
            .generate(13),
        ),
        (
            "uniform",
            uniform_rects(
                1_500 * scale,
                Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
                40.0,
                40.0,
                17,
            ),
        ),
        (
            "point-pile",
            Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 64]),
        ),
    ]
}

/// Asserts serial/parallel equality of the full Min-Skew construction for
/// one configuration: histogram equality AND codec-byte equality (the wire
/// format is the strongest observable — any drift in bucket order, bounds,
/// or counts shows up as a byte diff).
fn assert_build_differential(
    name: &str,
    data: &Dataset,
    buckets: usize,
    regions: usize,
    refinements: usize,
    strategy: SplitStrategy,
    rule: ExtensionRule,
) {
    let base = MinSkewBuilder::new(buckets)
        .regions(regions)
        .progressive_refinements(refinements)
        .split_strategy(strategy)
        .extension_rule(rule);
    let serial = base.clone().threads(1).build(data);
    let serial_bytes = serial.to_bytes();
    for threads in THREADS {
        let parallel = base.clone().threads(threads).build(data);
        assert_eq!(
            parallel.to_bytes(),
            serial_bytes,
            "codec bytes diverged: dataset={name} threads={threads} \
             strategy={strategy:?} rule={rule:?} refinements={refinements}"
        );
    }
    // And the bytes round-trip to the same histogram.
    let decoded = SpatialHistogram::from_bytes(&serial_bytes).expect("self-produced bytes decode");
    assert_eq!(decoded, serial, "dataset={name}: codec round-trip drift");
}

#[test]
fn histogram_construction_is_thread_count_invariant() {
    for (name, data) in datasets(1) {
        for strategy in [SplitStrategy::Exact2d, SplitStrategy::Marginal] {
            assert_build_differential(
                name,
                &data,
                32,
                1_024,
                0,
                strategy,
                ExtensionRule::default(),
            );
        }
    }
}

#[test]
fn progressive_refinement_is_thread_count_invariant() {
    for (name, data) in datasets(1) {
        assert_build_differential(
            name,
            &data,
            24,
            4_096,
            2,
            SplitStrategy::Exact2d,
            ExtensionRule::default(),
        );
    }
}

#[test]
fn density_grid_is_thread_count_invariant() {
    for (name, data) in datasets(4) {
        let bounds = data.stats().mbr;
        for (nx, ny) in [(1, 1), (7, 3), (64, 64)] {
            let serial = DensityGrid::build(data.rects().iter(), bounds, nx, ny);
            for threads in THREADS {
                let par = DensityGrid::build_with_threads(data.rects(), bounds, nx, ny, threads);
                assert_eq!(
                    par.densities(),
                    serial.densities(),
                    "dataset={name} grid={nx}x{ny} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn ground_truth_batch_counting_is_thread_count_invariant() {
    let data = charminar_with(5_000, 23);
    let truth = GroundTruth::index(&data);
    let workload = QueryWorkload::generate(&data, 0.1, 400, 29);
    let serial = truth.counts_with_threads(workload.queries(), 1);
    // The serial path must itself agree with the O(N) scan.
    for (q, &c) in workload.queries().iter().zip(&serial).take(50) {
        assert_eq!(c, data.count_intersecting(q));
    }
    for threads in THREADS {
        assert_eq!(
            truth.counts_with_threads(workload.queries(), threads),
            serial,
            "threads = {threads}"
        );
    }
}

#[test]
fn engine_batch_estimation_is_thread_count_invariant() {
    let data = charminar_with(4_000, 31);
    let mut table = SpatialTable::new(TableOptions::default());
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    let workload = QueryWorkload::generate(&data, 0.15, 300, 37);
    let serial_bits: Vec<u64> = workload
        .queries()
        .iter()
        .map(|q| table.estimate(q).to_bits())
        .collect();
    for threads in THREADS {
        table.set_threads(threads);
        let batch_bits: Vec<u64> = table
            .estimate_batch(workload.queries())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(batch_bits, serial_bits, "threads = {threads}");
    }
}

/// Streaming (serial-only) and in-memory (parallel) construction must meet
/// in the middle: the CSV path has no slice to shard, so a threaded builder
/// over it silently runs serial sweeps — and must still equal the sharded
/// in-memory build byte for byte.
#[test]
fn streaming_fallback_matches_parallel_in_memory_build() {
    let data = charminar_with(2_000, 41);
    let path = std::env::temp_dir().join(format!(
        "minskew-par-differential-{}.csv",
        std::process::id()
    ));
    minskew::data::write_rects_csv(&data, &path).expect("write dataset");
    let csv = CsvRectSource::open(&path).expect("reopen dataset");
    let builder = MinSkewBuilder::new(20).regions(900).threads(8);
    let from_memory = builder.build(&data).to_bytes();
    let from_stream = builder.build_from_source(&csv).to_bytes();
    assert_eq!(from_memory, from_stream);
    std::fs::remove_file(path).ok();
}

/// Exhaustive cross product on larger inputs — enabled by the `parallel`
/// feature (CI runs it; plain `cargo test` keeps the fast base matrix).
#[cfg(feature = "parallel")]
#[test]
fn exhaustive_differential_matrix() {
    for (name, data) in datasets(4) {
        for strategy in [SplitStrategy::Exact2d, SplitStrategy::Marginal] {
            for rule in [
                ExtensionRule::Minkowski,
                ExtensionRule::PaperLiteral,
                ExtensionRule::None,
            ] {
                for refinements in [0usize, 1, 3] {
                    assert_build_differential(name, &data, 48, 16_384, refinements, strategy, rule);
                }
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (
            proptest::collection::vec(
                (0.0..2_000.0f64, 0.0..2_000.0f64, 0.0..80.0f64, 0.0..80.0f64),
                30..300,
            ),
            0.0..1_800.0f64,
            0.0..1_800.0f64,
        )
            .prop_map(|(raw, cx, cy)| {
                let mut rects: Vec<Rect> = raw
                    .iter()
                    .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                    .collect();
                // A dense cluster guarantees skew, so the greedy loop
                // actually splits (and tie-breaks) instead of stopping.
                for i in 0..50 {
                    let dx = (i % 10) as f64 * 4.0;
                    let dy = (i / 10) as f64 * 4.0;
                    rects.push(Rect::new(cx + dx, cy + dy, cx + dx + 6.0, cy + dy + 6.0));
                }
                Dataset::new(rects)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For random datasets and budgets, `build(threads=k)` equals
        /// `build(threads=1)` byte-for-byte after a codec round-trip,
        /// for k in {2, 3, 8}.
        #[test]
        fn prop_parallel_build_equals_serial_after_roundtrip(
            data in arb_dataset(),
            buckets in 1usize..40,
            regions in 64usize..2_048,
            marginal in any::<bool>(),
        ) {
            let strategy = if marginal { SplitStrategy::Marginal } else { SplitStrategy::Exact2d };
            let base = MinSkewBuilder::new(buckets).regions(regions).split_strategy(strategy);
            let serial = base.clone().threads(1).build(&data);
            let serial_bytes = serial.to_bytes();
            for threads in [2usize, 3, 8] {
                let parallel = base.clone().threads(threads).build(&data);
                let bytes = parallel.to_bytes();
                prop_assert_eq!(&bytes, &serial_bytes, "threads = {}", threads);
                let back = SpatialHistogram::from_bytes(&bytes).expect("round-trip");
                prop_assert_eq!(back, serial.clone());
            }
        }

        /// Random batches: threaded ground-truth counting equals the serial
        /// per-query loop exactly.
        #[test]
        fn prop_threaded_counts_equal_serial(
            data in arb_dataset(),
            qseed in 0u64..1_000,
        ) {
            let truth = GroundTruth::index(&data);
            let workload = QueryWorkload::generate(&data, 0.1, 64, qseed);
            let serial: Vec<usize> = workload.queries().iter().map(|q| truth.count(q)).collect();
            for threads in [2usize, 3, 8] {
                prop_assert_eq!(
                    truth.counts_with_threads(workload.queries(), threads),
                    serial.clone(),
                    "threads = {}", threads
                );
            }
        }
    }
}
