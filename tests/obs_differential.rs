//! Differential test suite for the observability layer: instrumentation
//! must be **bit-invisible**. A table serving with metrics enabled (at any
//! sampling rate, including "time every call") must produce estimates and
//! encoded statistics byte-identical to a table with metrics disabled —
//! through analyze, churn, batch serving, and accuracy audits. Likewise the
//! traced Min-Skew build must emit the same statistics bytes as the
//! untraced one.
//!
//! This is the same contract the parallel layer (`parallel_differential.rs`)
//! and the serving layer (`serving_differential.rs`) are pinned by: an
//! optimisation — here, an *instrumentation* — that is observationally
//! invisible. The base matrix below always runs (tier 1); the `obs` feature
//! turns on the exhaustive cross product. CI additionally re-runs the suite
//! with `minskew-obs` compiled to no-ops (`--features minskew-obs/noop`),
//! proving the compiled-out configuration serves the same bytes too.

use minskew::prelude::*;
#[cfg(feature = "obs")]
use minskew_datagen::SyntheticSpec;
use minskew_datagen::{charminar_with, uniform_rects};

/// Deterministic query mix across the dataset extent (ranges at three
/// sizes, points, covering/disjoint shapes).
fn queries_for(data: &Dataset) -> Vec<Rect> {
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for i in 0..10 {
        let f = i as f64 / 10.0;
        for size in [0.03, 0.12, 0.4] {
            let x = mbr.lo.x + f * w * 0.9;
            let y = mbr.lo.y + (1.0 - f) * h * 0.9;
            out.push(Rect::new(x, y, x + size * w, y + size * h));
        }
    }
    for i in 0..6 {
        let f = i as f64 / 6.0;
        out.push(Rect::from_point(Point::new(
            mbr.lo.x + f * w,
            mbr.lo.y + f * h,
        )));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h));
    out.push(Rect::new(
        mbr.hi.x + 2.0 * w,
        mbr.hi.y + 2.0 * h,
        mbr.hi.x + 3.0 * w,
        mbr.hi.y + 3.0 * h,
    ));
    out
}

fn table_with(data: &Dataset, technique: StatsTechnique, options: TableOptions) -> SpatialTable {
    let mut t = SpatialTable::new(TableOptions {
        analyze: AnalyzeOptions {
            technique,
            buckets: 24,
            ..AnalyzeOptions::default()
        },
        ..options
    });
    for r in data.rects() {
        t.insert(*r);
    }
    t.analyze();
    t
}

/// Drives one full serving lifecycle — single queries, a batch pass, churn,
/// re-ANALYZE, an accuracy audit between every stage — and returns every
/// estimate bit pattern plus the final encoded statistics bytes.
fn lifecycle(table: &mut SpatialTable, queries: &[Rect]) -> (Vec<u64>, Vec<u8>) {
    let mut bits = Vec::new();
    let mut serve = |table: &mut SpatialTable| {
        for q in queries {
            bits_push(&mut bits, table.estimate(q));
        }
        for v in table.estimate_batch(queries) {
            bits_push(&mut bits, v);
        }
        // Second single-query pass: served from the cache where enabled.
        for q in queries {
            bits_push(&mut bits, table.estimate(q));
        }
        // The audit replays the reservoir; it must never disturb serving.
        let _ = table.audit_accuracy();
    };
    serve(table);
    let mbr_w = queries[0].width().max(10.0);
    let churn: Vec<Rect> = (0..50)
        .map(|i| {
            let d = i as f64 * mbr_w / 50.0;
            Rect::new(d, d, d + 5.0, d + 5.0)
        })
        .collect();
    let ids: Vec<_> = churn.iter().map(|r| table.insert(*r)).collect();
    serve(table);
    for id in &ids[..25] {
        table.delete(*id);
    }
    serve(table);
    table.analyze();
    serve(table);
    let stats_bytes = table.stats().expect("analyzed").to_bytes();
    (bits, stats_bytes)
}

fn bits_push(bits: &mut Vec<u64>, v: f64) {
    bits.push(v.to_bits());
}

/// The instrumented configurations that must all match the metrics-off
/// reference: default sampling, time-every-call, and cache-off variants.
fn obs_configs() -> Vec<(&'static str, TableOptions)> {
    vec![
        (
            "metrics-off",
            TableOptions {
                metrics: false,
                ..TableOptions::default()
            },
        ),
        ("metrics-default", TableOptions::default()),
        (
            "metrics-sample-every-call",
            TableOptions {
                metrics_sampling: 1,
                ..TableOptions::default()
            },
        ),
        (
            "metrics-no-cache",
            TableOptions {
                query_cache: false,
                metrics_sampling: 1,
                ..TableOptions::default()
            },
        ),
        (
            "metrics-off-no-cache",
            TableOptions {
                metrics: false,
                query_cache: false,
                ..TableOptions::default()
            },
        ),
    ]
}

#[test]
fn metrics_are_bit_invisible_across_the_serving_lifecycle() {
    let data = charminar_with(2_500, 7);
    let queries = queries_for(&data);
    for technique in [
        StatsTechnique::MinSkew,
        StatsTechnique::EquiCount,
        StatsTechnique::Uniform,
    ] {
        let reference = {
            let mut t = table_with(
                &data,
                technique,
                TableOptions {
                    metrics: false,
                    ..TableOptions::default()
                },
            );
            lifecycle(&mut t, &queries)
        };
        for (name, options) in obs_configs() {
            // Cache-off configs legitimately differ from the reference in
            // *counters*, never in estimates or statistics bytes.
            let mut t = table_with(&data, technique, options);
            let got = lifecycle(&mut t, &queries);
            assert_eq!(
                got.0, reference.0,
                "estimates drifted: technique={technique:?} config={name}"
            );
            assert_eq!(
                got.1, reference.1,
                "stats bytes drifted: technique={technique:?} config={name}"
            );
        }
    }
}

#[test]
fn traced_min_skew_build_is_byte_identical_and_monotone() {
    for (name, data) in [
        ("charminar", charminar_with(3_000, 19)),
        (
            "uniform",
            uniform_rects(1_500, Rect::new(0.0, 0.0, 5_000.0, 5_000.0), 30.0, 30.0, 3),
        ),
    ] {
        for refinements in [0usize, 2] {
            let mut builder = MinSkewBuilder::new(32).regions(1_024);
            if refinements > 0 {
                builder = builder.progressive_refinements(refinements);
            }
            let plain = builder.build(&data);
            let (traced, trace) = builder
                .try_build_traced(&data)
                .expect("preconditions hold for these datasets");
            assert_eq!(
                plain.to_bytes(),
                traced.to_bytes(),
                "tracing changed the build: dataset={name} refinements={refinements}"
            );
            // The audit trail accounts for the construction: each split adds
            // one bucket, but empty buckets are dropped at export and
            // refinement phases may re-split — so the trail is a lower
            // bound. The greedy criterion never increases skew.
            assert_eq!(trace.phases, refinements + 1);
            assert!(
                trace.splits.len() + 1 >= traced.num_buckets(),
                "{} splits cannot yield {} buckets",
                trace.splits.len(),
                traced.num_buckets()
            );
            for (i, s) in trace.splits.iter().enumerate() {
                assert!(
                    s.skew_after <= s.skew_before * (1.0 + 1e-9) + 1e-9,
                    "split {i} increased skew: {s:?}"
                );
            }
        }
    }
}

#[test]
fn accuracy_monitor_reproduces_the_papers_error_metric() {
    // With a reservoir larger than the workload every served (uncached)
    // query is resident, so the audit must equal the offline average
    // relative error over exactly those queries.
    let data = charminar_with(2_000, 29);
    let mut table = SpatialTable::new(TableOptions {
        accuracy_reservoir: 4_096,
        ..TableOptions::default()
    });
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    let queries = queries_for(&data);
    for q in &queries {
        let _ = table.estimate(q);
    }
    let Some(report) = table.audit_accuracy() else {
        assert!(
            !minskew_obs::enabled(),
            "audit must be available when obs is compiled in"
        );
        return;
    };
    assert_eq!(report.samples, queries.len());
    let truth = GroundTruth::index(&data);
    let mut num = 0.0;
    let mut den = 0.0;
    for q in &queries {
        num += (truth.count(q) as f64 - table.estimate(q)).abs();
        den += truth.count(q) as f64;
    }
    let offline = num / den.max(1.0);
    assert!(
        (report.avg_relative_error - offline).abs() < 1e-12,
        "audit {} vs offline {offline}",
        report.avg_relative_error
    );
}

/// Exhaustive cross product — enabled by the `obs` feature (CI runs it;
/// plain `cargo test` keeps the fast base matrix).
#[cfg(feature = "obs")]
#[test]
fn exhaustive_obs_matrix() {
    let datasets = [
        ("charminar", charminar_with(6_000, 43)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(4_000).generate(47),
        ),
        (
            "uniform",
            uniform_rects(3_000, Rect::new(0.0, 0.0, 8_000.0, 8_000.0), 25.0, 25.0, 53),
        ),
    ];
    for (dataset_name, data) in datasets {
        let queries = queries_for(&data);
        for technique in [
            StatsTechnique::MinSkew,
            StatsTechnique::EquiArea,
            StatsTechnique::EquiCount,
            StatsTechnique::Uniform,
        ] {
            let reference = {
                let mut t = table_with(
                    &data,
                    technique,
                    TableOptions {
                        metrics: false,
                        ..TableOptions::default()
                    },
                );
                lifecycle(&mut t, &queries)
            };
            for (name, options) in obs_configs() {
                for threads in [1usize, 4] {
                    let mut options = options;
                    options.threads = threads;
                    let mut t = table_with(&data, technique, options);
                    let got = lifecycle(&mut t, &queries);
                    assert_eq!(
                        (got.0, got.1),
                        (reference.0.clone(), reference.1.clone()),
                        "dataset={dataset_name} technique={technique:?} \
                         config={name} threads={threads}"
                    );
                }
            }
        }
    }
}
