//! Differential test suite for the online refine loop: self-tuning must
//! stay inside the serving contracts that every other layer is pinned by.
//!
//! Four invariants:
//!
//! 1. **Clamping** — a refined histogram's bucket counts stay finite and
//!    inside `[0, N]` and its estimates stay finite and non-negative no
//!    matter how adversarial the feedback was (the core contract), and a
//!    maintained table *serves* estimates inside `[0, N]` (the engine's
//!    clamp — the same guarantee patched histograms get).
//! 2. **Partition coverage** — splits tile their parent and merges union
//!    exactly-adjacent boxes, so interior points of the root extent are
//!    owned by exactly one bucket before *and* after any number of steps.
//! 3. **Snapshot round-trip** — a refined histogram survives both codecs
//!    (catalog bytes and checksummed snapshot container) byte-identically,
//!    like any built histogram.
//! 4. **Off is inert** — a table with `MaintenanceMode::Off` that runs
//!    `maintain()` serves estimates and encodes statistics byte-identical
//!    to one that never calls it: turning the feature off reproduces
//!    yesterday's bytes.
//!
//! The base tests below always run (tier 1); the `refine` feature turns on
//! the exhaustive dataset × budget × feedback-volume matrix. CI runs the
//! gated matrix with `RUST_TEST_THREADS=1 --features refine`.

use minskew::prelude::*;
use minskew_datagen::charminar_with;
#[cfg(feature = "refine")]
use minskew_datagen::uniform_rects;

/// Deterministic query mix over (and beyond) the dataset extent.
fn queries_for(data: &Dataset) -> Vec<Rect> {
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for i in 0..8 {
        let f = i as f64 / 8.0;
        for size in [0.02, 0.1, 0.35] {
            let x = mbr.lo.x + f * w * 0.9;
            let y = mbr.lo.y + (1.0 - f) * h * 0.9;
            out.push(Rect::new(x, y, x + size * w, y + size * h));
        }
    }
    for i in 0..5 {
        let f = i as f64 / 5.0;
        out.push(Rect::from_point(Point::new(
            mbr.lo.x + f * w,
            mbr.lo.y + f * h,
        )));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h));
    out
}

/// Feedback triples replaying `queries` against exact counts, with the
/// histogram's own estimates in the `estimate` slot — exactly what the
/// engine's monitor hands the refiner.
fn feedback(data: &Dataset, hist: &SpatialHistogram, queries: &[Rect]) -> Vec<RefineObservation> {
    queries
        .iter()
        .map(|q| RefineObservation {
            query: *q,
            actual: data.count_intersecting(q) as f64,
            estimate: hist.estimate_count(q),
        })
        .collect()
}

/// Runs `steps` refine passes, replaying fresh feedback between passes.
fn refine_steps(
    data: &Dataset,
    hist: &SpatialHistogram,
    queries: &[Rect],
    steps: usize,
    opts: &RefineOptions,
) -> SpatialHistogram {
    let mut current = hist.clone();
    for _ in 0..steps {
        let obs = feedback(data, &current, queries);
        let (next, _) = current.refine(&obs, opts);
        current = next;
    }
    current
}

/// Every interior probe point of the root extent must be owned by exactly
/// one bucket: splits tile, merges union, nothing overlaps or gaps.
fn assert_partition(hist: &SpatialHistogram, root: &Rect) {
    let (w, h) = (root.width(), root.height());
    for iy in 0..23 {
        for ix in 0..23 {
            // Irrational-ish offsets keep probes off bucket boundaries.
            let p = Point::new(
                root.lo.x + w * (ix as f64 + 0.503) / 23.0,
                root.lo.y + h * (iy as f64 + 0.497) / 23.0,
            );
            let owners = hist
                .buckets()
                .iter()
                .filter(|b| b.mbr.contains_point(p))
                .count();
            assert_eq!(
                owners, 1,
                "point ({}, {}) owned by {owners} buckets",
                p.x, p.y
            );
        }
    }
}

/// Core-level sanity: every bucket count is finite and within `[0, N]`
/// (the refit's clamp), and every estimate is finite and non-negative
/// (the [`SpatialEstimator`] contract). The `[0, N]` bound on *served*
/// estimates is the engine's clamp, pinned separately below.
fn assert_sane(hist: &SpatialHistogram, queries: &[Rect]) {
    let n = hist.input_len() as f64;
    for b in hist.buckets() {
        assert!(
            b.count.is_finite() && (0.0..=n).contains(&b.count),
            "bucket count {} escapes [0, {n}]",
            b.count
        );
    }
    for q in queries {
        let est = hist.estimate_count(q);
        assert!(
            est.is_finite() && est >= 0.0,
            "estimate {est} for {q:?} is not finite and non-negative"
        );
    }
}

fn assert_round_trips(hist: &SpatialHistogram) {
    let bytes = hist.to_bytes();
    let decoded = SpatialHistogram::from_bytes(&bytes).expect("catalog bytes decode");
    assert_eq!(bytes, decoded.to_bytes(), "catalog codec round-trip");
    let snap = hist.to_snapshot_bytes();
    let info = verify_snapshot(&snap).expect("snapshot container verifies");
    assert_eq!(info.buckets, hist.num_buckets());
    let (restored, _) = SpatialHistogram::from_snapshot_bytes(&snap).expect("snapshot decodes");
    assert_eq!(
        snap,
        restored.to_snapshot_bytes(),
        "snapshot byte round-trip"
    );
    assert_eq!(hist.buckets(), restored.buckets());
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

// ---------------------------------------------------------------------
// Base tier: always runs.
// ---------------------------------------------------------------------

#[test]
fn refined_estimates_stay_sane_even_under_adversarial_feedback() {
    let data = charminar_with(4_000, 11);
    let hist = MinSkewBuilder::new(40).regions(1_600).build(&data);
    let queries = queries_for(&data);
    // Honest feedback first.
    let refined = refine_steps(&data, &hist, &queries, 4, &RefineOptions::default());
    assert_sane(&refined, &queries);
    // Adversarial feedback: absurd actuals must not push any bucket count
    // outside [0, N] (the refit clamps counts into the data range).
    let mut lies = feedback(&data, &hist, &queries);
    for (i, o) in lies.iter_mut().enumerate() {
        o.actual = if i % 2 == 0 { 1e12 } else { -7.0 };
    }
    let (warped, _) = hist.refine(&lies, &RefineOptions::default());
    assert_sane(&warped, &queries);
}

#[test]
fn maintained_tables_serve_estimates_clamped_to_the_row_count() {
    let data = charminar_with(4_000, 11);
    let mut t = SpatialTable::new(TableOptions {
        maintenance: MaintenanceMode::OnlineRefine,
        auto_analyze_threshold: None,
        accuracy_drift_threshold: 0.1,
        ..TableOptions::default()
    });
    let mut ids = Vec::new();
    for r in data.rects() {
        ids.push(t.insert(*r));
    }
    t.analyze();
    let mbr = data.stats().mbr;
    let queries = queries_for(&data);
    // Drift hard (a dense hotspot plus deletions), serve to fill the
    // reservoir, then run several refine passes; every served estimate —
    // refined statistics included — must stay inside [0, rows].
    for round in 0..4 {
        for i in 0..400 {
            let off = (i % 37) as f64 * 0.3;
            t.insert(Rect::new(
                mbr.lo.x + off,
                mbr.lo.y + off,
                mbr.lo.x + off + 1.0,
                mbr.lo.y + off + 1.0,
            ));
        }
        for id in ids.drain(..200.min(ids.len())) {
            t.delete(id);
        }
        for q in &queries {
            let _ = t.estimate(q);
        }
        let _ = t.maintain();
        let n = t.len() as f64;
        for q in &queries {
            let est = t.estimate(q);
            assert!(
                est.is_finite() && (0.0..=n).contains(&est),
                "round {round}: served estimate {est} for {q:?} escapes [0, {n}]"
            );
        }
    }
}

#[test]
fn refine_preserves_the_bucket_partition() {
    let data = charminar_with(4_000, 13);
    let hist = MinSkewBuilder::new(32).regions(1_600).build(&data);
    let root = data.stats().mbr;
    assert_partition(&hist, &root);
    let queries = queries_for(&data);
    let refined = refine_steps(&data, &hist, &queries, 6, &RefineOptions::default());
    assert_partition(&refined, &root);
}

#[test]
fn refined_histogram_round_trips_through_both_codecs() {
    let data = charminar_with(4_000, 17);
    let hist = MinSkewBuilder::new(40).regions(1_600).build(&data);
    let queries = queries_for(&data);
    let refined = refine_steps(&data, &hist, &queries, 3, &RefineOptions::default());
    assert_round_trips(&refined);
}

#[test]
fn refine_is_deterministic() {
    let data = charminar_with(4_000, 19);
    let hist = MinSkewBuilder::new(40).regions(1_600).build(&data);
    let queries = queries_for(&data);
    let a = refine_steps(&data, &hist, &queries, 5, &RefineOptions::default());
    let b = refine_steps(&data, &hist, &queries, 5, &RefineOptions::default());
    assert_eq!(a.to_bytes(), b.to_bytes(), "refine must be deterministic");
}

#[test]
fn maintenance_off_serves_bit_identical_to_never_maintaining() {
    let data = charminar_with(4_000, 23);
    let queries = queries_for(&data);
    let build = |maintained: bool| -> (Vec<u64>, Vec<u8>) {
        let mut t = SpatialTable::new(TableOptions {
            maintenance: MaintenanceMode::Off,
            auto_analyze_threshold: None,
            ..TableOptions::default()
        });
        for r in data.rects() {
            t.insert(*r);
        }
        t.analyze();
        let mut served = Vec::new();
        for q in &queries {
            served.push(bits(t.estimate(q)));
        }
        if maintained {
            // Off must audit and then change nothing.
            let report = t.maintain();
            assert_eq!(report.action, MaintenanceAction::None, "{report}");
        }
        for q in &queries {
            served.push(bits(t.estimate(q)));
        }
        let stats = t
            .current_snapshot()
            .stats()
            .expect("analyzed table has stats")
            .histogram()
            .to_bytes();
        (served, stats)
    };
    let (est_plain, stats_plain) = build(false);
    let (est_maintained, stats_maintained) = build(true);
    assert_eq!(est_plain, est_maintained, "Off must not change estimates");
    assert_eq!(
        stats_plain, stats_maintained,
        "Off must not change the statistics bytes"
    );
}

// ---------------------------------------------------------------------
// Exhaustive matrix: dataset × bucket budget × feedback volume.
// Gated behind `--features refine`; CI runs it single-threaded.
// ---------------------------------------------------------------------

#[cfg(feature = "refine")]
#[test]
fn exhaustive_refine_matrix_holds_all_invariants() {
    let datasets: Vec<(&str, Dataset)> = vec![
        ("charminar", charminar_with(6_000, 29)),
        (
            "uniform",
            uniform_rects(6_000, Rect::new(0.0, 0.0, 1_000.0, 1_000.0), 4.0, 4.0, 31),
        ),
    ];
    for (name, data) in &datasets {
        let root = data.stats().mbr;
        let queries = queries_for(data);
        for buckets in [8usize, 24, 64] {
            let hist = MinSkewBuilder::new(buckets).regions(1_024).build(data);
            for volume in [1usize, 7, queries.len()] {
                for steps in [1usize, 4] {
                    let subset: Vec<Rect> = queries.iter().copied().take(volume).collect();
                    let refined =
                        refine_steps(data, &hist, &subset, steps, &RefineOptions::default());
                    let label = format!("{name} beta={buckets} obs={volume} steps={steps}");
                    assert!(
                        refined.num_buckets() <= hist.num_buckets() + 1,
                        "{label}: budget must hold (got {} from {})",
                        refined.num_buckets(),
                        hist.num_buckets()
                    );
                    assert_sane(&refined, &queries);
                    assert_partition(&refined, &root);
                    assert_round_trips(&refined);
                    // Determinism across a re-run of the same schedule.
                    let again =
                        refine_steps(data, &hist, &subset, steps, &RefineOptions::default());
                    assert_eq!(refined.to_bytes(), again.to_bytes(), "{label}: determinism");
                }
            }
        }
    }
}
