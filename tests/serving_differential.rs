//! Differential test suite for the serving path: the indexed estimate
//! (`estimate_count_indexed`) and the engine's query cache must be
//! **bit-identical** to the linear reference scan, for every technique,
//! every extension rule, and every query shape — including after
//! maintenance churn invalidates the caches.
//!
//! The scalar AoS fold (`estimate_count_reference`, a left-to-right sum of
//! `Bucket::estimate` over all buckets) is the reference semantics; the
//! serving layer — the SoA clip-and-accumulate kernel behind
//! `estimate_count`, the bucket index, and the query cache — is an
//! optimisation stack that must be observationally invisible, exactly like
//! the parallel layer pinned by `parallel_differential.rs`. The kernel gets
//! its own deeper matrix in `kernel_differential.rs`.
//!
//! The base matrix below always runs (tier 1). The `serving` feature turns
//! on the exhaustive cross product on larger inputs; the `proptest` feature
//! adds randomized differential properties. CI also runs the suite under
//! `RUST_TEST_THREADS=1` so test-scheduler interference cannot mask bugs.

use minskew::prelude::*;
use minskew_datagen::{charminar_with, uniform_rects, RoadNetworkSpec, SyntheticSpec};

const RULES: [ExtensionRule; 3] = [
    ExtensionRule::Minkowski,
    ExtensionRule::PaperLiteral,
    ExtensionRule::None,
];

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("charminar", charminar_with(2_500 * scale, 7)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(1_500 * scale).generate(11),
        ),
        (
            "road",
            RoadNetworkSpec {
                segments: 1_500 * scale,
                ..RoadNetworkSpec::default()
            }
            .generate(13),
        ),
        (
            "uniform",
            uniform_rects(
                1_200 * scale,
                Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
                40.0,
                40.0,
                17,
            ),
        ),
        (
            "point-pile",
            Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 64]),
        ),
    ]
}

/// All seven bucket-histogram techniques over one dataset.
fn techniques(data: &Dataset, buckets: usize) -> Vec<SpatialHistogram> {
    vec![
        MinSkewBuilder::new(buckets).regions(1_024).build(data),
        build_equi_area(data, buckets),
        build_equi_count(data, buckets),
        build_rtree_partitioning_default(data, buckets),
        build_uniform(data),
        build_grid(data, buckets),
        build_optimal_bsp(data, buckets.min(8), 8).histogram,
    ]
}

/// Deterministic query mix: range queries at three sizes across the extent,
/// point queries, and adversarial shapes (exact bounds, everything-covering,
/// fully disjoint, degenerate lines).
fn queries_for(data: &Dataset) -> Vec<Rect> {
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for i in 0..12 {
        let fx = i as f64 / 12.0;
        for size in [0.02, 0.1, 0.35] {
            let x = mbr.lo.x + fx * w * 0.9;
            let y = mbr.lo.y + (1.0 - fx) * h * 0.9;
            out.push(Rect::new(x, y, x + size * w, y + size * h));
        }
    }
    for i in 0..8 {
        let f = i as f64 / 8.0;
        out.push(Rect::from_point(Point::new(
            mbr.lo.x + f * w,
            mbr.lo.y + f * h,
        )));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h)); // covers everything: Scan fallback path
    out.push(Rect::new(
        mbr.hi.x + 3.0 * w,
        mbr.hi.y + 3.0 * h,
        mbr.hi.x + 4.0 * w,
        mbr.hi.y + 4.0 * h,
    )); // fully disjoint: Pruned path
    out.push(Rect::new(
        mbr.lo.x - w,
        mbr.lo.y,
        mbr.lo.x - 0.4 * w,
        mbr.hi.y,
    ));
    out.push(Rect::new(mbr.lo.x, mbr.lo.y, mbr.lo.x, mbr.hi.y)); // line
    out
}

/// Asserts reference == linear == indexed == indexed-reference, bit for
/// bit, for one histogram across the full query mix; the scratch is
/// deliberately reused across queries. The scalar AoS fold
/// (`estimate_count_reference`) is the semantic anchor: the SoA kernel
/// behind `estimate_count`/`estimate_count_indexed` must be invisible.
fn assert_serving_differential(
    context: &str,
    hist: &SpatialHistogram,
    queries: &[Rect],
    scratch: &mut IndexScratch,
) {
    for q in queries {
        let reference = hist.estimate_count_reference(q);
        let linear = hist.estimate_count(q);
        let indexed = hist.estimate_count_indexed(q, scratch);
        let indexed_reference = hist.estimate_count_indexed_reference(q, scratch);
        assert_eq!(
            reference.to_bits(),
            linear.to_bits(),
            "kernel diverged from the AoS fold: {context} technique={} q={q} \
             (reference={reference}, linear={linear})",
            hist.name(),
        );
        assert_eq!(
            linear.to_bits(),
            indexed.to_bits(),
            "indexed estimate diverged: {context} technique={} q={q} \
             (linear={linear}, indexed={indexed})",
            hist.name(),
        );
        assert_eq!(
            indexed.to_bits(),
            indexed_reference.to_bits(),
            "indexed kernel diverged from the AoS indexed fold: {context} \
             technique={} q={q} (indexed={indexed}, reference={indexed_reference})",
            hist.name(),
        );
    }
}

#[test]
fn indexed_estimates_match_linear_for_every_technique_and_rule() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(1) {
        let queries = queries_for(&data);
        for hist in techniques(&data, 40) {
            for rule in RULES {
                let hist = hist.clone().with_extension_rule(rule);
                let context = format!("dataset={name} rule={rule:?}");
                assert_serving_differential(&context, &hist, &queries, &mut scratch);
            }
        }
    }
}

#[test]
fn indexed_estimates_survive_maintenance_churn() {
    // note_insert / note_delete mutate buckets in place; the serving index
    // must be invalidated and rebuilt, staying bit-identical throughout.
    let data = charminar_with(3_000, 23);
    let queries = queries_for(&data);
    let mut scratch = IndexScratch::new();
    for mut hist in techniques(&data, 32) {
        assert_serving_differential("pre-churn", &hist, &queries, &mut scratch);
        let mbr = data.stats().mbr;
        for i in 0..40 {
            let f = i as f64 / 40.0;
            let x = mbr.lo.x + f * mbr.width();
            let y = mbr.lo.y + (1.0 - f) * mbr.height();
            hist.note_insert(&Rect::new(x, y, x + 25.0, y + 25.0));
        }
        assert_serving_differential("post-insert", &hist, &queries, &mut scratch);
        for r in data.rects().iter().take(60) {
            hist.note_delete(r);
        }
        assert_serving_differential("post-delete", &hist, &queries, &mut scratch);
    }
}

#[test]
fn table_cached_estimates_equal_uncached_and_survive_invalidation() {
    let data = charminar_with(3_000, 31);
    let mut cached = SpatialTable::new(TableOptions::default());
    let mut uncached = SpatialTable::new(TableOptions {
        query_cache: false,
        ..TableOptions::default()
    });
    for r in data.rects() {
        cached.insert(*r);
        uncached.insert(*r);
    }
    cached.analyze();
    uncached.analyze();
    let queries = queries_for(&data);
    // Three passes: pass 2+ is served from the cache and must not drift.
    for pass in 0..3 {
        for q in &queries {
            assert_eq!(
                cached.estimate(q).to_bits(),
                uncached.estimate(q).to_bits(),
                "pass={pass} q={q}"
            );
        }
    }
    let d = cached.stats_diagnostics();
    assert!(d.cache_hits > 0 && d.cache_misses > 0, "{d:?}");
    // Mutations invalidate: estimates agree immediately after each change.
    let extra = Rect::new(100.0, 100.0, 400.0, 400.0);
    let id_c = cached.insert(extra);
    let id_u = uncached.insert(extra);
    for q in &queries {
        assert_eq!(
            cached.estimate(q).to_bits(),
            uncached.estimate(q).to_bits(),
            "post-insert q={q}"
        );
    }
    cached.delete(id_c);
    uncached.delete(id_u);
    for q in &queries {
        assert_eq!(
            cached.estimate(q).to_bits(),
            uncached.estimate(q).to_bits(),
            "post-delete q={q}"
        );
    }
    // A fresh ANALYZE also flushes; the caches never serve pre-ANALYZE
    // values afterwards.
    cached.analyze();
    uncached.analyze();
    for q in &queries {
        assert_eq!(
            cached.estimate(q).to_bits(),
            uncached.estimate(q).to_bits(),
            "post-analyze q={q}"
        );
    }
    assert!(cached.stats_diagnostics().cache_invalidations >= 3);
}

#[test]
fn batch_estimation_matches_single_query_loop_with_scratch_reuse() {
    let data = charminar_with(3_000, 41);
    let mut table = SpatialTable::new(TableOptions::default());
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    let queries = queries_for(&data);
    let serial_bits: Vec<u64> = queries
        .iter()
        .map(|q| table.estimate(q).to_bits())
        .collect();
    for threads in [1usize, 2, 3, 8] {
        table.set_threads(threads);
        let batch_bits: Vec<u64> = table
            .estimate_batch(&queries)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(batch_bits, serial_bits, "threads={threads}");
        let strict: Vec<u64> = table
            .try_estimate_batch(&queries)
            .expect("all finite")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(strict, serial_bits, "strict threads={threads}");
    }
    // Upfront validation preserves strict-batch semantics at any position.
    let poisoned = Rect {
        lo: Point::new(f64::NAN, 0.0),
        hi: Point::new(1.0, 1.0),
    };
    for position in [0usize, queries.len() / 2, queries.len()] {
        let mut bad = queries.clone();
        bad.insert(position, poisoned);
        assert!(
            matches!(
                table.try_estimate_batch(&bad),
                Err(EstimateError::NonFiniteQuery)
            ),
            "position={position}"
        );
        // Graceful batch still answers, mapping the bad query to 0.0.
        assert_eq!(table.estimate_batch(&bad)[position], 0.0);
    }
}

/// Exhaustive cross product on larger inputs — enabled by the `serving`
/// feature (CI runs it; plain `cargo test` keeps the fast base matrix).
#[cfg(feature = "serving")]
#[test]
fn exhaustive_serving_matrix() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(4) {
        let queries = queries_for(&data);
        for buckets in [8usize, 64, 200] {
            for hist in techniques(&data, buckets) {
                for rule in RULES {
                    let hist = hist.clone().with_extension_rule(rule);
                    let context = format!("dataset={name} buckets={buckets} rule={rule:?}");
                    assert_serving_differential(&context, &hist, &queries, &mut scratch);
                }
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (
            proptest::collection::vec(
                (0.0..2_000.0f64, 0.0..2_000.0f64, 0.0..80.0f64, 0.0..80.0f64),
                30..300,
            ),
            0.0..1_800.0f64,
            0.0..1_800.0f64,
        )
            .prop_map(|(raw, cx, cy)| {
                let mut rects: Vec<Rect> = raw
                    .iter()
                    .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                    .collect();
                for i in 0..50 {
                    let dx = (i % 10) as f64 * 4.0;
                    let dy = (i / 10) as f64 * 4.0;
                    rects.push(Rect::new(cx + dx, cy + dy, cx + dx + 6.0, cy + dy + 6.0));
                }
                Dataset::new(rects)
            })
    }

    fn arb_query() -> impl Strategy<Value = Rect> {
        (
            -500.0..2_500.0f64,
            -500.0..2_500.0f64,
            0.0..1_500.0f64,
            0.0..1_500.0f64,
        )
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For random datasets, budgets, and query batches, the indexed
        /// estimate equals the linear scan bit-for-bit under every rule.
        #[test]
        fn prop_indexed_equals_linear(
            data in arb_dataset(),
            buckets in 1usize..40,
            queries in proptest::collection::vec(arb_query(), 1..40),
            rule_pick in 0usize..3,
        ) {
            let rule = RULES[rule_pick];
            let mut scratch = IndexScratch::new();
            for hist in [
                MinSkewBuilder::new(buckets).regions(256).build(&data),
                build_equi_count(&data, buckets),
            ] {
                let hist = hist.with_extension_rule(rule);
                for q in &queries {
                    let linear = hist.estimate_count(q);
                    let indexed = hist.estimate_count_indexed(q, &mut scratch);
                    prop_assert_eq!(
                        linear.to_bits(), indexed.to_bits(),
                        "technique={} rule={:?} q={}", hist.name(), rule, q
                    );
                }
            }
        }
    }
}
