//! Property-based invariants spanning the workspace crates.

#![cfg(feature = "proptest")]

use minskew::prelude::*;
use proptest::prelude::*;

/// Strategy: a small skewed dataset (mixture of a cluster and background).
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        proptest::collection::vec(
            (0.0..1_000.0f64, 0.0..1_000.0f64, 0.0..50.0f64, 0.0..50.0f64),
            20..200,
        ),
        0.0..900.0f64,
        0.0..900.0f64,
    )
        .prop_map(|(raw, cx, cy)| {
            let mut rects: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                .collect();
            // Add a dense cluster to guarantee skew.
            for i in 0..40 {
                let dx = (i % 8) as f64 * 3.0;
                let dy = (i / 8) as f64 * 3.0;
                rects.push(Rect::new(cx + dx, cy + dy, cx + dx + 5.0, cy + dy + 5.0));
            }
            Dataset::new(rects)
        })
}

fn arb_query() -> impl Strategy<Value = Rect> {
    (
        0.0..1_000.0f64,
        0.0..1_000.0f64,
        0.0..500.0f64,
        0.0..500.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimates are finite, non-negative, and never exceed N, for every
    /// technique on arbitrary data and queries.
    #[test]
    fn estimates_bounded(ds in arb_dataset(), q in arb_query()) {
        let n = ds.len() as f64;
        let estimators: Vec<Box<dyn SpatialEstimator>> = vec![
            Box::new(MinSkewBuilder::new(10).regions(256).build(&ds)),
            Box::new(build_equi_area(&ds, 10)),
            Box::new(build_equi_count(&ds, 10)),
            Box::new(build_uniform(&ds)),
            Box::new(SamplingEstimator::build(&ds, 10, 1)),
            Box::new(FractalEstimator::build(&ds)),
        ];
        for e in &estimators {
            let est = e.estimate_count(&q);
            prop_assert!(est.is_finite() && est >= 0.0, "{}: {est}", e.name());
            prop_assert!(est <= n * 1.0 + 1e-6, "{}: {est} > N = {n}", e.name());
        }
    }

    /// Bucket-based histograms conserve mass: the bucket counts sum to N,
    /// and a query covering everything returns exactly N.
    #[test]
    fn mass_conservation(ds in arb_dataset()) {
        let n = ds.len() as f64;
        let whole = ds.stats().mbr.expanded(100.0, 100.0);
        for h in [
            MinSkewBuilder::new(12).regions(400).build(&ds),
            build_equi_area(&ds, 12),
            build_equi_count(&ds, 12),
            build_uniform(&ds),
        ] {
            prop_assert!((h.total_count() - n).abs() < 1e-9, "{} lost mass", h.name());
            let est = h.estimate_count(&whole);
            prop_assert!((est - n).abs() < 1e-6, "{}: covering query got {est}, want {n}", h.name());
        }
    }

    /// Min-Skew buckets are geometrically disjoint (a BSP partitions space):
    /// pairwise intersection areas are zero.
    #[test]
    fn minskew_buckets_disjoint(ds in arb_dataset()) {
        let h = MinSkewBuilder::new(16).regions(400).build(&ds);
        let buckets = h.buckets();
        for (i, a) in buckets.iter().enumerate() {
            for b in &buckets[i + 1..] {
                prop_assert!(
                    a.mbr.intersection_area(&b.mbr) < 1e-9,
                    "buckets {a:?} and {b:?} overlap"
                );
            }
        }
    }

    /// Equi-Count buckets are balanced within a factor on duplicate-free
    /// uniform-ish data: no bucket holds more than half the data when 8+
    /// buckets exist.
    #[test]
    fn equi_count_no_giant_buckets(ds in arb_dataset()) {
        let h = build_equi_count(&ds, 16);
        if h.num_buckets() >= 8 {
            let max = h.buckets().iter().map(|b| b.count).fold(0.0, f64::max);
            prop_assert!(max <= ds.len() as f64 / 2.0 + 1.0, "bucket of {max}");
        }
    }

    /// The codec is total on valid histograms: decode(encode(h)) == h.
    #[test]
    fn codec_roundtrip(ds in arb_dataset()) {
        for h in [
            MinSkewBuilder::new(8).regions(256).build(&ds),
            build_equi_count(&ds, 8),
        ] {
            let back = SpatialHistogram::from_bytes(&h.to_bytes()).unwrap();
            prop_assert_eq!(back, h);
        }
    }

    /// Ground truth via the R*-tree equals the brute-force scan.
    #[test]
    fn rtree_truth_equals_scan(ds in arb_dataset(), q in arb_query()) {
        let truth = GroundTruth::index(&ds);
        prop_assert_eq!(truth.count(&q), ds.count_intersecting(&q));
    }

    /// Histogram estimates are monotone under query containment: a larger
    /// query can never be estimated smaller. (Per-bucket fractions grow
    /// with the query along both axes.)
    #[test]
    fn estimates_monotone_in_query(ds in arb_dataset(), q in arb_query(), grow in 0.0..200.0f64) {
        let bigger = q.expanded(grow, grow / 2.0);
        for h in [
            MinSkewBuilder::new(12).regions(400).build(&ds),
            build_equi_area(&ds, 12),
            build_equi_count(&ds, 12),
            build_uniform(&ds),
        ] {
            let small = h.estimate_count(&q);
            let large = h.estimate_count(&bigger);
            prop_assert!(
                large >= small - 1e-9,
                "{}: query growth shrank the estimate ({small} -> {large})",
                h.name()
            );
        }
    }

    /// Regression: Equi-Count must not degenerate into one-axis strip
    /// partitionings (the projected-count criterion ties on continuous
    /// data; the tiebreak must alternate axes by spread).
    #[test]
    fn equi_count_buckets_not_strips(ds in arb_dataset()) {
        let h = build_equi_count(&ds, 32);
        if h.num_buckets() >= 16 {
            let mean_aspect: f64 = h
                .buckets()
                .iter()
                .map(|b| {
                    let w = b.mbr.width().max(1e-9);
                    let hh = b.mbr.height().max(1e-9);
                    (w / hh).max(hh / w)
                })
                .sum::<f64>()
                / h.num_buckets() as f64;
            prop_assert!(mean_aspect < 20.0, "mean aspect ratio {mean_aspect}");
        }
    }

    /// Query workloads always stay inside the data MBR and respect the
    /// requested count.
    #[test]
    fn workload_well_formed(ds in arb_dataset(), qsize in 0.01..0.5f64, seed in 0u64..1_000) {
        let w = QueryWorkload::generate(&ds, qsize, 20, seed);
        let mbr = ds.stats().mbr;
        prop_assert_eq!(w.len(), 20);
        for q in w.queries() {
            prop_assert!(mbr.contains_rect(q));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Robustness: the CSV reader is total over arbitrary byte soup — any
    /// input maps to `Ok` or `Err`, never a panic, and an `Ok` dataset
    /// contains only finite rectangles.
    #[test]
    fn csv_reader_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(ds) = minskew::data::read_rects_csv_from(std::io::BufReader::new(&bytes[..])) {
            prop_assert!(ds.rects().iter().all(|r| r.is_finite()));
        }
    }

    /// Robustness: the histogram codec is total over arbitrary byte soup.
    #[test]
    fn codec_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(h) = SpatialHistogram::from_bytes(&bytes) {
            let est = h.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0));
            prop_assert!(est.is_finite() && est >= 0.0);
        }
    }

    /// Robustness: every fault kind applied to a *valid* encoded histogram
    /// or CSV still yields `Ok`-or-`Err`, never a panic.
    #[test]
    fn fault_injected_payloads_never_panic(ds in arb_dataset(), seed in 0u64..1_000) {
        use minskew::data::fault::{FaultInjector, FaultKind};
        let hist_bytes = build_equi_count(&ds, 8).to_bytes();
        let mut csv_bytes = Vec::new();
        for r in ds.rects() {
            csv_bytes.extend_from_slice(
                format!("{},{},{},{}\n", r.lo.x, r.lo.y, r.hi.x, r.hi.y).as_bytes(),
            );
        }
        for kind in FaultKind::ALL {
            let b = FaultInjector::new(seed).corrupt(&hist_bytes, kind);
            let _ = SpatialHistogram::from_bytes(&b);
            let c = FaultInjector::new(seed).corrupt(&csv_bytes, kind);
            if let Ok(parsed) = minskew::data::read_rects_csv_from(std::io::BufReader::new(&c[..])) {
                prop_assert!(parsed.rects().iter().all(|r| r.is_finite()), "{kind:?}");
            }
        }
    }

    /// Robustness: a table built over arbitrary data clamps every estimate
    /// to `[0, N]`, including after walking the degradation ladder.
    #[test]
    fn table_estimates_clamped(ds in arb_dataset(), q in arb_query()) {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in ds.rects() {
            t.insert(*r);
        }
        t.analyze();
        let n = t.len() as f64;
        let est = t.estimate(&q);
        prop_assert!(est.is_finite() && (0.0..=n).contains(&est));
        // Corrupt summary: the ladder engages, bounds still hold.
        let mut bytes = t.stats().expect("analyzed").to_bytes();
        if !bytes.is_empty() {
            let idx = bytes.len() / 2;
            bytes[idx] ^= 0xA5;
        }
        let _ = t.load_stats(&bytes);
        let est = t.estimate(&q);
        prop_assert!(est.is_finite() && (0.0..=n).contains(&est));
    }
}
