//! Golden pin of the `minskew-obs/v1` metrics-export schema, plus the
//! order-independence property of counter merges under the parallel runtime.
//!
//! The JSON exporter is hand-written (no serialization crate), so nothing
//! but this byte-for-byte pin stops field names, ordering, indentation, or
//! the inlined histogram bucket bounds from drifting between releases.
//! External consumers (dashboards, `minskew stats --json` scrapers) parse
//! this document; treat any change here as a schema version bump.

use minskew_obs::{bucket_bounds, Registry, HISTOGRAM_BUCKETS};

/// A handcrafted registry covering every value shape the exporter handles:
/// zero and large counters, finite / negative / non-finite gauges, and a
/// histogram spanning the first bucket, a middle bucket, and the overflow
/// bucket.
fn handcrafted() -> Registry {
    let r = Registry::new();
    r.counter("engine.query.calls").add(12);
    r.counter("zero.counter");
    r.gauge("accuracy.err").set(0.25);
    r.gauge("drift.nan").set(f64::NAN);
    r.gauge("temp.neg").set(-2.5);
    let h = r.histogram("lat.ns");
    h.record(0); // first bucket: [0, 2)
    h.record(1); // first bucket again
    h.record(1_000); // middle bucket: [512, 1024)
    h.record(u64::MAX); // last bucket: [2^63, u64::MAX]
    r
}

/// The pinned export. Every byte matters: schema tag, two-level
/// indentation, sorted names within each section, `null` for non-finite
/// gauges, and `[lo, hi)` bounds inlined per non-empty histogram bucket.
/// Note `"sum": 1000`: the histogram sum is a wrapping u64 (1001 plus the
/// deliberate `u64::MAX` record wraps) — harmless for nanosecond latencies
/// (a wrap needs ~584 years of recorded time) and pinned here so the
/// behaviour is documented rather than accidental.
const GOLDEN_JSON: &str = r#"{
  "schema": "minskew-obs/v1",
  "counters": {
    "engine.query.calls": 12,
    "zero.counter": 0
  },
  "gauges": {
    "accuracy.err": 0.25,
    "drift.nan": null,
    "temp.neg": -2.5
  },
  "histograms": {
    "lat.ns": {"count": 4, "sum": 1000, "buckets": [{"lo": 0, "hi": 2, "count": 2}, {"lo": 512, "hi": 1024, "count": 1}, {"lo": 9223372036854775808, "hi": 18446744073709551615, "count": 1}]}
  }
}
"#;

#[test]
fn metrics_json_schema_is_pinned() {
    if !minskew_obs::enabled() {
        // Under the `noop` feature every recorded value is dropped; the
        // schema skeleton still holds but the pinned values do not.
        return;
    }
    let got = handcrafted().to_json();
    assert_eq!(
        got, GOLDEN_JSON,
        "minskew-obs/v1 JSON drifted; if intentional, bump the schema tag \
         and re-pin"
    );
}

#[test]
fn histogram_bucket_bounds_partition_u64() {
    // The inlined bounds must tile [0, u64::MAX] with no gaps or overlaps:
    // consumers reconstruct distributions from them.
    let mut expected_lo = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, expected_lo, "bucket {i} leaves a gap");
        assert!(hi > lo, "bucket {i} is empty");
        expected_lo = hi;
    }
    assert_eq!(bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
}

#[test]
fn overflowing_sum_stays_a_valid_json_number() {
    if !minskew_obs::enabled() {
        return;
    }
    let r = Registry::new();
    let h = r.histogram("wrap");
    h.record(u64::MAX);
    h.record(u64::MAX);
    // The wrapping sum must still export as a plain JSON number alongside
    // the exact count.
    let json = r.to_json();
    assert!(json.contains("\"count\": 2"), "{json}");
    assert!(json.contains("\"sum\": 18446744073709551614"), "{json}");
}

/// Counter merges across minskew-par workers are order-independent: the
/// same multiset of `add`s lands on the same totals no matter how the
/// scheduler interleaves workers. This is what makes `par.*` metrics
/// trustworthy under the deterministic-parallelism contract.
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_counter_merges_are_order_independent(
            increments in proptest::collection::vec(0u64..1_000, 1..64),
            threads in 1usize..8,
            chunk in 1usize..16,
        ) {
            if !minskew_obs::enabled() {
                return Ok(());
            }
            let serial: u64 = increments.iter().sum();
            // Fan the same increments across parallel workers; every
            // interleaving must merge to the serial total.
            let r = Registry::new();
            let c = r.counter("prop.total");
            minskew_par::map_chunks_queued(threads, chunk, &increments, |&v| {
                c.add(v);
                v
            });
            prop_assert_eq!(c.get(), serial, "threads={} chunk={}", threads, chunk);
            // And a second pass accumulates on top, still exactly.
            minskew_par::map_chunks_queued(threads.max(2), chunk, &increments, |&v| {
                c.add(v);
                v
            });
            prop_assert_eq!(c.get(), 2 * serial);
        }
    }
}
