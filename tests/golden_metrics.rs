//! Golden pin of the `minskew-obs/v1` metrics-export schema, plus the
//! order-independence property of counter merges under the parallel runtime.
//!
//! The JSON exporter is hand-written (no serialization crate), so nothing
//! but this byte-for-byte pin stops field names, ordering, indentation, or
//! the inlined histogram bucket bounds from drifting between releases.
//! External consumers (dashboards, `minskew stats --json` scrapers) parse
//! this document; treat any change here as a schema version bump.

use minskew_obs::{bucket_bounds, Registry, HISTOGRAM_BUCKETS};

/// A handcrafted registry covering every value shape the exporter handles:
/// zero and large counters, finite / negative / non-finite gauges, and a
/// histogram spanning the first bucket, a middle bucket, and the overflow
/// bucket.
fn handcrafted() -> Registry {
    let r = Registry::new();
    r.counter("engine.query.calls").add(12);
    r.counter("zero.counter");
    r.gauge("accuracy.err").set(0.25);
    r.gauge("drift.nan").set(f64::NAN);
    r.gauge("temp.neg").set(-2.5);
    let h = r.histogram("lat.ns");
    h.record(0); // first bucket: [0, 2)
    h.record(1); // first bucket again
    h.record(1_000); // middle bucket: [512, 1024)
    h.record(u64::MAX); // last bucket: [2^63, u64::MAX]
    r
}

/// The pinned export. Every byte matters: schema tag, two-level
/// indentation, sorted names within each section, `null` for non-finite
/// gauges, and `[lo, hi)` bounds inlined per non-empty histogram bucket.
/// Note `"sum": 1000`: the histogram sum is a wrapping u64 (1001 plus the
/// deliberate `u64::MAX` record wraps) — harmless for nanosecond latencies
/// (a wrap needs ~584 years of recorded time) and pinned here so the
/// behaviour is documented rather than accidental.
const GOLDEN_JSON: &str = r#"{
  "schema": "minskew-obs/v1",
  "counters": {
    "engine.query.calls": 12,
    "zero.counter": 0
  },
  "gauges": {
    "accuracy.err": 0.25,
    "drift.nan": null,
    "temp.neg": -2.5
  },
  "histograms": {
    "lat.ns": {"count": 4, "sum": 1000, "buckets": [{"lo": 0, "hi": 2, "count": 2}, {"lo": 512, "hi": 1024, "count": 1}, {"lo": 9223372036854775808, "hi": 18446744073709551615, "count": 1}]}
  }
}
"#;

#[test]
fn metrics_json_schema_is_pinned() {
    if !minskew_obs::enabled() {
        // Under the `noop` feature every recorded value is dropped; the
        // schema skeleton still holds but the pinned values do not.
        return;
    }
    let got = handcrafted().to_json();
    assert_eq!(
        got, GOLDEN_JSON,
        "minskew-obs/v1 JSON drifted; if intentional, bump the schema tag \
         and re-pin"
    );
}

#[test]
fn histogram_bucket_bounds_partition_u64() {
    // The inlined bounds must tile [0, u64::MAX] with no gaps or overlaps:
    // consumers reconstruct distributions from them.
    let mut expected_lo = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, expected_lo, "bucket {i} leaves a gap");
        assert!(hi > lo, "bucket {i} is empty");
        expected_lo = hi;
    }
    assert_eq!(bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
}

#[test]
fn overflowing_sum_stays_a_valid_json_number() {
    if !minskew_obs::enabled() {
        return;
    }
    let r = Registry::new();
    let h = r.histogram("wrap");
    h.record(u64::MAX);
    h.record(u64::MAX);
    // The wrapping sum must still export as a plain JSON number alongside
    // the exact count.
    let json = r.to_json();
    assert!(json.contains("\"count\": 2"), "{json}");
    assert!(json.contains("\"sum\": 18446744073709551614"), "{json}");
}

#[test]
fn every_non_finite_gauge_value_exports_as_null() {
    // Regression pin for the non-finite JSON hazard: NaN, +inf, and -inf
    // must all land as `null` (JSON has no Inf/NaN tokens) in the scraped
    // document — the same family of values the wire `STATS` reply filters
    // out of its staleness field before formatting.
    if !minskew_obs::enabled() {
        return;
    }
    let r = Registry::new();
    r.gauge("gauge.a").set(f64::NAN);
    r.gauge("gauge.b").set(f64::INFINITY);
    r.gauge("gauge.c").set(f64::NEG_INFINITY);
    let json = r.to_json();
    assert!(json.contains("\"gauge.a\": null"), "{json}");
    assert!(json.contains("\"gauge.b\": null"), "{json}");
    assert!(json.contains("\"gauge.c\": null"), "{json}");
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
}

#[test]
fn snapshot_merge_coalesces_same_named_metrics() {
    if !minskew_obs::enabled() {
        return;
    }
    let a = Registry::new();
    a.counter("req").add(u64::MAX - 1); // forces the wrap below
    a.counter("only.a").add(3);
    a.gauge("hi.water").set(1.5);
    a.histogram("lat").record(1);
    let b = Registry::new();
    b.counter("req").add(3);
    b.gauge("hi.water").set(-7.0);
    b.gauge("only.b").set(2.0);
    b.histogram("lat").record(1);
    b.histogram("lat").record(1_000);
    let mut snap = a.snapshot();
    snap.merge(b.snapshot());
    // Counters add with wrapping arithmetic, like the live counter.
    assert_eq!(
        snap.counters,
        vec![("only.a".to_owned(), 3), ("req".to_owned(), 1)]
    );
    // Gauges keep the larger value by IEEE total order.
    assert_eq!(
        snap.gauges,
        vec![("hi.water".to_owned(), 1.5), ("only.b".to_owned(), 2.0)]
    );
    // Histograms add bucket by bucket: the merged snapshot equals one
    // histogram that saw every sample.
    let all = Registry::new();
    let h = all.histogram("lat");
    h.record(1);
    h.record(1);
    h.record(1_000);
    assert_eq!(snap.histograms, all.snapshot().histograms);
    // The merged document is valid, duplicate-free JSON.
    let json = snap.to_json();
    assert_eq!(json.matches("\"req\"").count(), 1, "{json}");
    assert_eq!(json.matches("\"hi.water\"").count(), 1, "{json}");
}

/// Counter merges across minskew-par workers are order-independent: the
/// same multiset of `add`s lands on the same totals no matter how the
/// scheduler interleaves workers. This is what makes `par.*` metrics
/// trustworthy under the deterministic-parallelism contract.
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use minskew_obs::RegistrySnapshot;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_counter_merges_are_order_independent(
            increments in proptest::collection::vec(0u64..1_000, 1..64),
            threads in 1usize..8,
            chunk in 1usize..16,
        ) {
            if !minskew_obs::enabled() {
                return Ok(());
            }
            let serial: u64 = increments.iter().sum();
            // Fan the same increments across parallel workers; every
            // interleaving must merge to the serial total.
            let r = Registry::new();
            let c = r.counter("prop.total");
            minskew_par::map_chunks_queued(threads, chunk, &increments, |&v| {
                c.add(v);
                v
            });
            prop_assert_eq!(c.get(), serial, "threads={} chunk={}", threads, chunk);
            // And a second pass accumulates on top, still exactly.
            minskew_par::map_chunks_queued(threads.max(2), chunk, &increments, |&v| {
                c.add(v);
                v
            });
            prop_assert_eq!(c.get(), 2 * serial);
        }

        /// `RegistrySnapshot::merge` is a commutative, associative fold:
        /// scraping N shard registries and merging in any order yields a
        /// byte-identical export — and the merged histogram is exactly the
        /// histogram that saw every shard's samples.
        #[test]
        fn prop_snapshot_merges_are_order_independent(
            shard_counters in proptest::collection::vec(0u64..1_000_000, 3..6),
            shard_samples in proptest::collection::vec(
                proptest::collection::vec(0u64..2_000_000, 0..24),
                3..6,
            ),
            rotation in 0usize..6,
        ) {
            if !minskew_obs::enabled() {
                return Ok(());
            }
            let shards = shard_counters.len().min(shard_samples.len());
            let snaps: Vec<RegistrySnapshot> = (0..shards)
                .map(|i| {
                    let r = Registry::new();
                    r.counter("shard.req").add(shard_counters[i]);
                    r.gauge("shard.peak").set(shard_counters[i] as f64 / 7.0);
                    let h = r.histogram("shard.lat");
                    for &s in &shard_samples[i] {
                        h.record(s);
                    }
                    r.snapshot()
                })
                .collect();
            let mut fwd = RegistrySnapshot::default();
            for s in &snaps {
                fwd.merge(s.clone());
            }
            let mut rev = RegistrySnapshot::default();
            for s in snaps.iter().rev() {
                rev.merge(s.clone());
            }
            let mut rot = RegistrySnapshot::default();
            for k in 0..shards {
                rot.merge(snaps[(k + rotation) % shards].clone());
            }
            prop_assert_eq!(&fwd.to_json(), &rev.to_json());
            prop_assert_eq!(&fwd.to_json(), &rot.to_json());
            // Histogram-bucket addition: the merged rows equal one
            // histogram fed every shard's samples.
            let all = Registry::new();
            let h = all.histogram("shard.lat");
            for samples in shard_samples.iter().take(shards) {
                for &s in samples {
                    h.record(s);
                }
            }
            prop_assert_eq!(&fwd.histograms, &all.snapshot().histograms);
            // Counter addition matches the serial wrapping sum.
            let total = shard_counters
                .iter()
                .take(shards)
                .fold(0u64, |acc, v| acc.wrapping_add(*v));
            prop_assert_eq!(fwd.counters[0].1, total);
        }

        /// Same-named counters wrap on merge exactly like the live
        /// counter's u64 representation — no saturation, no panic.
        #[test]
        fn prop_counter_merge_wraps_like_the_live_counter(
            a in 0u64..1_000,
            b in 0u64..1_000,
        ) {
            if !minskew_obs::enabled() {
                return Ok(());
            }
            let near_max = u64::MAX - a;
            let r1 = Registry::new();
            r1.counter("wrap").add(near_max);
            let r2 = Registry::new();
            r2.counter("wrap").add(b);
            let mut merged = r1.snapshot();
            merged.merge(r2.snapshot());
            prop_assert_eq!(merged.counters[0].1, near_max.wrapping_add(b));
            // Merging in the other direction lands on the same value.
            let mut flipped = r2.snapshot();
            flipped.merge(r1.snapshot());
            prop_assert_eq!(flipped.counters[0].1, near_max.wrapping_add(b));
        }
    }
}
