//! Golden tests for the serving wire protocol: pinned request/response
//! byte transcripts for every verb, error replies mapped onto the CLI's
//! exit-code taxonomy (2 usage, 3 I/O, 4 malformed data, 5 corrupt stats,
//! 6 build failure), and a malformed-input fuzz pass proving that junk
//! always yields a typed `ERR` reply — the server never panics, never
//! wedges a connection, and keeps serving afterwards.
//!
//! The fixture data is chosen so estimates are trivially exact (`OK 4`),
//! making the estimate replies themselves part of the golden transcript.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use minskew::prelude::*;

/// One live connection speaking the line protocol.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Sends raw bytes (caller includes the newline) and reads one reply.
    fn send_raw(&mut self, bytes: &[u8]) -> String {
        self.reader
            .get_mut()
            .write_all(bytes)
            .expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end_matches('\n').to_string()
    }

    fn send(&mut self, line: &str) -> String {
        self.send_raw(format!("{line}\n").as_bytes())
    }

    /// Sends a framed verb (`FLIGHT` / `METRICS`): reads the `OK <k>`
    /// header, then exactly `k` body lines. Returns `(header, body)`.
    fn send_framed(&mut self, line: &str) -> (String, Vec<String>) {
        let header = self.send(line);
        let count = header
            .strip_prefix("OK ")
            .and_then(|rest| rest.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = Vec::with_capacity(count);
        for _ in 0..count {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read frame line");
            body.push(line.trim_end_matches('\n').to_string());
        }
        (header, body)
    }
}

fn start_server() -> ServerHandle {
    serve(Arc::new(SpatialCatalog::new()), ServeOptions::default()).expect("bind server")
}

#[test]
fn golden_transcript_for_every_verb() {
    let handle = start_server();
    let mut c = Client::connect(handle.addr());
    let dir = std::env::temp_dir().join(format!("minskew-proto-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap = dir.join("t.snap").display().to_string();

    // Structural verbs, pinned byte for byte.
    assert_eq!(c.send("PING"), "OK pong");
    assert_eq!(c.send("TABLES"), "OK 0");
    assert_eq!(c.send("CREATE t buckets=4 shards=2"), "OK created t");
    assert_eq!(
        c.send("CREATE t"),
        "ERR 2 usage: table \"t\" already exists"
    );
    assert_eq!(c.send("TABLES"), "OK 1 t");

    // Four identical rects: every estimate below is exact, so the numeric
    // replies are part of the golden transcript.
    for id in 0..4 {
        assert_eq!(c.send("INSERT t 0 0 10 10"), format!("OK {id}"));
    }
    assert_eq!(c.send("ESTIMATE t 0 0 10 10"), "OK 4", "no-stats fallback");
    assert_eq!(c.send("ESTIMATE t 20 20 30 30"), "OK 0");
    assert_eq!(
        c.send("ANALYZE t"),
        "OK analyzed t buckets=1 fallback=none shards=2"
    );
    assert_eq!(c.send("ESTIMATE t 0 0 10 10"), "OK 4", "histogram estimate");
    assert_eq!(c.send("BATCH t 2 0 0 10 10 20 20 30 30"), "OK 4 0");
    // No-arg STATS carries the request-latency quantiles; the counts and
    // bounds depend on wall-clock timing, so pin shape rather than bytes.
    let stats = c.send("STATS");
    assert!(
        stats.starts_with("OK {\"tables\":1,\"active_connections\":1,\"request_ns\":{\"count\":"),
        "{stats}"
    );
    for key in ["\"p50\":", "\"p95\":", "\"p99\":"] {
        assert!(stats.contains(key), "{stats}");
    }
    assert_eq!(
        c.send("STATS t"),
        "OK {\"table\":\"t\",\"rows\":4,\"buckets\":1,\"shards\":2,\
         \"generation\":5,\"fallback\":\"none\",\"maintenance\":\"reanalyze\",\
         \"staleness\":0.000000}"
    );
    assert_eq!(
        c.send("MAINTAIN t"),
        "OK maintained t mode=reanalyze accuracy: no sampled queries yet; action: none",
        "fresh statistics need no repair"
    );
    assert_eq!(
        c.send("MAINTAIN t MODE refine"),
        "OK maintenance t mode=refine"
    );
    assert_eq!(
        c.send("MAINTAIN t MODE bogus"),
        "ERR 2 usage: unknown maintenance mode \"bogus\" (expected off, reanalyze, or refine)"
    );
    assert_eq!(
        c.send(&format!("SNAPSHOT t SAVE {snap}")),
        "OK saved t buckets=1"
    );
    assert_eq!(
        c.send(&format!("SNAPSHOT t LOAD {snap}")),
        "OK loaded t buckets=1"
    );
    assert_eq!(c.send("DELETE t 3"), "OK deleted 3");
    assert_eq!(c.send("DELETE t 9"), "ERR 2 usage: unknown rowid 9");
    assert_eq!(c.send("DROP t"), "OK dropped t");
    assert_eq!(c.send("TABLES"), "OK 0");

    let _ = std::fs::remove_dir_all(&dir);
    handle.shutdown();
}

#[test]
fn error_replies_cover_the_exit_code_taxonomy() {
    let handle = start_server();
    let mut c = Client::connect(handle.addr());
    let dir = std::env::temp_dir().join(format!("minskew-proto-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");

    assert_eq!(c.send("CREATE t"), "OK created t");
    assert_eq!(c.send("INSERT t 0 0 10 10"), "OK 0");

    // 2 — usage: unknown verbs/tables, malformed queries, empty requests,
    // and SAVE with no statistics installed.
    assert_eq!(c.send("FROB"), "ERR 2 usage: unknown verb \"FROB\"");
    assert_eq!(c.send(""), "ERR 2 usage: empty request");
    assert_eq!(
        c.send("ESTIMATE ghost 0 0 1 1"),
        "ERR 2 usage: unknown table \"ghost\""
    );
    assert_eq!(
        c.send("ESTIMATE t nan 0 1 1"),
        "ERR 2 rectangle corner coordinates must be finite"
    );
    assert_eq!(
        c.send("ESTIMATE t 1e400 0 1 1"),
        "ERR 2 rectangle corner coordinates must be finite",
        "overflow to infinity is rejected, not folded"
    );
    let save_no_stats = c.send(&format!("SNAPSHOT t SAVE {}", dir.join("x").display()));
    assert!(save_no_stats.starts_with("ERR 2 "), "{save_no_stats}");

    // 3 — I/O: loading a snapshot that does not exist.
    let missing = c.send(&format!(
        "SNAPSHOT t LOAD {}",
        dir.join("missing").display()
    ));
    assert!(missing.starts_with("ERR 3 "), "{missing}");

    // 4 — malformed data: unparsable row payloads.
    assert_eq!(c.send("INSERT t a b c d"), "ERR 4 bad coordinate \"a\"");

    // 5 — corrupt statistics: a snapshot file full of garbage.
    let garbage = dir.join("garbage.snap");
    std::fs::write(&garbage, b"this is not a snapshot container").expect("write");
    let corrupt = c.send(&format!("SNAPSHOT t LOAD {}", garbage.display()));
    assert!(corrupt.starts_with("ERR 5 "), "{corrupt}");

    // 6 — build failure: table options the engine rejects.
    let build = c.send("CREATE bad buckets=0");
    assert!(build.starts_with("ERR 6 "), "{build}");

    // The connection survived every error class.
    assert_eq!(c.send("PING"), "OK pong");
    let _ = std::fs::remove_dir_all(&dir);
    handle.shutdown();
}

#[test]
fn malformed_input_fuzz_yields_typed_errors_and_never_wedges() {
    let handle = start_server();
    let mut c = Client::connect(handle.addr());
    assert_eq!(c.send("CREATE t"), "OK created t");

    let fuzz: Vec<Vec<u8>> = vec![
        b"\x00\x01\x02\xff\xfe binary junk".to_vec(),
        b"\xc3\x28 invalid utf8".to_vec(), // overlong/invalid UTF-8 sequence
        b"ESTIMATE".to_vec(),
        b"ESTIMATE t".to_vec(),
        b"ESTIMATE t 1 2 3".to_vec(),
        b"ESTIMATE t 1 2 3 4 5".to_vec(),
        b"BATCH t -1".to_vec(),
        b"BATCH t 999999 0 0 1 1".to_vec(),
        b"BATCH t 2 0 0 1 1".to_vec(), // count/coordinate mismatch
        b"INSERT t 1e99999 0 1 1".to_vec(),
        b"DELETE t not-a-number".to_vec(),
        b"SNAPSHOT t TWIST /tmp/x".to_vec(),
        b"CREATE x buckets=huge".to_vec(),
        b"CREATE x frobnicate=1".to_vec(),
        b"create-with-trailing-space ".to_vec(),
        " \t ".as_bytes().to_vec(),
        vec![b'A'; 4096], // one long unknown verb
        // Malformed trace ids: empty token, illegal characters, over-long
        // token. All must yield a typed error with NO `TID=` echo.
        b"TID= PING".to_vec(),
        b"TID=bad!token PING".to_vec(),
        b"TID=qu\"ote PING".to_vec(),
        {
            let mut long = b"TID=".to_vec();
            long.extend(std::iter::repeat_n(b'a', 65));
            long.extend(b" PING");
            long
        },
    ];
    for (i, case) in fuzz.iter().enumerate() {
        let mut request = case.clone();
        request.push(b'\n');
        let reply = c.send_raw(&request);
        assert!(
            reply.starts_with("ERR "),
            "fuzz case {i} must yield a typed error (and malformed trace \
             ids must never be echoed), got {reply:?}"
        );
        // The connection still serves normal traffic: no wedge, no panic.
        assert_eq!(
            c.send("PING"),
            "OK pong",
            "fuzz case {i} wedged the connection"
        );
    }

    // A second connection is unaffected by the first one's abuse.
    let mut c2 = Client::connect(handle.addr());
    assert_eq!(c2.send("TABLES"), "OK 1 t");
    handle.shutdown();
}

#[test]
fn trace_ids_and_observability_verbs_round_trip() {
    // A server whose wire flight recorder samples every estimate, so the
    // FLIGHT drain below is deterministic.
    let catalog = Arc::new(SpatialCatalog::new());
    let armed = TableOptions {
        flight_sample: 1,
        metrics_sampling: 1,
        ..TableOptions::default()
    };
    let handle = serve(
        Arc::clone(&catalog),
        ServeOptions {
            table_options: armed,
            ..ServeOptions::default()
        },
    )
    .expect("bind server");
    let mut c = Client::connect(handle.addr());
    assert_eq!(c.send("CREATE t"), "OK created t");
    for id in 0..4 {
        assert_eq!(c.send("INSERT t 0 0 10 10"), format!("OK {id}"));
    }
    assert_eq!(
        c.send("ANALYZE t"),
        "OK analyzed t buckets=1 fallback=none shards=1"
    );

    // Valid trace ids echo on success and on typed errors alike, and the
    // un-tagged replies stay byte-identical to the golden transcript.
    assert_eq!(c.send("TID=q1 PING"), "TID=q1 OK pong");
    assert_eq!(
        c.send("TID=q1 FROB"),
        "TID=q1 ERR 2 usage: unknown verb \"FROB\""
    );
    assert_eq!(c.send("TID=q2 ESTIMATE t 0 0 10 10"), "TID=q2 OK 4");
    assert_eq!(c.send("ESTIMATE t 0 0 10 10"), "OK 4", "no tag, no echo");
    // The full token alphabet survives the round trip.
    assert_eq!(c.send("TID=a.Z-9_x PING"), "TID=a.Z-9_x OK pong");

    // EXPLAIN: the headline field is byte-identical to the ESTIMATE reply
    // (both print the same bits through the same formatter).
    let explain = c.send("EXPLAIN t 0 0 10 10");
    assert!(explain.starts_with("OK {\"estimate\":4,"), "{explain}");
    for key in ["\"path\":", "\"cache\":", "\"generation\":", "\"detail\":"] {
        assert!(explain.contains(key), "{explain}");
    }
    assert_eq!(
        c.send("EXPLAIN t nan 0 1 1"),
        "ERR 2 rectangle corner coordinates must be finite"
    );

    // FLIGHT: framed `OK <k>` + k pinned JSONL lines, carrying the trace
    // id stamped on the sampled ESTIMATE above.
    let (header, body) = c.send_framed("FLIGHT");
    if minskew_obs::enabled() {
        assert!(
            !body.is_empty(),
            "sample-every recorder drained nothing: {header}"
        );
        assert_eq!(header, format!("OK {}", body.len()));
        for line in &body {
            assert!(
                line.starts_with("{\"schema\":\"minskew-obs/flight-v1\","),
                "{line}"
            );
        }
        assert!(
            body.iter().any(|l| l.contains("\"tid\":\"q2\"")),
            "trace id q2 missing from flight records: {body:?}"
        );
        // A bounded drain returns at most that many records.
        let (_, bounded) = c.send_framed("FLIGHT 1");
        assert_eq!(bounded.len(), 1);
    } else {
        assert_eq!(header, "OK 0", "noop build records nothing");
    }
    // The per-table recorder drains through the same verb.
    let (table_header, _) = c.send_framed("FLIGHT t");
    assert!(table_header.starts_with("OK "), "{table_header}");
    assert!(
        c.send("FLIGHT ghost").starts_with("ERR 2 "),
        "unknown table"
    );

    // METRICS: framed registry scrape in both formats, server and table.
    let (header, body) = c.send_framed("METRICS");
    assert!(header.starts_with("OK "), "{header}");
    assert_eq!(body.first().map(String::as_str), Some("{"));
    let doc = body.join("\n");
    assert!(doc.contains("\"schema\": \"minskew-obs/v1\""), "{doc}");
    if minskew_obs::enabled() {
        assert!(doc.contains("serve.verb.ping"), "{doc}");
        assert!(doc.contains("serve.flight.recorded"), "{doc}");
    }
    let (_, text_body) = c.send_framed("METRICS text");
    if minskew_obs::enabled() {
        assert!(
            text_body.iter().any(|l| l.starts_with("serve.requests")),
            "{text_body:?}"
        );
    }
    let (_, table_body) = c.send_framed("METRICS t json");
    if minskew_obs::enabled() {
        assert!(
            table_body.iter().any(|l| l.contains("engine.")),
            "table scrape must expose engine metrics: {table_body:?}"
        );
    }
    assert!(c.send("METRICS t yaml").starts_with("ERR 2 "), "bad format");
    assert!(
        c.send("METRICS ghost").starts_with("ERR 2 "),
        "unknown table"
    );

    // The connection survived the whole tour.
    assert_eq!(c.send("PING"), "OK pong");
    handle.shutdown();
}

#[test]
fn shutdown_verb_stops_the_server_cleanly() {
    let handle = start_server();
    let mut c = Client::connect(handle.addr());
    assert_eq!(c.send("CREATE t shards=3"), "OK created t");
    assert_eq!(c.send("INSERT t 0 0 5 5"), "OK 0");
    assert_eq!(c.send("SHUTDOWN"), "OK bye");
    assert!(handle.shutdown_requested());
    // join() drains the accept loop and every connection thread, then
    // returns the final metrics: the request counters must have seen us
    // (unless minskew-obs is compiled to no-ops, where nothing records).
    let metrics = handle.join();
    let text = metrics.to_text();
    if minskew_obs::enabled() {
        assert!(text.contains("serve.requests"), "{text}");
        assert!(text.contains("serve.verb.shutdown"), "{text}");
    }
    // New connections are refused or go unanswered after shutdown.
    assert!(
        TcpStream::connect_timeout(
            &"127.0.0.1:1".parse().expect("addr"),
            std::time::Duration::from_millis(10),
        )
        .is_err(),
        "sanity: connecting to a dead port errors"
    );
}

#[test]
fn batch_replies_preserve_request_order_and_library_bits() {
    // BATCH evaluates in Morton order of the query centres; the wire reply
    // must nevertheless come back in **request** order, with every value
    // bit-identical to the library. The query mix is scattered across the
    // extent (distinct answers) and reversed, so request order is far from
    // Morton order — any order leak would misalign the replies.
    let data = minskew_datagen::charminar_with(1_500, 79);
    let catalog = Arc::new(SpatialCatalog::new());
    let entry = catalog
        .create(
            "roads",
            TableOptions {
                shards: 4,
                ..TableOptions::default()
            },
        )
        .expect("create");
    {
        let mut table = entry.table();
        for r in data.rects() {
            table.insert(*r);
        }
        table.analyze();
    }
    let handle = serve(catalog, ServeOptions::default()).expect("bind");
    let mut c = Client::connect(handle.addr());
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width(), mbr.height());
    let mut queries = Vec::new();
    for i in 0..16 {
        let f = i as f64 / 16.0;
        let x = mbr.lo.x + f * w * 0.5;
        let y = mbr.lo.y + (1.0 - f) * h * 0.5;
        let size = 0.1 + 0.05 * i as f64;
        queries.push(Rect::new(x, y, x + size * w, y + size * h));
    }
    queries.reverse();
    let expected: Vec<f64> = {
        let table = entry.table();
        queries.iter().map(|q| table.estimate(q)).collect()
    };
    let distinct: std::collections::HashSet<u64> = expected.iter().map(|v| v.to_bits()).collect();
    assert!(
        distinct.len() > 8,
        "query mix must produce distinct answers for the order check: {expected:?}"
    );
    let mut line = format!("BATCH roads {}", queries.len());
    for q in &queries {
        line.push_str(&format!(" {} {} {} {}", q.lo.x, q.lo.y, q.hi.x, q.hi.y));
    }
    let reply = c.send(&line);
    let values: Vec<f64> = reply
        .strip_prefix("OK ")
        .expect("batch reply")
        .split(' ')
        .map(|t| t.parse().expect("parse batch value"))
        .collect();
    assert_eq!(values.len(), expected.len(), "reply arity: {reply:?}");
    for (i, (got, want)) in values.iter().zip(&expected).enumerate() {
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "batch reply {i} out of order or off by bits: reply {reply:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn estimates_over_the_wire_are_bit_identical_to_the_library() {
    // The wire uses shortest-round-trip f64 formatting, so parsing the
    // reply must recover exactly the bits the engine computed.
    let data = minskew_datagen::charminar_with(1_500, 61);
    let catalog = Arc::new(SpatialCatalog::new());
    let entry = catalog
        .create(
            "roads",
            TableOptions {
                shards: 4,
                ..TableOptions::default()
            },
        )
        .expect("create");
    {
        let mut table = entry.table();
        for r in data.rects() {
            table.insert(*r);
        }
        table.analyze();
    }
    let handle = serve(catalog, ServeOptions::default()).expect("bind");
    let mut c = Client::connect(handle.addr());
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width(), mbr.height());
    let table = entry.table();
    for i in 0..25 {
        let f = i as f64 / 25.0;
        let q = Rect::new(
            mbr.lo.x + f * w * 0.8,
            mbr.lo.y + (1.0 - f) * h * 0.8,
            mbr.lo.x + f * w * 0.8 + 0.1 * w,
            mbr.lo.y + (1.0 - f) * h * 0.8 + 0.1 * h,
        );
        let expected = table.estimate(&q);
        let reply = c.send(&format!(
            "ESTIMATE roads {} {} {} {}",
            q.lo.x, q.lo.y, q.hi.x, q.hi.y
        ));
        let value: f64 = reply
            .strip_prefix("OK ")
            .expect("estimate reply")
            .parse()
            .expect("parse estimate");
        assert_eq!(
            expected.to_bits(),
            value.to_bits(),
            "wire round trip changed the bits: query {i}, reply {reply:?}"
        );
    }
    drop(table);
    handle.shutdown();
}
