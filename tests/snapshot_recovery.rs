//! Snapshot recovery differential suite: every injected fault kind, against
//! every statistics technique, must end in exactly one of two outcomes —
//!
//! 1. the snapshot still decodes and installs **byte-identical**
//!    statistics (the fault happened to be harmless), or
//! 2. the decoder reports a typed error, the graceful loader quarantines
//!    the file and walks the degradation ladder to a documented rung
//!    ([`StatsFallback::RebuiltFromData`] or [`StatsFallback::Uniform`]),
//!    and every estimate stays finite and clamped to `[0, N]`.
//!
//! Nothing in between: no panic, no silent mis-decode, no unbounded
//! estimate, no stuck table. The base tests run under plain `cargo test`;
//! the exhaustive fault × technique × seed matrix runs under
//! `--features snapshot` (CI tier), and the arbitrary-byte-mutation
//! property tests under `--features proptest`.

use minskew::prelude::*;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("minskew-snaprec-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

const TECHNIQUES: [StatsTechnique; 4] = [
    StatsTechnique::MinSkew,
    StatsTechnique::EquiArea,
    StatsTechnique::EquiCount,
    StatsTechnique::Uniform,
];

fn technique_label(t: StatsTechnique) -> &'static str {
    match t {
        StatsTechnique::MinSkew => "min-skew",
        StatsTechnique::EquiArea => "equi-area",
        StatsTechnique::EquiCount => "equi-count",
        StatsTechnique::Uniform => "uniform",
    }
}

fn analyzed_table(technique: StatsTechnique, n: usize, seed: u64) -> SpatialTable {
    let mut t = SpatialTable::new(TableOptions {
        analyze: AnalyzeOptions {
            technique,
            buckets: 24,
            regions: 1_024,
            ..AnalyzeOptions::default()
        },
        ..TableOptions::default()
    });
    for r in minskew::datagen::charminar_with(n, seed).rects() {
        t.insert(*r);
    }
    t.analyze();
    t
}

/// The core differential: corrupt a valid snapshot with `kind`, then prove
/// the strict and graceful loaders land in one of the two allowed outcomes.
fn assert_recovery_contract(
    dir: &std::path::Path,
    technique: StatsTechnique,
    kind: FaultKind,
    seed: u64,
) {
    let label = format!("{}/{kind:?}/seed{seed}", technique_label(technique));
    let path = dir.join(format!(
        "{}-{kind:?}-{seed}.snap",
        technique_label(technique)
    ));
    let table = analyzed_table(technique, 1_200, seed);
    let pristine = table.stats().expect("analyzed").to_bytes();
    table.save_snapshot(&path).expect("save");

    let good = std::fs::read(&path).expect("readable");
    let mut injector = FaultInjector::new(seed);
    let corrupted = injector.corrupt(&good, kind);
    std::fs::write(&path, &corrupted).expect("rewrite");

    // Strict load: typed error or untouched success, never a panic.
    let mut strict = analyzed_table(technique, 1_200, seed);
    match strict.try_load_snapshot(&path) {
        Ok(_) => {
            // Outcome 1: the fault was harmless (e.g. the identity
            // rename-fault or a bit flip in skipped padding). The installed
            // statistics must be byte-identical to the originals.
            assert_eq!(
                strict.stats().expect("installed").to_bytes(),
                pristine,
                "{label}: survivable fault must decode byte-identically"
            );
        }
        Err(SnapshotIoError::Corrupt(_)) => {
            // Outcome 2 (strict half): previous stats stay installed.
            assert_eq!(
                strict.stats().expect("still installed").to_bytes(),
                pristine,
                "{label}: strict load must not disturb installed stats"
            );
        }
        Err(other) => panic!("{label}: unexpected error class: {other}"),
    }

    // Graceful load: always ends with a working, bounded table.
    let mut graceful = analyzed_table(technique, 1_200, seed);
    let report = graceful.load_snapshot(&path);
    if report.installed {
        assert_eq!(
            graceful.stats().expect("installed").to_bytes(),
            pristine,
            "{label}: graceful install must be byte-identical"
        );
        assert!(report.quarantined.is_none(), "{label}");
    } else {
        assert!(
            matches!(
                report.diagnostics.fallback,
                StatsFallback::RebuiltFromData | StatsFallback::Uniform
            ),
            "{label}: fallback rung {:?} is not a documented recovery rung",
            report.diagnostics.fallback
        );
        assert!(
            report
                .diagnostics
                .last_error
                .as_deref()
                .is_some_and(|e| e.contains("corrupt snapshot")),
            "{label}: recovery must record its trigger"
        );
        let q = report.quarantined.as_ref().expect("quarantined");
        assert!(q.exists(), "{label}: quarantine file must exist");
        assert_eq!(
            std::fs::read(q).expect("quarantine readable"),
            corrupted,
            "{label}: quarantine must preserve the damaged bytes"
        );
        assert!(!path.exists(), "{label}: original path must be cleared");
    }
    // The clamp contract holds in every outcome.
    let n = graceful.len() as f64;
    for q in [
        Rect::new(-1e9, -1e9, 1e9, 1e9),
        Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
        Rect::new(9_500.0, 9_500.0, 9_600.0, 9_600.0),
    ] {
        let est = graceful.estimate(&q);
        assert!(
            est.is_finite() && (0.0..=n).contains(&est),
            "{label}: estimate {est} escapes [0, {n}]"
        );
    }
}

#[test]
fn every_fault_kind_recovers_on_min_skew() {
    let dir = tmp_dir("base");
    for kind in FaultKind::SNAPSHOT {
        assert_recovery_contract(&dir, StatsTechnique::MinSkew, kind, 42);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_round_trip_is_byte_identical_for_every_technique() {
    let dir = tmp_dir("clean");
    for technique in TECHNIQUES {
        let path = dir.join(format!("{}.snap", technique_label(technique)));
        let table = analyzed_table(technique, 900, 7);
        let info = table.save_snapshot(&path).expect("save");
        assert_eq!(info.version, FormatVersion::Container);
        let mut fresh = analyzed_table(technique, 900, 7);
        fresh.try_load_snapshot(&path).expect("load");
        assert_eq!(
            fresh.stats().expect("installed").to_bytes(),
            table.stats().expect("analyzed").to_bytes(),
            "{}: round trip must preserve bytes",
            technique_label(technique)
        );
        // verify is read-only and agrees.
        let on_disk = std::fs::read(&path).expect("readable");
        let verified = verify_snapshot(&on_disk).expect("verifies");
        assert_eq!(verified.buckets, info.buckets);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_write_faults_are_retried_and_permanent_ones_leave_dest_intact() {
    let dir = tmp_dir("atomic");
    let path = dir.join("stats.snap");
    let table = analyzed_table(StatsTechnique::MinSkew, 800, 3);
    table.save_snapshot(&path).expect("seed snapshot");
    let old = std::fs::read(&path).expect("readable");
    let fresh = analyzed_table(StatsTechnique::MinSkew, 800, 99);
    let new_bytes = fresh.stats().expect("analyzed").to_snapshot_bytes();
    let opts = minskew::data::atomic::AtomicWriteOptions {
        max_attempts: 4,
        initial_backoff: std::time::Duration::from_micros(50),
    };
    // Two transient rename failures: the bounded retry heals them.
    minskew::data::write_atomic_chaos(&path, &new_bytes, &opts, FaultKind::RenameFail, 1, 2, true)
        .expect("retry must heal transient faults");
    assert_eq!(std::fs::read(&path).expect("readable"), new_bytes);
    // Failures outlasting the budget: typed error, destination untouched.
    std::fs::write(&path, &old).expect("reset");
    let err = minskew::data::write_atomic_chaos(
        &path,
        &new_bytes,
        &opts,
        FaultKind::RenameFail,
        1,
        99,
        true,
    )
    .expect_err("budget exhausted");
    assert_eq!(err.attempts, 4);
    assert_eq!(
        std::fs::read(&path).expect("readable"),
        old,
        "failed atomic write must leave the previous snapshot whole"
    );
    // Torn temp-file writes also never reach the destination.
    for seed in 0..8 {
        let _ = minskew::data::write_atomic_chaos(
            &path,
            &new_bytes,
            &opts,
            FaultKind::TornWrite,
            seed,
            99,
            false,
        );
        let now = std::fs::read(&path).expect("readable");
        assert_eq!(now, old, "seed {seed}: destination torn");
        assert!(
            verify_snapshot(&now).is_ok(),
            "seed {seed}: destination must stay a valid snapshot"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Exhaustive CI matrix: every snapshot fault kind × every technique ×
/// several seeds. Run with `cargo test --test snapshot_recovery
/// --features snapshot`.
#[cfg(feature = "snapshot")]
#[test]
fn exhaustive_fault_technique_matrix() {
    let dir = tmp_dir("matrix");
    for technique in TECHNIQUES {
        for kind in FaultKind::SNAPSHOT {
            for seed in [1u64, 2, 3, 17, 1_000_003] {
                assert_recovery_contract(&dir, technique, kind, seed);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Decode totality under arbitrary mutation: no byte string, however
/// mangled, may panic the snapshot decoder. Run with `--features proptest`.
#[cfg(feature = "proptest")]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    fn container_bytes() -> Vec<u8> {
        let table = analyzed_table(StatsTechnique::MinSkew, 400, 11);
        table.stats().expect("analyzed").to_snapshot_bytes()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary bytes: decode returns Ok or a typed error, never
        /// panics, and verify agrees with decode about validity.
        #[test]
        fn decode_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let decoded = SpatialHistogram::from_snapshot_bytes(&bytes);
            let verified = verify_snapshot(&bytes);
            prop_assert_eq!(decoded.is_ok(), verified.is_ok());
        }

        /// Point mutations of a valid container: flip any byte to any
        /// value, decode stays total; an accepted mutant must still
        /// satisfy the decoder's own invariants (re-encode round trips).
        #[test]
        fn decode_survives_point_mutations(offset in 0usize..6_000, value in any::<u8>()) {
            let mut bytes = container_bytes();
            let len = bytes.len();
            bytes[offset % len] = value;
            if let Ok((hist, info)) = SpatialHistogram::from_snapshot_bytes(&bytes) {
                prop_assert!(info.buckets <= minskew::estimators::MAX_SNAPSHOT_BUCKETS);
                let reencoded = hist.to_snapshot_bytes();
                prop_assert!(SpatialHistogram::from_snapshot_bytes(&reencoded).is_ok());
            }
        }

        /// Fault-injector corpus: structured corruption (the kinds real
        /// storage produces) is decoded totally too.
        #[test]
        fn decode_is_total_on_injected_faults(seed in any::<u64>()) {
            let good = container_bytes();
            let mut injector = FaultInjector::new(seed);
            for kind in FaultKind::ALL {
                let corrupted = injector.corrupt(&good, kind);
                let _ = SpatialHistogram::from_snapshot_bytes(&corrupted);
                let _ = verify_snapshot(&corrupted);
            }
        }
    }
}
