//! Concurrency stress for the lock-free serving path: reader threads
//! hammer `estimate` while a writer loops statistics installs, and every
//! observed estimate must be **exactly** the value computed under one of
//! the published statistics — the old install or the new one, never a
//! torn mixture and never a stale cache hit.
//!
//! This is the teeth behind the publication protocol in
//! `minskew_engine::publish`: snapshots are immutable and installed via an
//! epoch-flip cell, so a reader's estimate is always computed against one
//! coherent snapshot. The suite runs ≥1000 install cycles under 4
//! concurrent readers (CI pins `RUST_TEST_THREADS=1` so the stress owns
//! its thread budget).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use minskew::prelude::*;
use minskew_datagen::charminar_with;

const INSTALL_CYCLES: usize = 1_200;
const READER_THREADS: usize = 4;

/// Builds the shared table (4 shards, cache on) plus two distinct valid
/// statistics payloads and the exact per-query bits each one serves.
struct Fixture {
    table: SpatialTable,
    queries: Vec<Rect>,
    stats_a: Vec<u8>,
    stats_b: Vec<u8>,
    bits_a: Vec<u64>,
    bits_b: Vec<u64>,
}

fn fixture() -> Fixture {
    let data = charminar_with(2_000, 53);
    let mut table = SpatialTable::new(TableOptions {
        shards: 4,
        ..TableOptions::default()
    });
    for r in data.rects() {
        table.insert(*r);
    }
    let stats_a = MinSkewBuilder::new(8).regions(256).build(&data).to_bytes();
    let stats_b = MinSkewBuilder::new(40).regions(256).build(&data).to_bytes();
    let mbr = data.stats().mbr;
    let (w, h) = (mbr.width(), mbr.height());
    let mut queries = Vec::new();
    for i in 0..12 {
        let f = i as f64 / 12.0;
        let x = mbr.lo.x + f * w * 0.8;
        let y = mbr.lo.y + (1.0 - f) * h * 0.8;
        queries.push(Rect::new(x, y, x + 0.15 * w, y + 0.15 * h));
    }
    queries.push(mbr);
    queries.push(Rect::from_point(mbr.center()));
    let expected = |table: &mut SpatialTable, stats: &[u8]| -> Vec<u64> {
        table.load_stats(stats);
        queries
            .iter()
            .map(|q| table.estimate(q).to_bits())
            .collect()
    };
    let bits_a = expected(&mut table, &stats_a);
    let bits_b = expected(&mut table, &stats_b);
    assert_ne!(
        bits_a, bits_b,
        "the two installs must serve distinguishable estimates"
    );
    Fixture {
        table,
        queries,
        stats_a,
        stats_b,
        bits_a,
        bits_b,
    }
}

#[test]
fn concurrent_readers_never_observe_torn_or_stale_estimates() {
    let fx = fixture();
    let queries = Arc::new(fx.queries);
    let bits_a = Arc::new(fx.bits_a);
    let bits_b = Arc::new(fx.bits_b);
    // Mint one lock-free reader per thread before the table goes behind
    // the writer's mutex — readers never take that lock.
    let reader_protos: Vec<SpatialReader> =
        (0..READER_THREADS).map(|_| fx.table.reader()).collect();
    let table = Arc::new(Mutex::new(fx.table));
    let done = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(AtomicU64::new(0));
    // Start line: the writer may not begin installing until every reader
    // is live, so installs genuinely race with estimate traffic.
    let start = Arc::new(Barrier::new(READER_THREADS + 1));

    let writer = {
        let table = Arc::clone(&table);
        let done = Arc::clone(&done);
        let start = Arc::clone(&start);
        let (a, b) = (fx.stats_a.clone(), fx.stats_b.clone());
        std::thread::spawn(move || {
            start.wait();
            for cycle in 0..INSTALL_CYCLES {
                let stats = if cycle % 2 == 0 { &a } else { &b };
                table.lock().expect("writer lock").load_stats(stats);
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = reader_protos
        .into_iter()
        .map(|mut reader| {
            let queries = Arc::clone(&queries);
            let bits_a = Arc::clone(&bits_a);
            let bits_b = Arc::clone(&bits_b);
            let done = Arc::clone(&done);
            let observed = Arc::clone(&observed);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                let mut last_generation = 0u64;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    for (i, q) in queries.iter().enumerate() {
                        let got = reader.estimate(q).to_bits();
                        assert!(
                            got == bits_a[i] || got == bits_b[i],
                            "torn estimate: query {i} returned {got:#x}, expected \
                             {:#x} (stats A) or {:#x} (stats B)",
                            bits_a[i],
                            bits_b[i]
                        );
                        observed.fetch_add(1, Ordering::Relaxed);
                    }
                    let generation = reader.generation();
                    assert!(
                        generation >= last_generation,
                        "generation went backwards: {last_generation} -> {generation}"
                    );
                    last_generation = generation;
                    if finished {
                        break;
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
    let total = observed.load(Ordering::Relaxed);
    assert!(
        total >= (READER_THREADS * queries.len()) as u64,
        "readers must have observed estimates ({total})"
    );
    // After the dust settles every reader value equals the final install
    // (cycle count is even, so stats B was installed last).
    let mut reader = table.lock().expect("final lock").reader();
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            reader.estimate(q).to_bits(),
            bits_b[i],
            "final state, query {i}"
        );
    }
}

#[test]
fn cache_hits_never_serve_pre_install_estimates() {
    // The satellite fix under test: cache flush is atomic with snapshot
    // publication, so an estimate cached under generation g can never be
    // served after a publication bumped the generation.
    let fx = fixture();
    let mut table = fx.table;
    let q = &fx.queries[0];

    // Warm both the table's serving cache and a lock-free reader's cache
    // under stats B (installed last by the fixture).
    let mut reader = table.reader();
    assert_eq!(table.estimate(q).to_bits(), fx.bits_b[0]);
    assert_eq!(table.estimate(q).to_bits(), fx.bits_b[0], "cached");
    assert_eq!(reader.estimate(q).to_bits(), fx.bits_b[0]);
    assert_eq!(reader.estimate(q).to_bits(), fx.bits_b[0], "cached");

    // Install stats A: the very next estimate must be A's value on both
    // paths — a hit on the pre-install cache entry would return B's.
    table.load_stats(&fx.stats_a);
    assert_eq!(
        table.estimate(q).to_bits(),
        fx.bits_a[0],
        "table served a pre-install cached estimate"
    );
    assert_eq!(
        reader.estimate(q).to_bits(),
        fx.bits_a[0],
        "reader served a pre-install cached estimate"
    );

    // Same contract through row churn (publication without a new stats
    // era): inserts republish, so caches flush and the estimate may only
    // change to the freshly computed value, never a stale one.
    let before = table.estimate(&fx.queries[1]);
    let id = table.insert(Rect::new(0.0, 0.0, 1.0, 1.0));
    let after_table = table.estimate(&fx.queries[1]);
    let after_reader = reader.estimate(&fx.queries[1]);
    assert_eq!(after_table.to_bits(), after_reader.to_bits());
    table.delete(id);
    let _ = before;
    assert_eq!(
        table.estimate(&fx.queries[1]).to_bits(),
        reader.estimate(&fx.queries[1]).to_bits()
    );
}

#[test]
fn readers_and_tables_agree_while_writer_holds_the_lock() {
    // A reader minted from a locked table serves the last publication —
    // locking a table for a slow ANALYZE must not block estimate traffic.
    let fx = fixture();
    let table = Arc::new(Mutex::new(fx.table));
    let mut reader = table.lock().expect("lock").reader();
    let guard = table.lock().expect("hold");
    for (i, q) in fx.queries.iter().enumerate() {
        assert_eq!(
            reader.estimate(q).to_bits(),
            fx.bits_b[i],
            "reader blocked or diverged under a held table lock (query {i})"
        );
    }
    drop(guard);
}
