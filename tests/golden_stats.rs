//! Golden test: the committed `charminar.stats` pins the snapshot container
//! format, the statistics wire codec, and the Min-Skew construction
//! algorithm, all at once.
//!
//! The file is produced by `examples/summary_persistence.rs`
//! (`charminar_with(30_000, 5)` summarised by `MinSkewBuilder::new(100)`
//! with default settings, sealed with `to_snapshot_bytes`). Decoding it,
//! re-encoding it, and rebuilding it from scratch must all reproduce the
//! committed bytes exactly, so any container drift (header layout, section
//! table, checksum algorithm), codec drift (payload layout, endianness), or
//! construction drift (split order, tie-breaking, skew arithmetic) fails
//! tier-1 loudly instead of silently invalidating every catalog ever
//! persisted.
//!
//! If this test fails because of an *intentional* format or algorithm
//! change, regenerate the golden file with
//! `cargo run --release --example summary_persistence` and say so in the
//! commit message — that is a catalog-breaking change.

use minskew::prelude::*;

fn golden_bytes() -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/charminar.stats");
    std::fs::read(path).expect("committed charminar.stats is readable")
}

#[test]
fn golden_stats_round_trips_byte_for_byte() {
    let bytes = golden_bytes();
    let info = verify_snapshot(&bytes).expect("committed golden snapshot verifies");
    assert_eq!(info.version, FormatVersion::Container);
    assert_eq!(info.technique, "Min-Skew");
    let (hist, _) =
        SpatialHistogram::from_snapshot_bytes(&bytes).expect("committed golden file decodes");
    assert_eq!(
        hist.to_snapshot_bytes(),
        bytes,
        "re-sealing the committed histogram changed its bytes: container or codec drift"
    );
}

#[test]
fn golden_stats_matches_fresh_construction() {
    let bytes = golden_bytes();
    let data = minskew::datagen::charminar_with(30_000, 5);
    for threads in [1usize, 4] {
        let rebuilt = MinSkewBuilder::new(100).threads(threads).build(&data);
        assert_eq!(
            rebuilt.to_snapshot_bytes(),
            bytes,
            "rebuilding with threads={threads} diverged from the committed \
             golden file: construction drift"
        );
    }
}

#[test]
fn golden_stats_sanity() {
    let (hist, _) = SpatialHistogram::from_snapshot_bytes(&golden_bytes()).expect("decodes");
    assert_eq!(hist.num_buckets(), 100);
    // The summary must still describe the Charminar distribution: the four
    // corner clusters hold most of the mass.
    let corner = Rect::new(0.0, 0.0, 2_500.0, 2_500.0);
    let middle = Rect::new(3_750.0, 3_750.0, 6_250.0, 6_250.0);
    assert!(hist.estimate_count(&corner) > hist.estimate_count(&middle));
}

#[test]
fn golden_stats_payload_decodes_via_legacy_shim() {
    // The container's payload section is exactly the legacy on-disk format:
    // extracting it and handing it to the decoder exercises the
    // backwards-compatibility shim every pre-container catalog depends on.
    let (hist, _) = SpatialHistogram::from_snapshot_bytes(&golden_bytes()).expect("decodes");
    let legacy = hist.to_bytes();
    let (via_shim, info) =
        SpatialHistogram::from_snapshot_bytes(&legacy).expect("legacy shim decodes");
    assert_eq!(info.version, FormatVersion::Legacy);
    assert_eq!(via_shim.to_bytes(), legacy);
}
