//! Golden test: the committed `charminar.stats` pins both the wire format
//! and the Min-Skew construction algorithm.
//!
//! The file is produced by `examples/summary_persistence.rs`
//! (`charminar_with(30_000, 5)` summarised by `MinSkewBuilder::new(100)`
//! with default settings). Decoding it, re-encoding it, and rebuilding it
//! from scratch must all reproduce the committed bytes exactly, so any
//! codec drift (layout, endianness, header fields) or construction drift
//! (split order, tie-breaking, skew arithmetic) fails tier-1 loudly
//! instead of silently invalidating every catalog ever persisted.
//!
//! If this test fails because of an *intentional* format or algorithm
//! change, regenerate the golden file with
//! `cargo run --release --example summary_persistence` and say so in the
//! commit message — that is a catalog-breaking change.

use minskew::prelude::*;

fn golden_bytes() -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/charminar.stats");
    std::fs::read(path).expect("committed charminar.stats is readable")
}

#[test]
fn golden_stats_round_trips_byte_for_byte() {
    let bytes = golden_bytes();
    let hist = SpatialHistogram::from_bytes(&bytes).expect("committed golden file decodes");
    assert_eq!(
        hist.to_bytes(),
        bytes,
        "re-encoding the committed histogram changed its bytes: codec drift"
    );
}

#[test]
fn golden_stats_matches_fresh_construction() {
    let bytes = golden_bytes();
    let data = minskew::datagen::charminar_with(30_000, 5);
    for threads in [1usize, 4] {
        let rebuilt = MinSkewBuilder::new(100).threads(threads).build(&data);
        assert_eq!(
            rebuilt.to_bytes(),
            bytes,
            "rebuilding with threads={threads} diverged from the committed \
             golden file: construction drift"
        );
    }
}

#[test]
fn golden_stats_sanity() {
    let hist = SpatialHistogram::from_bytes(&golden_bytes()).expect("decodes");
    assert_eq!(hist.num_buckets(), 100);
    // The summary must still describe the Charminar distribution: the four
    // corner clusters hold most of the mass.
    let corner = Rect::new(0.0, 0.0, 2_500.0, 2_500.0);
    let middle = Rect::new(3_750.0, 3_750.0, 6_250.0, 6_250.0);
    assert!(hist.estimate_count(&corner) > hist.estimate_count(&middle));
}
