//! Cross-crate integration tests: the full estimation pipeline from data
//! generation through summarisation, persistence, and evaluation.

use minskew::prelude::*;
use minskew_workload::evaluate_all;

/// The paper's headline claim at small scale: on skewed data, Min-Skew has
/// the lowest average relative error of all techniques across query sizes.
#[test]
fn minskew_wins_on_charminar() {
    let data = minskew::datagen::charminar_with(20_000, 1);
    let truth = GroundTruth::index(&data);
    let buckets = 50;

    let minskew = MinSkewBuilder::new(buckets).regions(2_500).build(&data);
    let equi_count = build_equi_count(&data, buckets);
    let equi_area = build_equi_area(&data, buckets);
    let uniform = build_uniform(&data);
    let sample = SamplingEstimator::build(&data, buckets, 2);
    let estimators: Vec<&dyn SpatialEstimator> =
        vec![&minskew, &equi_count, &equi_area, &uniform, &sample];

    for qsize in [0.05, 0.15, 0.25] {
        let w = QueryWorkload::generate(&data, qsize, 1_000, 3);
        let reports = evaluate_all(&estimators, &w, &truth);
        let ms = reports[0].avg_relative_error;
        for other in &reports[1..] {
            assert!(
                ms <= other.avg_relative_error * 1.05,
                "QSize {qsize}: Min-Skew {ms:.3} must not lose to {} {:.3}",
                other.name,
                other.avg_relative_error
            );
        }
    }
}

/// Errors must decrease (weakly) as the query size grows — the paper's
/// Figure 8 trend — for the bucket-based techniques.
#[test]
fn errors_shrink_with_query_size() {
    let data = minskew::datagen::charminar_with(10_000, 4);
    let truth = GroundTruth::index(&data);
    let hist = MinSkewBuilder::new(50).regions(2_500).build(&data);
    let mut errs = Vec::new();
    for (i, qsize) in [0.02, 0.10, 0.25].into_iter().enumerate() {
        let w = QueryWorkload::generate(&data, qsize, 1_500, 10 + i as u64);
        let counts = truth.counts(w.queries());
        errs.push(evaluate(&hist, &w, &counts).avg_relative_error);
    }
    // The broad Figure 8 trend: the smallest queries are the hardest. The
    // middle point may wobble (errors are already small), so compare the
    // endpoints.
    assert!(
        errs[2] < errs[0],
        "QSize 25% error {} should undercut QSize 2% error {}",
        errs[2],
        errs[0]
    );
}

/// Round-trip through the catalog codec preserves estimates exactly, for
/// every bucket-based technique.
#[test]
fn persistence_roundtrip_for_all_bucket_techniques() {
    let data = minskew::datagen::charminar_with(5_000, 5);
    let hists = vec![
        MinSkewBuilder::new(30).regions(900).build(&data),
        build_equi_area(&data, 30),
        build_equi_count(&data, 30),
        build_uniform(&data),
    ];
    let queries: Vec<Rect> = QueryWorkload::generate(&data, 0.1, 50, 6)
        .queries()
        .to_vec();
    for h in hists {
        let back = SpatialHistogram::from_bytes(&h.to_bytes()).expect("decode");
        for q in &queries {
            assert_eq!(back.estimate_count(q), h.estimate_count(q), "{}", h.name());
        }
    }
}

/// Point queries (degenerate rectangles) flow through the whole pipeline.
#[test]
fn point_query_pipeline() {
    let data = minskew::datagen::charminar_with(8_000, 7);
    let truth = GroundTruth::index(&data);
    let hist = MinSkewBuilder::new(50).regions(2_500).build(&data);
    let w = QueryWorkload::points(&data, 500, 8);
    let counts = truth.counts(w.queries());
    // Every point query hits at least the rect whose centre seeded it.
    assert!(counts.iter().all(|&c| c >= 1));
    let rep = evaluate(&hist, &w, &counts);
    assert!(rep.avg_relative_error.is_finite());
    // Point estimates should at least be in a sane band on average.
    assert!(
        rep.avg_relative_error < 3.0,
        "err = {}",
        rep.avg_relative_error
    );
}

/// The uniformity baseline really is bad on skewed data (the paper's
/// motivation): its error stays high where Min-Skew's is low.
#[test]
fn uniform_is_a_poor_baseline_on_skewed_data() {
    let data = minskew::datagen::charminar_with(20_000, 9);
    let truth = GroundTruth::index(&data);
    let uni = build_uniform(&data);
    let ms = MinSkewBuilder::new(100).regions(2_500).build(&data);
    let w = QueryWorkload::generate(&data, 0.05, 1_000, 10);
    let counts = truth.counts(w.queries());
    let e_uni = evaluate(&uni, &w, &counts).avg_relative_error;
    let e_ms = evaluate(&ms, &w, &counts).avg_relative_error;
    assert!(e_uni > 0.4, "Uniform should err badly, got {e_uni}");
    assert!(
        e_ms < e_uni / 2.0,
        "Min-Skew ({e_ms}) should at least halve Uniform's error ({e_uni})"
    );
}

/// The R*-tree ground truth agrees with a brute-force scan end to end.
#[test]
fn ground_truth_agrees_with_scan() {
    let data = minskew::datagen::charminar_with(3_000, 11);
    let truth = GroundTruth::index(&data);
    let w = QueryWorkload::generate(&data, 0.1, 200, 12);
    for q in w.queries() {
        assert_eq!(truth.count(q), data.count_intersecting(q));
    }
}

/// Estimator trait objects: the whole roster can be driven polymorphically.
#[test]
fn trait_object_roster() {
    let data = minskew::datagen::charminar_with(2_000, 13);
    let estimators: Vec<Box<dyn SpatialEstimator>> = vec![
        Box::new(MinSkewBuilder::new(20).regions(400).build(&data)),
        Box::new(build_equi_area(&data, 20)),
        Box::new(build_equi_count(&data, 20)),
        Box::new(build_uniform(&data)),
        Box::new(SamplingEstimator::build(&data, 20, 14)),
        Box::new(FractalEstimator::build(&data)),
    ];
    let q = Rect::new(0.0, 0.0, 3_000.0, 3_000.0);
    for e in &estimators {
        let est = e.estimate_count(&q);
        assert!(est.is_finite() && est >= 0.0, "{} broke", e.name());
        assert!(e.size_bytes() > 0);
        assert_eq!(e.input_len(), 2_000);
    }
}

/// The robustness tentpole end to end: a table survives a corrupt persisted
/// summary, a grid too coarse for its budget, and fault-injected source
/// data, serving degraded-but-bounded estimates throughout, and recovers
/// fully once healthy statistics are rebuilt.
#[test]
fn fault_and_recovery_cycle_keeps_estimates_bounded() {
    use minskew::data::fault::{FaultInjector, FaultKind, FaultSource};
    use minskew::data::RectSource;

    let data = minskew::datagen::charminar_with(5_000, 17);
    let mut table = SpatialTable::new(TableOptions::default());
    for r in data.rects() {
        table.insert(*r);
    }
    let n = table.len() as f64;
    let queries = [
        Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
        Rect::new(-1e9, -1e9, 1e9, 1e9),
        Rect::new(5_000.0, 5_000.0, 5_001.0, 5_001.0),
    ];
    let assert_bounded = |table: &SpatialTable, stage: &str| {
        for q in &queries {
            let est = table.estimate(q);
            assert!(
                est.is_finite() && (0.0..=n).contains(&est),
                "{stage}: estimate {est} escapes [0, {n}] for {q:?}"
            );
        }
    };

    // Healthy baseline.
    table.analyze();
    assert_eq!(table.stats_diagnostics().fallback, StatsFallback::None);
    assert_bounded(&table, "healthy");
    let healthy = table.stats().expect("analyzed").to_bytes();

    // Stage 1: every fault kind applied to the persisted summary. The codec
    // must reject (or the decoded summary still estimate within bounds) —
    // never panic — and the table must keep answering.
    for kind in FaultKind::ALL {
        for seed in 0..10u64 {
            let corrupt = FaultInjector::new(seed).corrupt(&healthy, kind);
            let _ = table.load_stats(&corrupt);
            assert_bounded(&table, &format!("after {kind:?}/{seed} summary"));
        }
    }

    // Stage 2: a corrupt summary triggers rebuild-from-data, and the table
    // reports it.
    let mut corrupt = healthy.clone();
    corrupt[12] ^= 0x40;
    let diag = table.load_stats(&corrupt);
    if diag.degraded {
        assert!(
            diag.fallback == StatsFallback::RebuiltFromData
                || diag.fallback == StatsFallback::Uniform,
            "{diag:?}"
        );
    }
    assert_bounded(&table, "after corrupt summary");

    // Stage 3: fault-injected sources still yield buildable statistics via
    // the lenient path or clean errors via the strict path — never a panic.
    for kind in [FaultKind::Truncate, FaultKind::EarlyEof] {
        let faulty = FaultSource::new(&data, kind, 23);
        let hist = MinSkewBuilder::new(20)
            .regions(400)
            .build_from_source(&faulty);
        let est = hist.estimate_count(&queries[0]);
        assert!(est.is_finite() && est >= 0.0, "{kind:?}: {est}");
        assert_eq!(faulty.stats().n, data.len(), "stats pass through");
    }

    // Stage 4: recovery — reloading the healthy summary clears degradation.
    let diag = table.load_stats(&healthy);
    assert_eq!(diag.fallback, StatsFallback::None);
    assert!(!diag.degraded);
    assert_bounded(&table, "recovered");
}

/// The strict construction surface agrees across the stack: precondition
/// violations surface as typed errors from `core`, `engine`, and the facade
/// prelude, while the lenient wrappers keep their legacy behaviour.
#[test]
fn try_api_surface_is_consistent() {
    let empty = Dataset::new(vec![]);
    assert!(matches!(
        MinSkewBuilder::try_new(10).and_then(|b| b.try_build(&empty)),
        Err(BuildError::EmptyDataset)
    ));
    assert!(matches!(
        try_build_equi_area(&empty, 5),
        Err(BuildError::EmptyDataset)
    ));
    assert!(matches!(
        try_build_equi_count(&empty, 5),
        Err(BuildError::EmptyDataset)
    ));
    assert!(matches!(
        try_build_grid(&empty, 5),
        Err(BuildError::EmptyDataset)
    ));
    assert!(matches!(
        try_build_rtree_partitioning(&empty, 5, Default::default()),
        Err(BuildError::EmptyDataset)
    ));
    // Uniform is the degradation floor: empty is fine.
    assert!(try_build_uniform(&empty).is_ok());

    let data = minskew::datagen::charminar_with(500, 5);
    assert!(matches!(
        MinSkewBuilder::try_new(0),
        Err(BuildError::ZeroBucketBudget)
    ));
    assert!(matches!(
        MinSkewBuilder::try_new(100)
            .and_then(|b| b.try_regions(4))
            .and_then(|b| b.try_build(&data)),
        Err(BuildError::GridTooCoarse {
            regions: 4,
            buckets: 100
        })
    ));
    // The lenient wrapper still degrades silently (legacy behaviour).
    assert!(
        MinSkewBuilder::new(100)
            .regions(4)
            .build(&data)
            .num_buckets()
            <= 4
    );
    // Engine options are validated the same way.
    assert!(SpatialTable::try_new(TableOptions::default()).is_ok());
}
