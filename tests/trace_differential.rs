//! Differential suite for the query-tracing layer: **observation must be
//! bit-invisible**.
//!
//! Two contracts are pinned here:
//!
//! 1. **EXPLAIN recomputes, never re-derives.** The explained estimate
//!    (`SpatialHistogram::estimate_count_explained`) and its ordered
//!    per-bucket term sum must be bitwise equal to the indexed serving
//!    path (`estimate_count_indexed`) for every technique, every extension
//!    rule, and every adversarial query shape — and the engine-level trace
//!    (`SpatialTable::try_explain` / `SpatialReader::try_explain`) must
//!    report exactly the bits the corresponding estimate entry point
//!    returns, through the cache, sharding, and clamping layers.
//!
//! 2. **The flight recorder and trace ids never touch an estimate.** A
//!    table serving with the recorder fully armed (sample every query,
//!    slow threshold at 1 ns, wrong threshold at the smallest residual)
//!    must produce bit-identical estimates to an identically-built table
//!    with the recorder off, and to one with metrics off entirely.
//!
//! The base matrix below always runs (tier 1). The `trace` feature turns
//! on the exhaustive cross product on larger inputs. CI also re-runs the
//! suite with `minskew-obs`'s `noop` feature (recorder compiled out) and
//! under `RUST_TEST_THREADS=1`.

use minskew::prelude::*;
use minskew_datagen::{charminar_with, uniform_rects, SyntheticSpec};

const RULES: [ExtensionRule; 3] = [
    ExtensionRule::Minkowski,
    ExtensionRule::PaperLiteral,
    ExtensionRule::None,
];

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("charminar", charminar_with(1_600 * scale, 71)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(1_000 * scale).generate(73),
        ),
        (
            "uniform",
            uniform_rects(
                900 * scale,
                Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
                40.0,
                40.0,
                79,
            ),
        ),
        (
            "point-pile",
            Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 48]),
        ),
    ]
}

/// All seven bucket-histogram techniques over one dataset.
fn techniques(data: &Dataset, buckets: usize) -> Vec<SpatialHistogram> {
    vec![
        MinSkewBuilder::new(buckets).regions(1_024).build(data),
        build_equi_area(data, buckets),
        build_equi_count(data, buckets),
        build_rtree_partitioning_default(data, buckets),
        build_uniform(data),
        build_grid(data, buckets),
        build_optimal_bsp(data, buckets.min(8), 8).histogram,
    ]
}

/// Edge-adversarial query mix derived from the histogram's own bucket
/// bounds (exact MBRs, corner points, zero-overlap edge touches,
/// degenerate lines), plus global covers, far-disjoint shapes, and a size
/// sweep — the same hard cases the kernel differential uses.
fn adversarial_queries(hist: &SpatialHistogram, mbr: Rect) -> Vec<Rect> {
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for b in hist.buckets().iter().take(6) {
        let m = b.mbr;
        out.push(m);
        out.push(Rect::from_point(m.lo));
        out.push(Rect::from_point(m.hi));
        out.push(Rect::new(m.lo.x - w, m.lo.y, m.lo.x, m.hi.y));
        out.push(Rect::new(m.hi.x, m.lo.y, m.hi.x + w, m.hi.y));
        let cx = (m.lo.x + m.hi.x) / 2.0;
        let cy = (m.lo.y + m.hi.y) / 2.0;
        out.push(Rect::new(cx, m.lo.y - h, cx, m.hi.y + h));
        out.push(Rect::new(m.lo.x - w, cy, m.hi.x + w, cy));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h));
    out.push(Rect::new(
        mbr.hi.x + 3.0 * w,
        mbr.hi.y + 3.0 * h,
        mbr.hi.x + 4.0 * w,
        mbr.hi.y + 4.0 * h,
    ));
    for i in 0..8 {
        let f = i as f64 / 8.0;
        let x = mbr.lo.x + f * w * 0.85;
        let y = mbr.lo.y + (1.0 - f) * h * 0.85;
        out.push(Rect::new(x, y, x + 0.12 * w, y + 0.12 * h));
    }
    out
}

/// Asserts the explained scan agrees with the indexed serving path bit for
/// bit, and that the trace is internally consistent: the ordered term sum
/// reproduces the headline, terms are unique and sorted by bucket id, and
/// the pruning counters account for every bucket.
fn assert_trace_differential(
    context: &str,
    hist: &SpatialHistogram,
    queries: &[Rect],
    scratch: &mut IndexScratch,
) {
    for q in queries {
        let indexed = hist.estimate_count_indexed(q, scratch);
        let trace = hist.estimate_count_explained(q, scratch);
        assert_eq!(
            indexed.to_bits(),
            trace.estimate().to_bits(),
            "explained estimate diverged from the indexed path: {context} \
             technique={} q={q} (indexed={indexed}, explained={})",
            hist.name(),
            trace.estimate(),
        );
        let sum = trace.kernel.term_sum();
        assert_eq!(
            indexed.to_bits(),
            sum.to_bits(),
            "ordered term sum does not reproduce the estimate: {context} \
             technique={} q={q} (estimate={indexed}, term_sum={sum})",
            hist.name(),
        );
        assert_eq!(trace.rule, hist.extension_rule(), "{context}");
        assert_eq!(trace.num_buckets, hist.num_buckets(), "{context}");
        let terms = &trace.kernel.terms;
        for pair in terms.windows(2) {
            assert!(
                pair[0].bucket < pair[1].bucket,
                "terms must be unique and sorted by bucket id: {context} q={q}"
            );
        }
        for t in terms {
            assert!(
                (t.bucket as usize) < hist.num_buckets(),
                "term names a bucket outside the histogram: {context} q={q}"
            );
            assert!(
                (0.0..=1.0).contains(&t.fraction),
                "clipped fraction out of range: {context} q={q} fraction={}",
                t.fraction
            );
        }
        let prune = &trace.kernel.prune;
        assert!(
            terms.len() <= prune.buckets_classified,
            "more terms than classified buckets: {context} q={q}"
        );
        assert!(
            prune.buckets_classified <= hist.num_buckets(),
            "classified more buckets than exist: {context} q={q}"
        );
        assert!(
            prune.quads_pruned <= prune.quads_tested,
            "pruned more quads than tested: {context} q={q}"
        );
        assert!(prune.blocks_pruned <= prune.blocks, "{context} q={q}");
    }
}

#[test]
fn explained_estimate_is_bitwise_identical_to_indexed() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(1) {
        let mbr = data.stats().mbr;
        for hist in techniques(&data, 24) {
            for rule in RULES {
                let hist = hist.clone().with_extension_rule(rule);
                let queries = adversarial_queries(&hist, mbr);
                let context = format!("dataset={name} rule={rule:?}");
                assert_trace_differential(&context, &hist, &queries, &mut scratch);
            }
        }
    }
}

#[cfg(feature = "trace")]
#[test]
fn explained_matrix_exhaustive() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(3) {
        let mbr = data.stats().mbr;
        for buckets in [8, 48, 96] {
            for hist in techniques(&data, buckets) {
                for rule in RULES {
                    let hist = hist.clone().with_extension_rule(rule);
                    let queries = adversarial_queries(&hist, mbr);
                    let context = format!("dataset={name} buckets={buckets} rule={rule:?}");
                    assert_trace_differential(&context, &hist, &queries, &mut scratch);
                }
            }
        }
    }
}

/// Standard serving workload for the engine-level tests.
fn engine_queries(mbr: Rect) -> Vec<Rect> {
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for i in 0..40 {
        let f = f64::from(i) / 40.0;
        let x = mbr.lo.x + f * w * 0.9;
        let y = mbr.lo.y + (1.0 - f) * h * 0.9;
        out.push(Rect::new(x, y, x + 0.08 * w, y + 0.08 * h));
    }
    out.push(mbr);
    out.push(mbr.expanded(w, h)); // clamps against live rows
    out.push(Rect::new(
        mbr.hi.x + w,
        mbr.hi.y + h,
        mbr.hi.x + 2.0 * w,
        mbr.hi.y + 2.0 * h,
    ));
    out
}

fn filled_table(data: &Dataset, options: TableOptions) -> SpatialTable {
    let mut table = SpatialTable::new(options);
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    table
}

#[test]
fn engine_explain_reports_exactly_the_served_bits() {
    let data = charminar_with(2_000, 83);
    let mbr = data.stats().mbr;
    for shards in [1usize, 4] {
        let table = filled_table(
            &data,
            TableOptions {
                shards,
                ..TableOptions::default()
            },
        );
        let mut reader = table.reader();
        for q in engine_queries(mbr) {
            let trace = table.try_explain(&q).expect("finite query");
            let served = table.estimate(&q);
            assert_eq!(
                served.to_bits(),
                trace.estimate.to_bits(),
                "table trace diverged: shards={shards} q={q}"
            );
            let expected_path = if shards > 1 { "sharded" } else { "indexed" };
            assert_eq!(trace.path.label(), expected_path, "shards={shards}");
            if trace.clamped {
                assert_ne!(trace.raw.to_bits(), trace.estimate.to_bits());
            } else {
                assert_eq!(trace.raw.to_bits(), trace.estimate.to_bits());
            }
            // Reader side: EXPLAIN first (must not warm the cache), then
            // the estimate, then EXPLAIN again (now a would-be hit).
            let rtrace = reader.try_explain(&q).expect("finite query");
            assert_eq!(
                served.to_bits(),
                rtrace.estimate.to_bits(),
                "reader trace diverged: shards={shards} q={q}"
            );
            assert_ne!(
                rtrace.cache,
                CacheDisposition::Hit,
                "EXPLAIN must not insert into the reader cache"
            );
            let rserved = reader.try_estimate(&q).expect("finite query");
            assert_eq!(served.to_bits(), rserved.to_bits());
            let rtrace = reader.try_explain(&q).expect("finite query");
            assert_eq!(rtrace.cache, CacheDisposition::Hit, "q={q}");
            assert_eq!(
                served.to_bits(),
                rtrace.estimate.to_bits(),
                "a would-be cache hit must trace the same bits"
            );
            // Unsharded tables expose the kernel detail; the fallback-only
            // path (no stats) is the one case without it.
            assert!(rtrace.detail.is_some(), "analyzed tables carry detail");
        }
    }
    // Non-finite queries are rejected exactly like the estimate path.
    let table = filled_table(&data, TableOptions::default());
    let bad = Rect {
        lo: Point::new(f64::NAN, 0.0),
        hi: Point::new(1.0, 1.0),
    };
    assert!(table.try_explain(&bad).is_err());
    assert!(table.reader().try_explain(&bad).is_err());
}

#[test]
fn never_analyzed_tables_trace_the_fallback_path() {
    let mut table = SpatialTable::new(TableOptions {
        auto_analyze_threshold: None,
        ..TableOptions::default()
    });
    for i in 0..20 {
        let x = f64::from(i) * 10.0;
        table.insert(Rect::new(x, x, x + 5.0, x + 5.0));
    }
    let q = Rect::new(0.0, 0.0, 50.0, 50.0);
    let trace = table.try_explain(&q).expect("finite query");
    assert_eq!(trace.path.label(), "fallback");
    assert!(trace.detail.is_none(), "no buckets to blame");
    assert_eq!(trace.estimate.to_bits(), table.estimate(&q).to_bits());
}

/// Flight-recorder configurations that must all serve identical bits.
fn recorder_configs() -> Vec<(&'static str, TableOptions)> {
    let armed = TableOptions {
        metrics_sampling: 1,
        flight_sample: 1,
        flight_slow_ns: 1,
        flight_residual: f64::MIN_POSITIVE,
        ..TableOptions::default()
    };
    let disarmed = TableOptions {
        flight_capacity: 0,
        ..TableOptions::default()
    };
    let dark = TableOptions {
        metrics: false,
        ..TableOptions::default()
    };
    vec![
        ("armed", armed),
        ("disarmed", disarmed),
        ("metrics-off", dark),
    ]
}

#[test]
fn flight_recorder_is_bit_invisible_to_estimates() {
    let data = charminar_with(1_800, 89);
    let mbr = data.stats().mbr;
    let queries = engine_queries(mbr);
    let mut baseline: Option<Vec<u64>> = None;
    for (name, options) in recorder_configs() {
        let table = filled_table(&data, options);
        let mut served: Vec<u64> = Vec::new();
        for q in &queries {
            served.push(table.estimate(q).to_bits());
        }
        // The batch and reader paths ride along under the same recorder.
        let mut reader = table.reader();
        for q in &queries {
            served.push(reader.estimate(q).to_bits());
        }
        for v in table.estimate_batch(&queries) {
            served.push(v.to_bits());
        }
        match &baseline {
            None => baseline = Some(served),
            Some(expected) => assert_eq!(
                expected, &served,
                "recorder config {name:?} changed served estimate bits"
            ),
        }
    }
}

#[test]
fn armed_recorder_captures_slow_sampled_and_wrong_queries() {
    if !minskew::obs::enabled() {
        // `noop` build: the recorder is compiled out; bit-invisibility is
        // covered above and capacity is structurally zero.
        let table = filled_table(&charminar_with(400, 97), recorder_configs().remove(0).1);
        assert_eq!(table.flight_recorder().capacity(), 0);
        return;
    }
    let data = charminar_with(1_800, 97);
    let mbr = data.stats().mbr;
    let (_, options) = recorder_configs().remove(0);
    let table = filled_table(&data, options);
    for q in engine_queries(mbr) {
        let _ = table.estimate(&q);
    }
    let recorder = table.flight_recorder();
    assert!(recorder.total() > 0, "armed recorder saw nothing");
    let records = recorder.recent(usize::MAX);
    assert!(
        records.iter().all(|(_, r)| r.exact.is_none()),
        "serving-path records carry no exact count before any audit"
    );
    // The accuracy audit replays the reservoir against exact counts; with
    // the smallest positive residual threshold, any estimation error at
    // all produces `wrong` records carrying the exact count.
    let before = recorder.total();
    let report = table.audit_accuracy().expect("sampled queries resident");
    if report.avg_relative_error > 0.0 {
        let records = recorder.recent(usize::MAX);
        assert!(
            records.iter().any(|(_, r)| r.exact.is_some()),
            "audit with error {} recorded no wrong-query records \
             (total {} -> {})",
            report.avg_relative_error,
            before,
            recorder.total(),
        );
    }
    // Drained JSONL is schema-pinned.
    let jsonl = recorder.to_jsonl(8);
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"schema\":\"minskew-obs/flight-v1\","),
            "unpinned flight line: {line}"
        );
    }
    // A disarmed twin records nothing through the same workload.
    let (_, disarmed) = recorder_configs().remove(1);
    let table = filled_table(&data, disarmed);
    for q in engine_queries(mbr) {
        let _ = table.estimate(&q);
    }
    assert_eq!(table.flight_recorder().total(), 0);
}

#[cfg(feature = "trace")]
#[test]
fn recorder_matrix_exhaustive_bit_invisibility() {
    // Every technique × shard count × recorder config serves one bit
    // pattern per query stream.
    for technique in [
        StatsTechnique::MinSkew,
        StatsTechnique::EquiArea,
        StatsTechnique::EquiCount,
        StatsTechnique::Uniform,
    ] {
        for shards in [1usize, 4] {
            let data = charminar_with(2_400, 101);
            let queries = engine_queries(data.stats().mbr);
            let mut baseline: Option<Vec<u64>> = None;
            for (name, mut options) in recorder_configs() {
                options.analyze.technique = technique;
                options.shards = shards;
                let table = filled_table(&data, options);
                let served: Vec<u64> = queries
                    .iter()
                    .map(|q| table.estimate(q).to_bits())
                    .collect();
                match &baseline {
                    None => baseline = Some(served),
                    Some(expected) => assert_eq!(
                        expected, &served,
                        "recorder config {name:?} changed bits: \
                         technique={technique:?} shards={shards}"
                    ),
                }
            }
        }
    }
}
