//! Differential suite for the SoA clip-and-accumulate kernel: the
//! structure-of-arrays estimate paths (`estimate_count` and
//! `estimate_count_indexed`, both backed by [`BucketPlane`]) must be
//! **bit-identical** to the scalar AoS fold (`estimate_count_reference`, a
//! left-to-right sum of `Bucket::estimate` over the bucket slice) for every
//! technique, every extension rule, and every query shape — with the query
//! mix deliberately biased toward the kernel's hard cases: bucket edges hit
//! exactly, point queries on corners, degenerate zero-extent queries, and
//! queries whose expanded form exactly touches a bucket boundary.
//!
//! The base matrix below always runs (tier 1). The `kernel` feature turns
//! on the exhaustive cross product on larger inputs; the `proptest` feature
//! adds randomized differential properties; the `fast-math` feature adds
//! the reassociated-sum accuracy bound. CI also runs the suite under
//! `RUST_TEST_THREADS=1` so test-scheduler interference cannot mask bugs.

use minskew::prelude::*;
use minskew_datagen::{charminar_with, uniform_rects, RoadNetworkSpec, SyntheticSpec};

const RULES: [ExtensionRule; 3] = [
    ExtensionRule::Minkowski,
    ExtensionRule::PaperLiteral,
    ExtensionRule::None,
];

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("charminar", charminar_with(2_000 * scale, 47)),
        (
            "synthetic",
            SyntheticSpec::default().with_n(1_200 * scale).generate(53),
        ),
        (
            "road",
            RoadNetworkSpec {
                segments: 1_200 * scale,
                ..RoadNetworkSpec::default()
            }
            .generate(59),
        ),
        (
            "uniform",
            uniform_rects(
                1_000 * scale,
                Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
                40.0,
                40.0,
                61,
            ),
        ),
        (
            "point-pile",
            Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 48]),
        ),
    ]
}

/// All seven bucket-histogram techniques over one dataset.
fn techniques(data: &Dataset, buckets: usize) -> Vec<SpatialHistogram> {
    vec![
        MinSkewBuilder::new(buckets).regions(1_024).build(data),
        build_equi_area(data, buckets),
        build_equi_count(data, buckets),
        build_rtree_partitioning_default(data, buckets),
        build_uniform(data),
        build_grid(data, buckets),
        build_optimal_bsp(data, buckets.min(8), 8).histogram,
    ]
}

/// Edge-adversarial query mix derived from the histogram's **own** bucket
/// bounds, so the clip arithmetic hits exact-equality branches: queries
/// that are a bucket's MBR verbatim, that touch one edge with zero overlap
/// width, point queries on corners, and degenerate line queries through
/// bucket interiors.
fn adversarial_queries(hist: &SpatialHistogram, mbr: Rect) -> Vec<Rect> {
    let (w, h) = (mbr.width().max(1.0), mbr.height().max(1.0));
    let mut out = Vec::new();
    for b in hist.buckets().iter().take(6) {
        let m = b.mbr;
        out.push(m); // exact bucket bounds
        out.push(Rect::from_point(m.lo)); // corner points
        out.push(Rect::from_point(m.hi));
        // Touching one edge exactly: zero-width / zero-height overlap.
        out.push(Rect::new(m.lo.x - w, m.lo.y, m.lo.x, m.hi.y));
        out.push(Rect::new(m.hi.x, m.lo.y, m.hi.x + w, m.hi.y));
        out.push(Rect::new(m.lo.x, m.hi.y, m.hi.x, m.hi.y + h));
        // Degenerate lines through the bucket interior.
        let cx = (m.lo.x + m.hi.x) / 2.0;
        let cy = (m.lo.y + m.hi.y) / 2.0;
        out.push(Rect::new(cx, m.lo.y - h, cx, m.hi.y + h));
        out.push(Rect::new(m.lo.x - w, cy, m.hi.x + w, cy));
    }
    // Plus the global shapes: everything, far-disjoint, a sweep of sizes.
    out.push(mbr);
    out.push(mbr.expanded(w, h));
    out.push(Rect::new(
        mbr.hi.x + 3.0 * w,
        mbr.hi.y + 3.0 * h,
        mbr.hi.x + 4.0 * w,
        mbr.hi.y + 4.0 * h,
    ));
    for i in 0..8 {
        let f = i as f64 / 8.0;
        let x = mbr.lo.x + f * w * 0.85;
        let y = mbr.lo.y + (1.0 - f) * h * 0.85;
        out.push(Rect::new(x, y, x + 0.12 * w, y + 0.12 * h));
    }
    out
}

/// Asserts the four estimate paths agree bit for bit on every query:
/// kernel linear, AoS reference, kernel indexed, AoS indexed.
fn assert_kernel_differential(
    context: &str,
    hist: &SpatialHistogram,
    queries: &[Rect],
    scratch: &mut IndexScratch,
) {
    for q in queries {
        let reference = hist.estimate_count_reference(q);
        let kernel = hist.estimate_count(q);
        assert_eq!(
            reference.to_bits(),
            kernel.to_bits(),
            "kernel fold diverged from the AoS reference: {context} technique={} \
             q={q} (reference={reference}, kernel={kernel})",
            hist.name(),
        );
        let indexed = hist.estimate_count_indexed(q, scratch);
        let indexed_reference = hist.estimate_count_indexed_reference(q, scratch);
        assert_eq!(
            indexed_reference.to_bits(),
            indexed.to_bits(),
            "indexed kernel diverged from the AoS indexed fold: {context} \
             technique={} q={q} (reference={indexed_reference}, kernel={indexed})",
            hist.name(),
        );
        assert_eq!(
            reference.to_bits(),
            indexed.to_bits(),
            "indexed path diverged from the linear fold: {context} technique={} \
             q={q} (linear={reference}, indexed={indexed})",
            hist.name(),
        );
    }
}

#[test]
fn kernel_matches_reference_for_every_technique_and_rule() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(1) {
        let mbr = data.stats().mbr;
        for hist in techniques(&data, 32) {
            for rule in RULES {
                let hist = hist.clone().with_extension_rule(rule);
                let queries = adversarial_queries(&hist, mbr);
                let context = format!("dataset={name} rule={rule:?}");
                assert_kernel_differential(&context, &hist, &queries, &mut scratch);
            }
        }
    }
}

#[test]
fn kernel_matches_reference_through_churn_and_rebuild() {
    // note_insert / note_delete mutate buckets in place and must drop the
    // stale plane; a fresh build afterwards (the re-ANALYZE path) must
    // agree as well.
    let data = charminar_with(2_500, 67);
    let mbr = data.stats().mbr;
    let mut scratch = IndexScratch::new();
    for mut hist in techniques(&data, 28) {
        let queries = adversarial_queries(&hist, mbr);
        assert_kernel_differential("pre-churn", &hist, &queries, &mut scratch);
        for i in 0..40 {
            let f = i as f64 / 40.0;
            let x = mbr.lo.x + f * mbr.width();
            let y = mbr.lo.y + (1.0 - f) * mbr.height();
            hist.note_insert(&Rect::new(x, y, x + 25.0, y + 25.0));
        }
        assert_kernel_differential("post-insert", &hist, &queries, &mut scratch);
        for r in data.rects().iter().take(50) {
            hist.note_delete(r);
        }
        assert_kernel_differential("post-delete", &hist, &queries, &mut scratch);
    }
    // Re-ANALYZE: rebuild every technique from scratch over mutated data.
    let mut rects = data.rects().to_vec();
    rects.truncate(rects.len() - 200);
    rects.extend((0..200).map(|i| {
        let f = i as f64 / 200.0;
        let x = mbr.lo.x + f * mbr.width();
        Rect::new(x, mbr.lo.y, x + 10.0, mbr.lo.y + 10.0)
    }));
    let churned = Dataset::new(rects);
    for hist in techniques(&churned, 28) {
        let queries = adversarial_queries(&hist, mbr);
        assert_kernel_differential("post-reanalyze", &hist, &queries, &mut scratch);
    }
}

#[test]
fn batch_serving_stays_bit_identical_through_churn_and_reanalyze() {
    // The Morton-scheduled batch path must answer in request order with the
    // exact bits of a per-query loop — before churn, while stale, and after
    // an explicit re-ANALYZE republishes new statistics.
    let data = charminar_with(2_500, 71);
    let mut table = SpatialTable::new(TableOptions::default());
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    let hist = techniques(&data, 24).remove(0);
    let mut queries = adversarial_queries(&hist, data.stats().mbr);
    // Deliberately scramble so request order is far from Morton order.
    queries.reverse();
    let check = |table: &mut SpatialTable, phase: &str| {
        let serial: Vec<u64> = queries
            .iter()
            .map(|q| table.estimate(q).to_bits())
            .collect();
        let batch: Vec<u64> = table
            .estimate_batch(&queries)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(batch, serial, "phase={phase}");
    };
    check(&mut table, "initial");
    for i in 0..60 {
        table.insert(Rect::new(
            i as f64,
            i as f64,
            i as f64 + 5.0,
            i as f64 + 5.0,
        ));
    }
    check(&mut table, "post-churn");
    table.analyze();
    check(&mut table, "post-reanalyze");
}

#[test]
fn morton_schedule_is_a_permutation_on_adversarial_batches() {
    let data = charminar_with(1_500, 73);
    let hist = techniques(&data, 16).remove(0);
    let queries = adversarial_queries(&hist, data.stats().mbr);
    let order = morton_schedule(&queries);
    assert_eq!(order.len(), queries.len());
    let mut seen = vec![false; queries.len()];
    for &i in &order {
        assert!(!seen[i as usize], "index {i} scheduled twice");
        seen[i as usize] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

/// Exhaustive cross product on larger inputs — enabled by the `kernel`
/// feature (CI runs it; plain `cargo test` keeps the fast base matrix).
#[cfg(feature = "kernel")]
#[test]
fn exhaustive_kernel_matrix() {
    let mut scratch = IndexScratch::new();
    for (name, data) in datasets(3) {
        let mbr = data.stats().mbr;
        for buckets in [8usize, 50, 200] {
            for hist in techniques(&data, buckets) {
                for rule in RULES {
                    let hist = hist.clone().with_extension_rule(rule);
                    let queries = adversarial_queries(&hist, mbr);
                    let context = format!("dataset={name} buckets={buckets} rule={rule:?}");
                    assert_kernel_differential(&context, &hist, &queries, &mut scratch);
                }
            }
        }
    }
}

/// The reassociated-sum kernel is a separate opt-in API; it may reorder
/// additions but must stay within 1e-12 relative error of the exact fold.
#[cfg(feature = "fast-math")]
#[test]
fn fast_math_stays_within_relative_error_bound() {
    for (name, data) in datasets(1) {
        let mbr = data.stats().mbr;
        for hist in techniques(&data, 40) {
            for rule in RULES {
                let hist = hist.clone().with_extension_rule(rule);
                for q in adversarial_queries(&hist, mbr) {
                    let exact = hist.estimate_count(&q);
                    let fast = hist.estimate_count_fast(&q);
                    let tol = 1e-12 * exact.abs().max(1.0);
                    assert!(
                        (fast - exact).abs() <= tol,
                        "dataset={name} technique={} rule={rule:?} q={q} \
                         exact={exact} fast={fast}",
                        hist.name(),
                    );
                }
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (
            proptest::collection::vec(
                (0.0..2_000.0f64, 0.0..2_000.0f64, 0.0..80.0f64, 0.0..80.0f64),
                30..250,
            ),
            0.0..1_800.0f64,
        )
            .prop_map(|(raw, pile)| {
                let mut rects: Vec<Rect> = raw
                    .iter()
                    .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                    .collect();
                // A degenerate pile exercises zero-area buckets.
                for i in 0..30 {
                    let d = i as f64;
                    rects.push(Rect::from_point(Point::new(pile + d, pile)));
                }
                Dataset::new(rects)
            })
    }

    /// Queries include degenerate (zero-width, zero-height) shapes.
    fn arb_query() -> impl Strategy<Value = Rect> {
        (
            -500.0..2_500.0f64,
            -500.0..2_500.0f64,
            0.0..1_500.0f64,
            0.0..1_500.0f64,
            0usize..4,
        )
            .prop_map(|(x, y, w, h, shape)| match shape {
                0 => Rect::from_point(Point::new(x, y)),
                1 => Rect::new(x, y, x + w, y),
                2 => Rect::new(x, y, x, y + h),
                _ => Rect::new(x, y, x + w, y + h),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For random datasets, budgets, and query batches, every kernel
        /// path equals the AoS reference fold bit-for-bit under every rule.
        #[test]
        fn prop_kernel_equals_reference(
            data in arb_dataset(),
            buckets in 1usize..40,
            queries in proptest::collection::vec(arb_query(), 1..40),
            rule_pick in 0usize..3,
        ) {
            let rule = RULES[rule_pick];
            let mut scratch = IndexScratch::new();
            for hist in [
                MinSkewBuilder::new(buckets).regions(256).build(&data),
                build_equi_count(&data, buckets),
            ] {
                let hist = hist.with_extension_rule(rule);
                for q in &queries {
                    let reference = hist.estimate_count_reference(q);
                    let kernel = hist.estimate_count(q);
                    prop_assert_eq!(
                        reference.to_bits(), kernel.to_bits(),
                        "technique={} rule={:?} q={}", hist.name(), rule, q
                    );
                    let indexed = hist.estimate_count_indexed(q, &mut scratch);
                    prop_assert_eq!(
                        reference.to_bits(), indexed.to_bits(),
                        "indexed technique={} rule={:?} q={}", hist.name(), rule, q
                    );
                }
            }
        }
    }
}
