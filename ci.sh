#!/usr/bin/env bash
# Continuous-integration gate for the minskew workspace.
#
# Mirrors what reviewers run by hand:
#   1. formatting is canonical,
#   2. clippy is clean at -D warnings across every target — the library
#      crates (core/engine/data) additionally deny `unwrap()` in non-test
#      code via #![cfg_attr(not(test), deny(clippy::unwrap_used))],
#   3. the root-package test suite (tier 1),
#   4. the full workspace suite with every feature (incl. proptest suites),
#   5. the serial/parallel differential suite, exhaustive matrix on, pinned
#      to one test thread so scheduler interleaving can't mask ordering
#      bugs inside the work queues,
#   6. a smoke run of the parallel-speedup bench, which re-checks the
#      differential contract inline and must leave BENCH_parallel.json
#      behind at the workspace root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo test (tier 1)"
cargo test -q

echo "==> cargo test --workspace --all-features"
cargo test -q --workspace --all-features

echo "==> parallel differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_differential --features parallel

echo "==> parallel speedup bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_parallel.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench parallel_speedup >/dev/null
if [[ ! -f BENCH_parallel.json ]]; then
    echo "ERROR: bench did not write BENCH_parallel.json" >&2
    exit 1
fi
# The smoke run overwrites the committed full-scale numbers; restore them
# so CI never silently rewrites the benchmark artefact.
git checkout -- BENCH_parallel.json 2>/dev/null || true

echo "CI OK"
