#!/usr/bin/env bash
# Continuous-integration gate for the minskew workspace.
#
# Mirrors what reviewers run by hand:
#   1. formatting is canonical,
#   2. clippy is clean at -D warnings across every target — the library
#      crates (core/engine/data) additionally deny `unwrap()` in non-test
#      code via #![cfg_attr(not(test), deny(clippy::unwrap_used))],
#   3. the root-package test suite (tier 1),
#   4. the full workspace suite with every feature (incl. proptest suites).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo test (tier 1)"
cargo test -q

echo "==> cargo test --workspace --all-features"
cargo test -q --workspace --all-features

echo "CI OK"
