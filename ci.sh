#!/usr/bin/env bash
# Continuous-integration gate for the minskew workspace.
#
# Mirrors what reviewers run by hand:
#   1. formatting is canonical,
#   2. clippy is clean at -D warnings across every target — the library
#      crates (core/engine/data) additionally deny `unwrap()` in non-test
#      code via #![cfg_attr(not(test), deny(clippy::unwrap_used))],
#   3. the root-package test suite (tier 1),
#   4. the full workspace suite with every feature (incl. proptest suites),
#   5. the serial/parallel differential suite, exhaustive matrix on, pinned
#      to one test thread so scheduler interleaving can't mask ordering
#      bugs inside the work queues,
#   6. the indexed-vs-linear serving differential suite, exhaustive matrix
#      on, single test thread (same rationale as the parallel suite),
#   7. a focused clippy pass over the serving-path crates that additionally
#      denies needless_collect / redundant_clone — the serving path is
#      allocation-free by design and those lints catch regressions,
#   8. the observability differential suite, exhaustive matrix on, single
#      test thread — then re-run with minskew-obs compiled to no-ops to
#      prove the compiled-out configuration serves the same bytes,
#   9. a focused clippy pass over minskew-obs denying `unwrap()` even in
#      the presence of poisoned-lock recovery paths,
#  10. the snapshot recovery differential suite, exhaustive fault-kind ×
#      technique matrix on, single test thread (filesystem quarantine
#      paths must not interleave),
#  11. the sharded-vs-unsharded differential suite, exhaustive shard-count
#      × technique × extension-rule matrix on, single test thread,
#  12. the lock-free serving stress suite (readers racing ≥1000 statistics
#      installs, every observed estimate bitwise old-or-new) and the wire
#      protocol golden suite, both pinned to one test thread so the stress
#      owns its thread budget,
#  13. the kernel differential suite pinning the SoA clip-and-accumulate
#      plane bit-identical to the AoS reference fold: exhaustive matrix
#      on via --features kernel, then re-run under --features simd (and
#      simd + fast-math for the relative-error contract of the separate
#      fast entry point), single test thread so runtime dispatch is
#      exercised deterministically,
#  14. feature-cross clippy passes over minskew-core with `simd` and
#      `simd,fast-math` enabled — the SIMD module is the only code in
#      the workspace allowed to use `unsafe`, and it must stay clean at
#      -D warnings in every feature combination,
#  15. the online-refine differential suite (clamping/partition/codec/
#      Off-inertness invariants, exhaustive dataset × budget × feedback
#      matrix on via --features refine, single test thread),
#  16. the query-tracing differential suite (EXPLAIN bitwise equal to the
#      indexed serving path, term sums reproducing estimates exactly,
#      flight recorder / trace ids bit-invisible; exhaustive matrix on via
#      --features trace, single test thread) — then re-run with minskew-obs
#      compiled to no-ops alongside the other observability suites,
#  17. a CLI serve smoke: start `minskew serve` on an ephemeral port, run
#      a catalog-client round trip against it — including the MAINTAIN
#      maintenance surface, trace-id echo, the EXPLAIN/FLIGHT/METRICS
#      observability verbs, a raw malformed-TID fuzz probe, the offline
#      `minskew explain` surface, and a bounded `minskew top` scrape —
#      shut it down over the wire, and require a clean exit plus an
#      emitted metrics dump,
#  18. a CLI maintain smoke: the offline `minskew maintain` churn demo
#      must run in every maintenance mode and reject unknown ones,
#  19. smoke runs of the parallel-speedup, serving-throughput (with
#      `simd` on, asserting the qps_kernel column is present in the
#      emitted artefact), obs-overhead (asserting the flight-recorder
#      overhead column is present in the emitted artefact),
#      snapshot-persistence, serve-loadgen, and refine-churn benches,
#      which re-check the differential contracts inline and must leave
#      BENCH_parallel.json / BENCH_estimate.json / BENCH_obs.json /
#      BENCH_snapshot.json / BENCH_serve.json / BENCH_refine.json behind
#      at the workspace root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo test (tier 1)"
cargo test -q

echo "==> cargo test --workspace --all-features"
cargo test -q --workspace --all-features

echo "==> parallel differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_differential --features parallel

echo "==> serving differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test serving_differential --features serving

echo "==> observability differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test obs_differential --features obs

echo "==> snapshot recovery differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test snapshot_recovery --features snapshot

echo "==> sharded differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test sharded_differential --features sharded

echo "==> lock-free serving stress suite (single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test serve_stress

echo "==> wire protocol golden suite (single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test serve_protocol

echo "==> kernel differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test kernel_differential --features kernel

echo "==> kernel differential suite under --features simd"
RUST_TEST_THREADS=1 cargo test -q --test kernel_differential --features kernel,simd

echo "==> kernel differential suite under --features simd,fast-math"
RUST_TEST_THREADS=1 cargo test -q --test kernel_differential --features kernel,simd,fast-math

echo "==> online-refine differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test refine_differential --features refine

echo "==> query-tracing differential suite (exhaustive, single test thread)"
RUST_TEST_THREADS=1 cargo test -q --test trace_differential --features trace

echo "==> observability suites with minskew-obs compiled to no-ops"
cargo test -q --test obs_differential --test golden_metrics --test trace_differential \
    --features minskew-obs/noop

echo "==> clippy (minskew-obs, unwrap denied everywhere)"
cargo clippy -p minskew-obs --all-targets -- -D warnings -D clippy::unwrap_used

echo "==> clippy (serving crates, allocation lints denied)"
cargo clippy -p minskew-core -p minskew-engine --all-targets -- \
    -D warnings -D clippy::needless_collect -D clippy::redundant_clone

echo "==> clippy (minskew-core, simd feature cross)"
cargo clippy -p minskew-core --all-targets --features simd -- -D warnings
cargo clippy -p minskew-core --all-targets --features simd,fast-math -- -D warnings

echo "==> CLI serve smoke (ephemeral port, wire shutdown, metrics dump)"
cargo build -q -p minskew-cli
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
./target/debug/minskew generate --kind charminar --n 2000 --out "$SERVE_TMP/data.csv" >/dev/null
./target/debug/minskew serve --addr 127.0.0.1:0 --port-file "$SERVE_TMP/port" \
    --input "$SERVE_TMP/data.csv" --table roads --buckets 50 --shards 4 \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do [[ -s "$SERVE_TMP/port" ]] && break; sleep 0.1; done
if [[ ! -s "$SERVE_TMP/port" ]]; then
    echo "ERROR: serve did not write its port file" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
SERVE_ADDR="$(tr -d '\n' < "$SERVE_TMP/port")"
./target/debug/minskew catalog ping --addr "$SERVE_ADDR" >/dev/null
./target/debug/minskew catalog estimate --addr "$SERVE_ADDR" --name roads \
    --query 60,25,65,30 >/dev/null
# The maintenance surface: switch the table to online refine, run a
# maintenance pass, and require STATS to report the mode and staleness.
./target/debug/minskew catalog maintain --addr "$SERVE_ADDR" --name roads \
    --mode refine >/dev/null
./target/debug/minskew catalog maintain --addr "$SERVE_ADDR" --name roads >/dev/null
if ! ./target/debug/minskew catalog stats --addr "$SERVE_ADDR" --name roads \
    | grep -q '"maintenance":"refine"'; then
    echo "ERROR: STATS does not report the maintenance mode" >&2
    exit 1
fi
# A bogus mode must be a usage error (exit code 2) before any round trip.
if ./target/debug/minskew catalog maintain --addr "$SERVE_ADDR" --name roads \
    --mode bogus 2>/dev/null; then
    echo "ERROR: catalog client did not reject an unknown maintenance mode" >&2
    exit 1
fi
# An unknown table must surface the server's usage error as exit code 2.
if ./target/debug/minskew catalog estimate --addr "$SERVE_ADDR" --name ghost \
    --query 0,0,1,1 2>/dev/null; then
    echo "ERROR: catalog client did not fail on an unknown table" >&2
    exit 1
fi
# Trace ids: a tagged request round-trips (the client verifies and strips
# the TID= echo), and a locally-invalid token is a usage error before any
# bytes hit the wire.
./target/debug/minskew catalog estimate --addr "$SERVE_ADDR" --name roads \
    --query 60,25,65,30 --tid ci-smoke-1 >/dev/null
if ./target/debug/minskew catalog ping --addr "$SERVE_ADDR" \
    --tid 'bad!token' 2>/dev/null; then
    echo "ERROR: catalog client accepted an invalid trace id" >&2
    exit 1
fi
# The observability verbs: EXPLAIN carries the estimate headline, FLIGHT
# drains pinned JSONL, METRICS scrapes both registries in both formats.
EXPLAIN_OUT=$(./target/debug/minskew catalog explain --addr "$SERVE_ADDR" \
    --name roads --query 60,25,65,30)
if [[ "$EXPLAIN_OUT" != *'"estimate":'* ]]; then
    echo "ERROR: catalog explain did not return an estimate trace" >&2
    exit 1
fi
./target/debug/minskew catalog flight --addr "$SERVE_ADDR" >/dev/null
./target/debug/minskew catalog flight --addr "$SERVE_ADDR" --name roads \
    --limit 5 >/dev/null
METRICS_OUT=$(./target/debug/minskew catalog metrics --addr "$SERVE_ADDR")
if [[ "$METRICS_OUT" != *'minskew-obs/v1'* ]]; then
    echo "ERROR: catalog metrics did not return a schema-tagged scrape" >&2
    exit 1
fi
./target/debug/minskew catalog metrics --addr "$SERVE_ADDR" --name roads \
    --format text >/dev/null
# Malformed-TID fuzz straight over the wire: the reply must be a typed
# usage error with no TID= echo, and the connection must stay usable.
exec 3<>"/dev/tcp/${SERVE_ADDR%:*}/${SERVE_ADDR##*:}"
printf 'TID=bad!token PING\nPING\n' >&3
IFS= read -r TID_REPLY <&3
IFS= read -r PING_REPLY <&3
exec 3>&- 3<&-
case "$TID_REPLY" in
    "ERR 2 "*) ;;
    *)
        echo "ERROR: malformed TID got \"$TID_REPLY\" (want un-echoed ERR 2)" >&2
        exit 1
        ;;
esac
if [[ "$PING_REPLY" != "OK pong" ]]; then
    echo "ERROR: connection wedged after malformed TID: \"$PING_REPLY\"" >&2
    exit 1
fi
# The live dashboard: a bounded scrape against the running server.
./target/debug/minskew top --addr "$SERVE_ADDR" --name roads \
    --interval 0.2 --iterations 2 >/dev/null
./target/debug/minskew catalog shutdown --addr "$SERVE_ADDR" >/dev/null
if ! wait "$SERVE_PID"; then
    echo "ERROR: serve did not exit cleanly after wire shutdown" >&2
    exit 1
fi
if ! grep -q "serve.requests" "$SERVE_TMP/serve.log"; then
    echo "ERROR: serve did not emit its metrics registry on shutdown" >&2
    exit 1
fi

echo "==> CLI maintain smoke (every maintenance mode, bad mode rejected)"
for MODE in off reanalyze refine; do
    ./target/debug/minskew maintain --input "$SERVE_TMP/data.csv" \
        --mode "$MODE" --rounds 2 --queries 100 >/dev/null
done
if ./target/debug/minskew maintain --input "$SERVE_TMP/data.csv" \
    --mode bogus 2>/dev/null; then
    echo "ERROR: minskew maintain did not reject an unknown mode" >&2
    exit 1
fi

echo "==> CLI explain smoke (offline EXPLAIN against a built stats file)"
./target/debug/minskew build --input "$SERVE_TMP/data.csv" \
    --technique min-skew --buckets 50 --out "$SERVE_TMP/stats.bin" >/dev/null
EXPLAIN_CLI_OUT=$(./target/debug/minskew explain --stats "$SERVE_TMP/stats.bin" \
    --query 60,25,65,30 --terms 3)
if [[ "$EXPLAIN_CLI_OUT" != *'bit-identical'* ]]; then
    echo "ERROR: minskew explain did not certify bit-identity" >&2
    exit 1
fi

echo "==> parallel speedup bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_parallel.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench parallel_speedup >/dev/null
if [[ ! -f BENCH_parallel.json ]]; then
    echo "ERROR: bench did not write BENCH_parallel.json" >&2
    exit 1
fi
# The smoke run overwrites the committed full-scale numbers; restore them
# so CI never silently rewrites the benchmark artefact.
git checkout -- BENCH_parallel.json 2>/dev/null || true

echo "==> serving throughput bench smoke (MINSKEW_QUICK=1, simd on)"
rm -f BENCH_estimate.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench serving_throughput --features simd >/dev/null
if [[ ! -f BENCH_estimate.json ]]; then
    echo "ERROR: bench did not write BENCH_estimate.json" >&2
    exit 1
fi
if ! grep -q '"qps_kernel"' BENCH_estimate.json; then
    echo "ERROR: BENCH_estimate.json is missing the qps_kernel column" >&2
    exit 1
fi
git checkout -- BENCH_estimate.json 2>/dev/null || true

echo "==> observability overhead bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_obs.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench obs_overhead >/dev/null
if [[ ! -f BENCH_obs.json ]]; then
    echo "ERROR: bench did not write BENCH_obs.json" >&2
    exit 1
fi
if ! grep -q '"recorder_overhead_pct"' BENCH_obs.json; then
    echo "ERROR: BENCH_obs.json is missing the flight-recorder column" >&2
    exit 1
fi
git checkout -- BENCH_obs.json 2>/dev/null || true

echo "==> snapshot persistence bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_snapshot.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench snapshot_persistence >/dev/null
if [[ ! -f BENCH_snapshot.json ]]; then
    echo "ERROR: bench did not write BENCH_snapshot.json" >&2
    exit 1
fi
git checkout -- BENCH_snapshot.json 2>/dev/null || true

echo "==> serve loadgen bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_serve.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench serve_loadgen >/dev/null
if [[ ! -f BENCH_serve.json ]]; then
    echo "ERROR: bench did not write BENCH_serve.json" >&2
    exit 1
fi
git checkout -- BENCH_serve.json 2>/dev/null || true

echo "==> refine churn bench smoke (MINSKEW_QUICK=1)"
rm -f BENCH_refine.json
MINSKEW_QUICK=1 cargo bench -p minskew-bench --bench refine_churn >/dev/null
if [[ ! -f BENCH_refine.json ]]; then
    echo "ERROR: bench did not write BENCH_refine.json" >&2
    exit 1
fi
git checkout -- BENCH_refine.json 2>/dev/null || true

echo "CI OK"
