//! Out-of-core ANALYZE: build Min-Skew statistics for a table that never
//! fits in memory, using only sequential file sweeps.
//!
//! The paper's §4.1: "the construction algorithm does not require the
//! entire data distribution to fit in main memory, which is a significant
//! advantage". This example makes the claim operational: the dataset lives
//! in a CSV file; construction holds only the density grid, the bucket
//! set, and one rectangle at a time.
//!
//! Run with `cargo run --release --example streaming_analyze`.

use minskew::data::CsvRectSource;
use minskew::prelude::*;

fn main() -> std::io::Result<()> {
    // Simulate the disk-resident table (in reality this file would come
    // from a TIGER extract or a database export).
    let path = std::env::temp_dir().join("minskew-streaming-demo.csv");
    {
        let data = minskew::datagen::nj_road_like(3);
        minskew::data::write_rects_csv(&data, &path)?;
        let bytes = std::fs::metadata(&path)?.len();
        println!(
            "wrote {} road segments to {} ({:.1} MB on disk)",
            data.len(),
            path.display(),
            bytes as f64 / 1e6
        );
        // `data` is dropped here: from now on, nothing holds the
        // rectangles in memory.
    }

    // One validating pass computes the summary statistics.
    let source = CsvRectSource::open(&path).expect("valid rect CSV");
    let stats = minskew::data::RectSource::stats(&source);
    println!(
        "opened source: N = {}, MBR = {}, avg segment {:.0} x {:.0}",
        stats.n, stats.mbr, stats.avg_width, stats.avg_height
    );

    // ANALYZE: three refinement phases = four sequential sweeps, plus the
    // final assignment sweep. Resident memory is O(grid + buckets).
    let start = std::time::Instant::now();
    let hist = MinSkewBuilder::new(100)
        .regions(10_000)
        .progressive_refinements(1)
        .build_from_source(&source);
    println!(
        "built {} with {} buckets in {:.2}s using sequential sweeps only",
        hist.name(),
        hist.num_buckets(),
        start.elapsed().as_secs_f64()
    );

    // The result is identical to what an in-memory build would produce.
    let q = Rect::new(10_000.0, 20_000.0, 20_000.0, 40_000.0);
    println!(
        "sample estimate over {}: {:.0} segments (selectivity {:.4})",
        q,
        hist.estimate_count(&q),
        hist.estimate_selectivity(&q)
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
