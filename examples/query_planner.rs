//! Selectivity estimation doing its real job: driving a cost-based query
//! optimizer's access-path selection.
//!
//! Run with `cargo run --release --example query_planner`.

use minskew::engine::{SpatialTable, TableOptions};
use minskew::prelude::*;

fn main() {
    // Load a skewed spatial table (a GIS layer of building footprints).
    let mut table = SpatialTable::new(TableOptions::default());
    for r in minskew::datagen::charminar_with(40_000, 9).rects() {
        table.insert(*r);
    }
    table.analyze();
    println!("table: {} rows, analyzed\n", table.len());

    // The planner should use the index for selective queries and fall back
    // to a scan for broad ones — based purely on histogram estimates.
    let queries = [
        ("tiny corner probe", Rect::new(100.0, 100.0, 400.0, 400.0)),
        ("dense corner", Rect::new(0.0, 0.0, 1_800.0, 1_800.0)),
        (
            "sparse centre",
            Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0),
        ),
        ("half the state", Rect::new(0.0, 0.0, 10_000.0, 5_000.0)),
        ("everything", Rect::new(0.0, 0.0, 10_000.0, 10_000.0)),
    ];
    for (label, q) in queries {
        let (rows, explain) = table.execute_explain(&q);
        println!("{label:<18} -> {explain}");
        assert_eq!(rows.len(), explain.actual_rows.unwrap());
    }

    // Mutations accumulate staleness; the table re-analyzes itself.
    println!("\nchurning 30,000 inserts into the sparse centre...");
    for i in 0..30_000 {
        let x = 3_500.0 + (i % 120) as f64 * 25.0;
        let y = 3_500.0 + (i / 120) as f64 * 12.0;
        table.insert(Rect::new(x, y, x + 60.0, y + 60.0));
    }
    println!(
        "staleness before replanning: {:.2}",
        table.stats().unwrap().staleness()
    );
    let (_, explain) = table.execute_explain(&Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0));
    println!("after auto-ANALYZE: {explain}");
    println!("staleness after: {:.2}", table.stats().unwrap().staleness());
}
