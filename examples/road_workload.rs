//! A GIS road-network workload: compare all seven estimation techniques on
//! TIGER-style road-segment data, the paper's real-life scenario.
//!
//! Run with `cargo run --release --example road_workload`.

use minskew::datagen::RoadNetworkSpec;
use minskew::prelude::*;
use minskew_workload::evaluate_all;

fn main() {
    // A state road network: ~100k tiny segment bounding boxes tracing
    // population centres and highway corridors (stand-in for TIGER NJ Road;
    // use `RoadNetworkSpec::default()` for the full 414,442 segments).
    let spec = RoadNetworkSpec {
        segments: 100_000,
        ..RoadNetworkSpec::default()
    };
    let data = spec.generate(11);
    println!("road network: {} segment MBRs", data.len());

    // Exact ground truth via a bulk-loaded R*-tree.
    let truth = GroundTruth::index(&data);

    // The complete technique roster at a 100-bucket budget.
    let buckets = 100;
    let minskew = MinSkewBuilder::new(buckets).build(&data);
    let equi_count = build_equi_count(&data, buckets);
    let equi_area = build_equi_area(&data, buckets);
    let rtree = build_rtree_partitioning(
        &data,
        buckets,
        minskew::estimators::RTreePartitioningOptions {
            method: minskew::estimators::RTreeBuildMethod::StrBulk,
            ..Default::default()
        },
    );
    let sample = SamplingEstimator::build(&data, buckets, 3);
    let fractal = FractalEstimator::build(&data);
    let uniform = build_uniform(&data);
    println!(
        "fractal dimension of the road data: D2 = {:.2}\n",
        fractal.d2()
    );

    let estimators: Vec<&dyn SpatialEstimator> = vec![
        &minskew,
        &equi_count,
        &equi_area,
        &rtree,
        &sample,
        &fractal,
        &uniform,
    ];

    for qsize in [0.05, 0.25] {
        println!("--- QSize {:.0}% (2,000 queries) ---", qsize * 100.0);
        let workload = QueryWorkload::generate(&data, qsize, 2_000, 17);
        for report in evaluate_all(&estimators, &workload, &truth) {
            println!("{report}");
        }
        println!();
    }
    println!("Min-Skew should lead both tables by a wide margin (paper Figure 8/9).");
}
