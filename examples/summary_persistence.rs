//! Persisting histograms the way a DBMS catalog would: build once at
//! ANALYZE time, serialise into the catalog, deserialise at plan time.
//!
//! Run with `cargo run --release --example summary_persistence`.

use minskew::prelude::*;

fn main() -> std::io::Result<()> {
    // ANALYZE: scan the table once, build the statistics object.
    let data = minskew::datagen::charminar_with(30_000, 5);
    let hist = MinSkewBuilder::new(100).build(&data);
    println!(
        "built {} with {} buckets over {} rects",
        hist.name(),
        hist.num_buckets(),
        data.len()
    );

    // Store in the "catalog" (a file here; a system table in a DBMS).
    let bytes = hist.to_bytes();
    std::fs::write("charminar.stats", &bytes)?;
    println!(
        "serialised to charminar.stats: {} bytes ({} per bucket incl. header)",
        bytes.len(),
        bytes.len() / hist.num_buckets()
    );

    // Plan time, possibly in another process: load and estimate. The codec
    // validates magic, version, and field sanity.
    let loaded = SpatialHistogram::from_bytes(&std::fs::read("charminar.stats")?)
        .expect("catalog entry is valid");
    let q = Rect::new(8_000.0, 8_000.0, 10_000.0, 10_000.0);
    println!(
        "loaded histogram estimates {:.0} rows for {} (exact: {})",
        loaded.estimate_count(&q),
        q,
        data.count_intersecting(&q)
    );
    assert_eq!(loaded.estimate_count(&q), hist.estimate_count(&q));

    // Corruption is detected, not silently mis-estimated.
    let mut corrupt = bytes.to_vec();
    corrupt[0] = b'X';
    match SpatialHistogram::from_bytes(&corrupt) {
        Err(e) => println!("corrupt catalog entry rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }
    Ok(())
}
