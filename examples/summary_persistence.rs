//! Persisting histograms the way a DBMS catalog would: build once at
//! ANALYZE time, seal into the durable snapshot container, install
//! crash-safely, deserialise at plan time.
//!
//! Run with `cargo run --release --example summary_persistence`.
//! Regenerates the committed golden file `charminar.stats`.

use minskew::prelude::*;

fn main() -> std::io::Result<()> {
    // ANALYZE: scan the table once, build the statistics object.
    let data = minskew::datagen::charminar_with(30_000, 5);
    let hist = MinSkewBuilder::new(100).build(&data);
    println!(
        "built {} with {} buckets over {} rects",
        hist.name(),
        hist.num_buckets(),
        data.len()
    );

    // Store in the "catalog" (a file here; a system table in a DBMS). The
    // snapshot container wraps the codec payload in a section table with
    // per-section and whole-file checksums; the atomic write protocol
    // (temp + fsync + rename + dir fsync) guarantees a crash at any point
    // leaves either the old complete file or the new complete file.
    let bytes = hist.to_snapshot_bytes();
    let path = std::path::Path::new("charminar.stats");
    write_atomic(path, &bytes).map_err(std::io::Error::other)?;
    println!(
        "installed snapshot at charminar.stats: {} bytes ({} payload + container)",
        bytes.len(),
        hist.to_bytes().len()
    );

    // Plan time, possibly in another process: verify, load, estimate.
    let info = verify_snapshot(&std::fs::read(path)?).expect("snapshot is intact");
    println!(
        "verified: {} snapshot, {} buckets, {} section(s)",
        info.technique, info.buckets, info.sections
    );
    let (loaded, _) =
        SpatialHistogram::from_snapshot_bytes(&std::fs::read(path)?).expect("snapshot decodes");
    let q = Rect::new(8_000.0, 8_000.0, 10_000.0, 10_000.0);
    println!(
        "loaded histogram estimates {:.0} rows for {} (exact: {})",
        loaded.estimate_count(&q),
        q,
        data.count_intersecting(&q)
    );
    assert_eq!(loaded.estimate_count(&q), hist.estimate_count(&q));

    // Corruption is detected, not silently mis-estimated: flip one bit
    // anywhere and the whole-file checksum rejects the snapshot.
    let mut corrupt = bytes.to_vec();
    corrupt[bytes.len() / 2] ^= 0x01;
    match SpatialHistogram::from_snapshot_bytes(&corrupt) {
        Err(e) => println!("corrupt catalog entry rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    // Pre-container catalogs (bare codec bytes) still decode, flagged as
    // the legacy format so operators know to re-seal them.
    let (_, legacy_info) =
        SpatialHistogram::from_snapshot_bytes(&hist.to_bytes()).expect("legacy shim decodes");
    assert_eq!(legacy_info.version, FormatVersion::Legacy);
    println!("legacy bare-codec bytes decode via the compatibility shim");
    Ok(())
}
