//! Quickstart: summarise a spatial table and estimate query result sizes.
//!
//! Run with `cargo run --release --example quickstart`.

use minskew::prelude::*;

fn main() {
    // A spatial attribute: 40,000 rectangles (e.g. building MBRs) with
    // strong placement skew — most objects cluster at the four corners.
    let data = minskew::datagen::charminar(7);
    println!(
        "dataset: {} rectangles, MBR {}, total area {:.0}",
        data.len(),
        data.stats().mbr,
        data.stats().total_area
    );

    // A query optimizer cannot scan the table per candidate plan; it keeps
    // a few-hundred-byte histogram instead. Build Min-Skew with 50 buckets.
    let hist = MinSkewBuilder::new(50).build(&data);
    println!(
        "summary: {} buckets, {} bytes\n",
        hist.num_buckets(),
        hist.size_bytes()
    );

    // Estimate a few queries and compare with the exact answer.
    let queries = [
        ("dense corner", Rect::new(0.0, 0.0, 1_500.0, 1_500.0)),
        (
            "sparse centre",
            Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0),
        ),
        ("wide band", Rect::new(0.0, 4_500.0, 10_000.0, 5_500.0)),
        ("point query", Rect::new(500.0, 500.0, 500.0, 500.0)),
    ];
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "query", "estimate", "actual", "rel err"
    );
    for (name, q) in queries {
        let estimate = hist.estimate_count(&q);
        let actual = data.count_intersecting(&q) as f64;
        let err = if actual > 0.0 {
            (estimate - actual).abs() / actual * 100.0
        } else {
            0.0
        };
        println!("{name:<14} {estimate:>10.1} {actual:>10.0} {err:>7.1}%");
    }

    // Selectivities plug directly into optimizer cost formulas.
    let q = Rect::new(0.0, 0.0, 1_500.0, 1_500.0);
    println!(
        "\nselectivity of the corner query: {:.4} (estimated) vs {:.4} (exact)",
        hist.estimate_selectivity(&q),
        data.selectivity(&q)
    );
}
