//! Renders the paper's Figures 1–7 (dataset, density surface, and one
//! partitioning per technique) as SVG files in the current directory.
//!
//! Run with `cargo run --release --example render_partitionings`.

use minskew::prelude::*;
use minskew::viz::{dataset_svg, density_svg, partitioning_svg};

fn main() -> std::io::Result<()> {
    let data = minskew::datagen::charminar_with(20_000, 31);
    let buckets = 50;

    std::fs::write("charminar.svg", dataset_svg(&data, 800))?;
    println!("charminar.svg          (Figure 1: the dataset)");

    let grid = DensityGrid::build(data.rects().iter(), data.stats().mbr, 50, 50);
    std::fs::write("density.svg", density_svg(&grid, 800))?;
    println!("density.svg            (Figure 5: 50x50 spatial densities)");

    let partitionings = [
        ("equi_area.svg", build_equi_area(&data, buckets), "Figure 2"),
        (
            "equi_count.svg",
            build_equi_count(&data, buckets),
            "Figure 3",
        ),
        (
            "rtree.svg",
            minskew::estimators::build_rtree_partitioning_default(&data, buckets),
            "Figure 4",
        ),
        (
            "minskew.svg",
            MinSkewBuilder::new(buckets).regions(2_500).build(&data),
            "Figure 7",
        ),
    ];
    for (file, hist, figure) in partitionings {
        std::fs::write(file, partitioning_svg(&data, &hist, 800))?;
        println!(
            "{file:<22} ({figure}: {} with {} buckets)",
            hist.name(),
            hist.num_buckets()
        );
    }
    Ok(())
}
