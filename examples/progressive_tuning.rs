//! Tuning Min-Skew: the region-count trade-off and progressive refinement.
//!
//! Reproduces, at example scale, the insight of the paper's Experiments 3–4:
//! more grid regions help small queries but can *hurt* large ones on highly
//! skewed data, and progressive refinement recovers most of the loss.
//!
//! Run with `cargo run --release --example progressive_tuning`.

use minskew::prelude::*;

fn main() {
    let data = minskew::datagen::charminar(23);
    let truth = GroundTruth::index(&data);
    let buckets = 100;

    let small = QueryWorkload::generate(&data, 0.05, 2_000, 1);
    let large = QueryWorkload::generate(&data, 0.25, 2_000, 2);
    let small_counts = truth.counts(small.queries());
    let large_counts = truth.counts(large.queries());

    println!("== Region-count sensitivity (Charminar, {buckets} buckets) ==");
    println!(
        "{:>10} {:>12} {:>12}",
        "regions", "small (5%)", "large (25%)"
    );
    for regions in [100, 400, 1_600, 6_400, 30_000] {
        let hist = MinSkewBuilder::new(buckets).regions(regions).build(&data);
        let e_small = evaluate(&hist, &small, &small_counts).avg_relative_error;
        let e_large = evaluate(&hist, &large, &large_counts).avg_relative_error;
        println!(
            "{regions:>10} {:>11.1}% {:>11.1}%",
            e_small * 100.0,
            e_large * 100.0
        );
    }
    println!("(watch the large-query column worsen as regions grow)\n");

    println!("== Progressive refinement at 30,000 regions ==");
    println!("{:>12} {:>12}", "refinements", "large (25%)");
    for k in 0..=6 {
        let hist = MinSkewBuilder::new(buckets)
            .regions(30_000)
            .progressive_refinements(k)
            .build(&data);
        let e = evaluate(&hist, &large, &large_counts).avg_relative_error;
        println!("{k:>12} {:>11.1}%", e * 100.0);
    }
    println!("(a few refinements recover most of the large-query accuracy)\n");

    println!("== Automatic tuning (the paper's future work) ==");
    let mut opts = minskew_workload::TuneOptions::for_buckets(buckets);
    opts.queries_per_size = 300;
    let tuned = minskew_workload::tune_min_skew(&data, buckets, &opts);
    for t in &tuned.trials {
        println!(
            "regions {:>6} refinements {} -> {:>5.1}%{}",
            t.regions,
            t.refinements,
            t.error * 100.0,
            if *t == tuned.best { "  <- chosen" } else { "" }
        );
    }
}
