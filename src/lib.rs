//! # minskew — Selectivity Estimation in Spatial Databases
//!
//! A production-quality Rust implementation of *Acharya, Poosala,
//! Ramaswamy: "Selectivity Estimation in Spatial Databases" (SIGMOD 1999)*:
//! the **Min-Skew** BSP histogram for spatial selectivity estimation,
//! every baseline technique the paper evaluates (Uniform, Equi-Area,
//! Equi-Count, R-tree partitioning, Sampling, the Belussi–Faloutsos fractal
//! method), the substrates they need (geometry, density grids, a full
//! R\*-tree), dataset generators, and an evaluation harness reproducing the
//! paper's experiments.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates so applications can depend on one crate. See the individual
//! modules for details:
//!
//! * [`geom`] — points, rectangles, MBR algebra.
//! * [`data`] — datasets, summary statistics, density grids.
//! * [`datagen`] — Charminar, Zipf-parameterised synthetics, road networks.
//! * [`rtree`] — a from-scratch R\*-tree with STR bulk loading.
//! * [`estimators`] — the seven techniques plus persistence.
//! * [`engine`] — a mini query engine whose cost-based planner consumes
//!   the estimates (the paper's motivating use case).
//! * [`workload`] — query generation, ground truth, error metrics.
//! * [`viz`] — SVG rendering of datasets and partitionings.
//!
//! # Example
//!
//! ```
//! use minskew::prelude::*;
//!
//! // 1. Data: 40,000 rectangles concentrated at the corners.
//! let data = minskew::datagen::charminar_with(10_000, 42);
//!
//! // 2. Summarise with a 50-bucket Min-Skew histogram (~3 KB).
//! let hist = MinSkewBuilder::new(50).regions(2_500).build(&data);
//!
//! // 3. Estimate a range query's result size without touching the data.
//! let query = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
//! let estimate = hist.estimate_count(&query);
//! let actual = data.count_intersecting(&query) as f64;
//! assert!((estimate - actual).abs() / actual < 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use minskew_core as estimators;
pub use minskew_data as data;
pub use minskew_datagen as datagen;
pub use minskew_engine as engine;
pub use minskew_geom as geom;
pub use minskew_obs as obs;
pub use minskew_par as par;
pub use minskew_rtree as rtree;
pub use minskew_viz as viz;
pub use minskew_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use minskew_core::{
        build_equi_area, build_equi_count, build_grid, build_optimal_bsp, build_rtree_partitioning,
        build_rtree_partitioning_default, build_uniform, morton_key, morton_schedule, simd_level,
        try_build_equi_area, try_build_equi_count, try_build_grid, try_build_optimal_bsp,
        try_build_rtree_partitioning, try_build_uniform, verify_snapshot, Bucket, BucketIndex,
        BucketPlane, BuildError, EstimateError, EstimateExplain, ExplainTerm, ExtensionRule,
        FormatVersion, FractalEstimator, IndexScratch, KernelExplain, MinSkewBuildTrace,
        MinSkewBuilder, PruneStats, QueryPrep, RTreeBuildMethod, RefineObservation, RefineOptions,
        RefineReport, SamplingEstimator, ServingFootprint, ShardInfo, ShardScratch,
        ShardedHistogram, SnapshotError, SnapshotInfo, SpatialEstimator, SpatialHistogram,
        SplitEvent, SplitStrategy, MAX_SHARDS,
    };
    pub use minskew_data::{
        write_atomic, CsvRectSource, Dataset, DensityGrid, FaultInjector, FaultKind, RectSource,
    };
    pub use minskew_engine::{
        serve, AccuracyReport, AnalyzeOptions, BatchQueryError, CacheDisposition, CatalogEntry,
        CatalogError, EstimatePath, EstimateScratch, EstimateTrace, MaintenanceAction,
        MaintenanceMode, MaintenanceReport, ServeOptions, ServerHandle, SnapshotCell,
        SnapshotIoError, SnapshotLoadReport, SpatialCatalog, SpatialReader, SpatialTable,
        StatsDiagnostics, StatsFallback, StatsTechnique, TableOptions, TableSnapshot,
        MAX_TABLE_NAME,
    };
    pub use minskew_geom::{Point, Rect};
    pub use minskew_workload::{
        evaluate, tune_min_skew, CenterMode, GroundTruth, QueryWorkload, TuneOptions,
    };
}
