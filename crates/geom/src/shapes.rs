//! Non-rectangular spatial objects and their MBR decomposition.
//!
//! Spatial databases "approximate spatial objects using their minimum
//! bounding rectangles and perform query processing with the MBRs as much
//! as possible" — the paper's preprocessing of the TIGER data computes the
//! bounding boxes of all line segments. These types let users run the same
//! pipeline on their own vector data: a [`Polyline`] (road, river) or
//! [`Polygon`] (parcel, lake) turns into one MBR, or into per-segment MBRs
//! exactly as the paper does.

use crate::{mbr_of_points, Point, Rect};

/// An open chain of vertices (a road centreline, contour, etc.).
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two vertices are supplied or any coordinate is
    /// non-finite.
    pub fn new(points: Vec<Point>) -> Polyline {
        assert!(points.len() >= 2, "a polyline needs at least two vertices");
        assert!(
            points.iter().all(Point::is_finite),
            "polyline vertices must be finite"
        );
        Polyline { points }
    }

    /// The vertices.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of segments (`vertices - 1`).
    pub fn num_segments(&self) -> usize {
        self.points.len() - 1
    }

    /// Iterates over the segments as vertex pairs.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Per-segment bounding boxes — the paper's TIGER preprocessing.
    /// Axis-parallel segments yield degenerate (zero-area) rectangles,
    /// which every estimator in this workspace handles.
    pub fn segment_mbrs(&self) -> impl Iterator<Item = Rect> + '_ {
        self.segments().map(|(a, b)| Rect::from_corners(a, b))
    }

    /// Bounding box of the whole chain.
    pub fn mbr(&self) -> Rect {
        mbr_of_points(self.points.iter().copied()).expect("at least two vertices")
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.dist2(&b).sqrt()).sum()
    }
}

/// A simple polygon given by its outer ring (implicitly closed; do not
/// repeat the first vertex).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its ring.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are supplied or any coordinate
    /// is non-finite.
    pub fn new(ring: Vec<Point>) -> Polygon {
        assert!(ring.len() >= 3, "a polygon needs at least three vertices");
        assert!(
            ring.iter().all(Point::is_finite),
            "polygon vertices must be finite"
        );
        Polygon { ring }
    }

    /// The ring vertices (not closed).
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Iterates over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| (self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Bounding box.
    pub fn mbr(&self) -> Rect {
        mbr_of_points(self.ring.iter().copied()).expect("at least three vertices")
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// rings.
    pub fn signed_area(&self) -> f64 {
        self.edges()
            .map(|(a, b)| a.x * b.y - b.x * a.y)
            .sum::<f64>()
            / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.dist2(&b).sqrt()).sum()
    }

    /// Even-odd (ray casting) point-in-polygon test. Boundary points may
    /// report either side (standard for floating-point ray casting); use
    /// the MBR test first when an inclusive boundary matters.
    pub fn contains_point(&self, p: Point) -> bool {
        let mut inside = false;
        for (a, b) in self.edges() {
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn zigzag() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 5.0),
        ])
    }

    #[test]
    fn polyline_measures() {
        let p = zigzag();
        assert_eq!(p.num_segments(), 3);
        assert_eq!(p.mbr(), Rect::new(0.0, 0.0, 6.0, 5.0));
        assert!((p.length() - (5.0 + 5.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn segment_mbrs_match_paper_preprocessing() {
        let p = zigzag();
        let mbrs: Vec<Rect> = p.segment_mbrs().collect();
        assert_eq!(
            mbrs,
            vec![
                Rect::new(0.0, 0.0, 3.0, 4.0),
                Rect::new(3.0, 0.0, 6.0, 4.0),
                Rect::new(6.0, 0.0, 6.0, 5.0), // vertical -> degenerate
            ]
        );
        assert_eq!(mbrs[2].area(), 0.0);
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn short_polyline_rejected() {
        Polyline::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    fn polygon_square() {
        let sq = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert_eq!(sq.area(), 16.0);
        assert_eq!(sq.signed_area(), 16.0); // CCW
        assert_eq!(sq.perimeter(), 16.0);
        assert_eq!(sq.mbr(), Rect::new(0.0, 0.0, 4.0, 4.0));
        assert!(sq.contains_point(Point::new(2.0, 2.0)));
        assert!(!sq.contains_point(Point::new(5.0, 2.0)));
        assert!(!sq.contains_point(Point::new(-1.0, 2.0)));
    }

    #[test]
    fn polygon_clockwise_has_negative_signed_area() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
        ]);
        assert_eq!(cw.signed_area(), -4.0);
        assert_eq!(cw.area(), 4.0);
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape: the notch must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(l.contains_point(Point::new(1.0, 3.0)));
        assert!(l.contains_point(Point::new(3.0, 1.0)));
        assert!(!l.contains_point(Point::new(3.0, 3.0))); // the notch
        assert_eq!(l.area(), 12.0);
    }

    #[test]
    fn triangle_area() {
        let t = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert_eq!(t.area(), 6.0);
        assert!((t.perimeter() - 12.0).abs() < 1e-12);
    }

    #[cfg(feature = "proptest")]
    fn arb_points(min: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec(
            (-1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y)| Point::new(x, y)),
            min..20,
        )
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The union of per-segment MBRs equals the polyline's MBR, so the
        /// paper's segment-wise preprocessing loses no extent.
        #[test]
        fn prop_segment_mbrs_cover_polyline(points in arb_points(2)) {
            let p = Polyline::new(points);
            let joined = p
                .segment_mbrs()
                .reduce(|a, b| a.union(&b))
                .expect("at least one segment");
            prop_assert_eq!(joined, p.mbr());
            prop_assert_eq!(p.segment_mbrs().count(), p.num_segments());
        }

        /// A polygon's area never exceeds its bounding box's.
        #[test]
        fn prop_polygon_area_within_mbr(points in arb_points(3)) {
            let poly = Polygon::new(points);
            prop_assert!(poly.area() <= poly.mbr().area() + 1e-9);
            // Points inside the polygon are inside the MBR.
            let c = poly.mbr().center();
            if poly.contains_point(c) {
                prop_assert!(poly.mbr().contains_point(c));
            }
        }
    }
}
