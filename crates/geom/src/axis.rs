//! The [`Axis`] enum used by one-dimensional splitting logic.

/// One of the two coordinate axes.
///
/// Partitioning algorithms in this workspace (Equi-Area, Equi-Count,
/// Min-Skew, R\*-tree splits) all make *binary space partitioning* decisions:
/// they cut a region with a line perpendicular to one axis. `Axis` names that
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The horizontal axis; splits are vertical lines `x = c`.
    X,
    /// The vertical axis; splits are horizontal lines `y = c`.
    Y,
}

impl Axis {
    /// Returns the other axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }

    /// Both axes, in `[X, Y]` order. Convenient for exhaustive split searches.
    pub const BOTH: [Axis; 2] = [Axis::X, Axis::Y];
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for a in Axis::BOTH {
            assert_eq!(a.other().other(), a);
        }
        assert_eq!(Axis::X.other(), Axis::Y);
    }

    #[test]
    fn display() {
        assert_eq!(Axis::X.to_string(), "x");
        assert_eq!(Axis::Y.to_string(), "y");
    }
}
