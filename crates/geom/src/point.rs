//! Two-dimensional points.

use crate::Axis;

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Returns the coordinate along `axis`.
    #[inline]
    pub fn coord(&self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
        }
    }

    /// Returns a copy with the coordinate along `axis` replaced by `v`.
    #[inline]
    pub fn with_coord(mut self, axis: Axis, v: f64) -> Point {
        match axis {
            Axis::X => self.x = v,
            Axis::Y => self.y = v,
        }
        self
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Avoids the square root; use when only comparisons are needed
    /// (e.g. R\*-tree reinsertion orders entries by centre distance).
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_accessors_roundtrip() {
        let p = Point::new(3.0, -2.0);
        assert_eq!(p.coord(Axis::X), 3.0);
        assert_eq!(p.coord(Axis::Y), -2.0);
        assert_eq!(p.with_coord(Axis::X, 7.0), Point::new(7.0, -2.0));
        assert_eq!(p.with_coord(Axis::Y, 7.0), Point::new(3.0, 7.0));
    }

    #[test]
    fn dist2_matches_hand_computation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(b.dist2(&a), 25.0);
        assert_eq!(a.dist2(&a), 0.0);
    }

    #[test]
    fn from_tuple_and_display() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        assert_eq!(p.to_string(), "(1.5, 2.5)");
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
