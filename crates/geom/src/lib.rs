//! Geometry substrate for spatial selectivity estimation.
//!
//! This crate provides the two-dimensional primitives used throughout the
//! `minskew` workspace: [`Point`], [`Rect`] (axis-aligned rectangles, the
//! universal representation of spatial objects via their minimum bounding
//! rectangles), and the [`Axis`] enum used by partitioning algorithms that
//! split space along one dimension at a time.
//!
//! Conventions:
//!
//! * Coordinates are `f64`. Integer-domain datasets (such as TIGER) embed
//!   losslessly.
//! * Rectangles are **closed** regions `[lo.x, hi.x] × [lo.y, hi.y]`.
//!   Two rectangles that merely touch along an edge or at a corner
//!   *intersect*, matching the paper's definition of a query result
//!   ("rectangles in the input that have a non-empty intersection with the
//!   query rectangle").
//! * Degenerate rectangles (zero width and/or height) are valid: points and
//!   horizontal/vertical line segments are represented this way.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod axis;
mod point;
mod rect;
mod shapes;

pub use axis::Axis;
pub use point::Point;
pub use rect::{NonFiniteRectError, Rect};
pub use shapes::{Polygon, Polyline};

/// Computes the minimum bounding rectangle of an iterator of rectangles.
///
/// Returns `None` for an empty iterator.
///
/// # Examples
///
/// ```
/// use minskew_geom::{mbr_of, Rect};
/// let rects = [Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(2.0, -1.0, 3.0, 0.5)];
/// let mbr = mbr_of(rects.iter().copied()).unwrap();
/// assert_eq!(mbr, Rect::new(0.0, -1.0, 3.0, 1.0));
/// ```
pub fn mbr_of<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Rect> {
    let mut iter = rects.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, r| acc.union(&r)))
}

/// Computes the minimum bounding rectangle of an iterator of points.
///
/// Returns `None` for an empty iterator. The result is degenerate (zero area)
/// when all points are collinear or identical.
pub fn mbr_of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
    let mut iter = points.into_iter();
    let first = iter.next()?;
    let mut mbr = Rect::from_point(first);
    for p in iter {
        mbr = mbr.expand_to(p);
    }
    Some(mbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_of_empty_is_none() {
        assert!(mbr_of(std::iter::empty()).is_none());
        assert!(mbr_of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn mbr_of_single() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(mbr_of([r]), Some(r));
    }

    #[test]
    fn mbr_of_points_degenerate() {
        let pts = [Point::new(1.0, 5.0), Point::new(4.0, 5.0)];
        let mbr = mbr_of_points(pts).unwrap();
        assert_eq!(mbr, Rect::new(1.0, 5.0, 4.0, 5.0));
        assert_eq!(mbr.area(), 0.0);
    }
}
