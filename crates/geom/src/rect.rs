//! Axis-aligned rectangles.

use crate::{Axis, Point};

/// An axis-aligned rectangle, the universal spatial-object representation.
///
/// Spatial databases approximate arbitrary objects by their *minimum bounding
/// rectangles* (MBRs) and run as much query processing as possible on the
/// MBRs; the selectivity-estimation problem studied here is defined directly
/// over rectangles.
///
/// A `Rect` is the closed region `[lo.x, hi.x] × [lo.y, hi.y]`. The
/// constructors normalise corner order, so `lo.x <= hi.x && lo.y <= hi.y`
/// always holds. Degenerate rectangles (zero width and/or height) represent
/// points and axis-parallel segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

/// Error returned by [`Rect::try_new`] when a corner coordinate is NaN or
/// infinite.
///
/// Non-finite rectangles poison every downstream computation (areas,
/// densities, skew) without tripping any comparison, so the geometry layer
/// rejects them at construction time instead of letting them propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteRectError;

impl std::fmt::Display for NonFiniteRectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rectangle corner coordinates must be finite")
    }
}

impl std::error::Error for NonFiniteRectError {}

impl Rect {
    /// Creates a rectangle from two opposite corners given as coordinates.
    ///
    /// Corner order is normalised: `Rect::new(3.0, 4.0, 1.0, 2.0)` equals
    /// `Rect::new(1.0, 2.0, 3.0, 4.0)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN or infinite. The `f64::min`/`max`
    /// normalisation would otherwise *silently drop* a NaN corner (NaN loses
    /// every min/max), producing a plausible-looking but corrupt rectangle.
    /// Callers handling untrusted input should use [`Rect::try_new`].
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        match Rect::try_new(x1, y1, x2, y2) {
            Ok(r) => r,
            Err(e) => panic!("{e}: ({x1}, {y1}, {x2}, {y2})"),
        }
    }

    /// Fallible constructor: like [`Rect::new`] but returns an error instead
    /// of panicking when a coordinate is NaN or infinite.
    #[inline]
    pub fn try_new(x1: f64, y1: f64, x2: f64, y2: f64) -> Result<Rect, NonFiniteRectError> {
        if !(x1.is_finite() && y1.is_finite() && x2.is_finite() && y2.is_finite()) {
            return Err(NonFiniteRectError);
        }
        Ok(Rect {
            lo: Point::new(x1.min(x2), y1.min(y2)),
            hi: Point::new(x1.max(x2), y1.max(y2)),
        })
    }

    /// Creates a rectangle from two opposite corner points (order normalised).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// The degenerate rectangle containing exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Rect {
        Rect { lo: p, hi: p }
    }

    /// Creates a rectangle from its centre and full width/height.
    ///
    /// Negative sizes are treated as their absolute value.
    #[inline]
    pub fn from_center_size(center: Point, width: f64, height: f64) -> Rect {
        let hw = width.abs() / 2.0;
        let hh = height.abs() / 2.0;
        Rect {
            lo: Point::new(center.x - hw, center.y - hh),
            hi: Point::new(center.x + hw, center.y + hh),
        }
    }

    /// Width along the x axis (always `>= 0`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height along the y axis (always `>= 0`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Side length along `axis`.
    #[inline]
    pub fn side(&self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.width(),
            Axis::Y => self.height(),
        }
    }

    /// The longer of the two axes (ties broken towards [`Axis::X`]).
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        if self.width() >= self.height() {
            Axis::X
        } else {
            Axis::Y
        }
    }

    /// Area (`width * height`); zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (`width + height`), the *margin* minimised by the
    /// R\*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Returns `true` if `other` lies entirely inside `self` (boundaries may
    /// touch).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lo.x >= self.lo.x
            && other.hi.x <= self.hi.x
            && other.lo.y >= self.lo.y
            && other.hi.y <= self.hi.y
    }

    /// Returns `true` if the closed regions share at least one point.
    ///
    /// Touching edges/corners count as intersecting, matching the paper's
    /// result-size definition (non-empty intersection of closed rectangles).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The intersection region, or `None` if the rectangles are disjoint.
    ///
    /// The intersection of touching rectangles is a degenerate rectangle.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// Area of the intersection region (zero when disjoint or touching).
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0.0);
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0.0);
        w * h
    }

    /// Overlap length of the two projections onto `axis` (zero when the
    /// projections are disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Rect, axis: Axis) -> f64 {
        match axis {
            Axis::X => (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0.0),
            Axis::Y => (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0.0),
        }
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// The smallest rectangle containing `self` and the point `p`.
    #[inline]
    pub fn expand_to(&self, p: Point) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(p.x), self.lo.y.min(p.y)),
            hi: Point::new(self.hi.x.max(p.x), self.hi.y.max(p.y)),
        }
    }

    /// Grows the rectangle by `dx` on the left *and* right and by `dy` on the
    /// bottom *and* top (the Minkowski sum with a `2dx × 2dy` box).
    ///
    /// This is the *query extension* at the heart of the uniformity-assumption
    /// estimator: a query extended by half the average object width/height
    /// captures objects whose centres fall outside the query but which still
    /// intersect it. Negative amounts shrink the rectangle, saturating at the
    /// centre (the result never inverts).
    #[inline]
    pub fn expanded(&self, dx: f64, dy: f64) -> Rect {
        let c = self.center();
        let hw = (self.width() / 2.0 + dx).max(0.0);
        let hh = (self.height() / 2.0 + dy).max(0.0);
        Rect {
            lo: Point::new(c.x - hw, c.y - hh),
            hi: Point::new(c.x + hw, c.y + hh),
        }
    }

    /// Increase in area needed to enlarge `self` to also cover `other`
    /// (the R-tree *area enlargement* criterion). Always `>= 0`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Splits the rectangle with a line perpendicular to `axis` at coordinate
    /// `at`, returning the (lower, upper) halves.
    ///
    /// `at` is clamped into the rectangle's extent, so the halves always tile
    /// `self` exactly (one of them may be degenerate when `at` falls on or
    /// outside a boundary).
    pub fn split_at(&self, axis: Axis, at: f64) -> (Rect, Rect) {
        match axis {
            Axis::X => {
                let at = at.clamp(self.lo.x, self.hi.x);
                (
                    Rect::new(self.lo.x, self.lo.y, at, self.hi.y),
                    Rect::new(at, self.lo.y, self.hi.x, self.hi.y),
                )
            }
            Axis::Y => {
                let at = at.clamp(self.lo.y, self.hi.y);
                (
                    Rect::new(self.lo.x, self.lo.y, self.hi.x, at),
                    Rect::new(self.lo.x, at, self.hi.x, self.hi.y),
                )
            }
        }
    }

    /// Returns `true` if all four coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn constructor_normalises_corners() {
        let r = Rect::new(3.0, 4.0, 1.0, 2.0);
        assert_eq!(r, Rect::new(1.0, 2.0, 3.0, 4.0));
        assert_eq!(r.lo, Point::new(1.0, 2.0));
        assert_eq!(r.hi, Point::new(3.0, 4.0));
    }

    #[test]
    fn non_finite_corners_rejected() {
        // NaN would silently lose the min/max normalisation; the constructor
        // must refuse it rather than build a corrupt rectangle.
        assert_eq!(
            Rect::try_new(f64::NAN, 0.0, 1.0, 1.0),
            Err(NonFiniteRectError)
        );
        assert_eq!(
            Rect::try_new(0.0, f64::INFINITY, 1.0, 1.0),
            Err(NonFiniteRectError)
        );
        assert_eq!(
            Rect::try_new(0.0, 0.0, f64::NEG_INFINITY, 1.0),
            Err(NonFiniteRectError)
        );
        assert_eq!(
            Rect::try_new(0.0, 0.0, 1.0, f64::NAN),
            Err(NonFiniteRectError)
        );
        assert!(Rect::try_new(0.0, 0.0, 1.0, 1.0).is_ok());
        let result = std::panic::catch_unwind(|| Rect::new(f64::NAN, 0.0, 1.0, 1.0));
        assert!(result.is_err(), "Rect::new must panic on NaN");
    }

    #[test]
    fn basic_measures() {
        let r = Rect::new(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.margin(), 9.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
        assert_eq!(r.longest_axis(), Axis::Y);
        assert_eq!(r.side(Axis::X), 3.0);
        assert_eq!(r.side(Axis::Y), 6.0);
    }

    #[test]
    fn longest_axis_tie_prefers_x() {
        assert_eq!(Rect::new(0.0, 0.0, 2.0, 2.0).longest_axis(), Axis::X);
    }

    #[test]
    fn from_center_size_roundtrip() {
        let r = Rect::from_center_size(Point::new(5.0, 5.0), 4.0, 2.0);
        assert_eq!(r, Rect::new(3.0, 4.0, 7.0, 6.0));
        let neg = Rect::from_center_size(Point::new(0.0, 0.0), -4.0, -2.0);
        assert_eq!(neg, Rect::new(-2.0, -1.0, 2.0, 1.0));
    }

    #[test]
    fn containment() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(Point::new(0.0, 0.0))); // corner is inside
        assert!(r.contains_point(Point::new(10.0, 5.0))); // edge is inside
        assert!(!r.contains_point(Point::new(10.0001, 5.0)));
        assert!(r.contains_rect(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(r.contains_rect(&r)); // reflexive
        assert!(!r.contains_rect(&Rect::new(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let edge = Rect::new(1.0, 0.0, 2.0, 1.0);
        let corner = Rect::new(1.0, 1.0, 2.0, 2.0);
        let apart = Rect::new(1.1, 0.0, 2.0, 1.0);
        assert!(a.intersects(&edge));
        assert!(a.intersects(&corner));
        assert!(!a.intersects(&apart));
        // Touching intersection is a degenerate rect with zero area.
        let i = a.intersection(&edge).unwrap();
        assert_eq!(i, Rect::new(1.0, 0.0, 1.0, 1.0));
        assert_eq!(a.intersection_area(&edge), 0.0);
        assert!(a.intersection(&apart).is_none());
    }

    #[test]
    fn point_query_as_degenerate_rect() {
        // The paper models point queries as rectangles with qx1 == qx2.
        let data = Rect::new(0.0, 0.0, 10.0, 10.0);
        let on = Rect::from_point(Point::new(5.0, 5.0));
        let off = Rect::from_point(Point::new(15.0, 5.0));
        assert!(data.intersects(&on));
        assert!(!data.intersects(&off));
    }

    #[test]
    fn intersection_area_overlapping() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 1.0, 6.0, 3.0);
        assert_eq!(a.intersection_area(&b), 2.0 * 2.0);
        assert_eq!(b.intersection_area(&a), 4.0);
        assert_eq!(a.overlap_len(&b, Axis::X), 2.0);
        assert_eq!(a.overlap_len(&b, Axis::Y), 2.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(3.0, 3.0, 4.0, 4.0);
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 4.0, 4.0));
        assert_eq!(a.enlargement(&b), 16.0 - 4.0);
        assert_eq!(a.enlargement(&Rect::new(0.5, 0.5, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn expanded_minkowski() {
        let q = Rect::new(2.0, 2.0, 4.0, 4.0);
        let e = q.expanded(0.5, 1.0);
        assert_eq!(e, Rect::new(1.5, 1.0, 4.5, 5.0));
        // Shrinking saturates at the centre rather than inverting.
        let s = q.expanded(-5.0, -5.0);
        assert_eq!(s, Rect::from_point(Point::new(3.0, 3.0)));
    }

    #[test]
    fn split_tiles_exactly() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        let (l, rr) = r.split_at(Axis::X, 3.0);
        assert_eq!(l, Rect::new(0.0, 0.0, 3.0, 4.0));
        assert_eq!(rr, Rect::new(3.0, 0.0, 10.0, 4.0));
        let (b, t) = r.split_at(Axis::Y, 1.0);
        assert_eq!(b, Rect::new(0.0, 0.0, 10.0, 1.0));
        assert_eq!(t, Rect::new(0.0, 1.0, 10.0, 4.0));
        // Out-of-range split points clamp to the boundary.
        let (l, rr) = r.split_at(Axis::X, -5.0);
        assert_eq!(l.area(), 0.0);
        assert_eq!(rr, r);
    }

    #[cfg(feature = "proptest")]
    fn arb_rect() -> impl Strategy<Value = Rect> {
        (-1e6..1e6f64, -1e6..1e6f64, 0.0..1e5f64, 0.0..1e5f64)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn prop_intersection_symmetric_and_contained(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
                prop_assert!((i.area() - a.intersection_area(&b)).abs() <= 1e-6 * i.area().max(1.0));
            } else {
                prop_assert_eq!(a.intersection_area(&b), 0.0);
            }
        }

        #[test]
        fn prop_split_partitions_area(r in arb_rect(), axis_x in any::<bool>(), t in 0.0..1.0f64) {
            let axis = if axis_x { Axis::X } else { Axis::Y };
            let at = match axis {
                Axis::X => r.lo.x + t * r.width(),
                Axis::Y => r.lo.y + t * r.height(),
            };
            let (a, b) = r.split_at(axis, at);
            prop_assert!(r.contains_rect(&a));
            prop_assert!(r.contains_rect(&b));
            let total = a.area() + b.area();
            prop_assert!((total - r.area()).abs() <= 1e-9 * r.area().max(1.0));
        }

        #[test]
        fn prop_enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
            prop_assert!(a.enlargement(&b) >= 0.0);
            prop_assert!(a.union(&b).enlargement(&b) == 0.0);
        }

        #[test]
        fn prop_center_inside(r in arb_rect()) {
            prop_assert!(r.contains_point(r.center()));
        }
    }
}
