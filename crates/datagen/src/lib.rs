//! Synthetic spatial dataset generators.
//!
//! The paper evaluates on two families of inputs:
//!
//! * **Synthetic data** (§5.1.2) varying in size, sparsity, placement skew
//!   and size skew, with skew modelled by Zipf distributions; the showcased
//!   instance is the *Charminar* set — 40 000 identical 100×100 rectangles
//!   in a 10 000×10 000 space, concentrated at the four corners.
//! * **Real-life data**: TIGER *NJ Road* (414 442 line-segment bounding
//!   boxes) and Sequoia. Those files are not redistributable here, so this
//!   crate provides a *road-network generator* ([`nj_road_like`])
//!   reproducing their statistical character: a large number of tiny, thin
//!   rectangles whose placement follows strongly skewed curvilinear clusters
//!   (cities, highway corridors). See DESIGN.md §6 for the substitution
//!   rationale.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod charminar;
mod points;
mod roadnet;
mod synthetic;
mod zipf;

pub use charminar::{charminar, charminar_with};
pub use points::{clustered_points, ClusteredPointSpec};
pub use roadnet::{nj_road_like, RoadNetworkSpec};
pub use synthetic::{uniform_rects, SyntheticSpec};
pub use zipf::Zipf;
