//! A synthetic road-network generator standing in for the TIGER *NJ Road*
//! dataset (see DESIGN.md §6).
//!
//! TIGER road data consists of line segments; the paper uses the bounding
//! boxes of all 414 442 NJ road segments as its real-life input. What makes
//! that input hard for selectivity estimation is its *placement skew*: tiny,
//! thin rectangles tracing curvilinear clusters — dense urban grids around
//! population centres connected by sparse highway corridors, with large
//! empty regions in between. This generator reproduces exactly those
//! properties:
//!
//! * **Population centres** with Zipf-distributed sizes (a few large metros,
//!   many small towns), biased towards a diagonal "corridor" through an
//!   elongated state-shaped space.
//! * **Highways**: jittered polylines connecting each centre to its nearest
//!   neighbours.
//! * **Local streets**: random-walk polylines seeded around each centre,
//!   with counts proportional to the centre's size.
//!
//! Every polyline is emitted as per-segment bounding boxes, matching the
//! paper's preprocessing of the TIGER line segments.

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};
use rand::{Rng, SeedableRng};

use crate::Zipf;

/// Parameters of the road-network generator.
#[derive(Debug, Clone)]
pub struct RoadNetworkSpec {
    /// Total number of road segments (= output rectangles).
    pub segments: usize,
    /// The state-shaped space (default elongated like New Jersey).
    pub space: Rect,
    /// Number of population centres.
    pub centers: usize,
    /// Zipf parameter of centre sizes.
    pub center_theta: f64,
    /// Mean local-street segment length.
    pub street_step: f64,
    /// Mean highway segment length.
    pub highway_step: f64,
    /// Fraction of segments belonging to highways (the rest are streets).
    pub highway_fraction: f64,
    /// Fraction of street walks seeded uniformly over the whole space
    /// (rural roads) rather than near a population centre.
    pub rural_fraction: f64,
}

impl Default for RoadNetworkSpec {
    fn default() -> RoadNetworkSpec {
        RoadNetworkSpec {
            segments: 414_442,
            space: Rect::new(0.0, 0.0, 60_000.0, 100_000.0),
            centers: 220,
            center_theta: 0.9,
            street_step: 120.0,
            highway_step: 400.0,
            highway_fraction: 0.12,
            rural_fraction: 0.25,
        }
    }
}

/// Generates a road-network dataset with the paper's NJ Road cardinality
/// (414 442 segment bounding boxes) and the given seed.
pub fn nj_road_like(seed: u64) -> Dataset {
    RoadNetworkSpec::default().generate(seed)
}

/// Folds `v` into `[lo, hi]` by reflection at the boundaries.
///
/// Clamping instead would stack thousands of points onto exactly the
/// boundary coordinate — a mass duplication real survey data does not
/// exhibit (and which degenerates distinct-count-based techniques).
fn reflect_into(v: f64, lo: f64, hi: f64) -> f64 {
    let range = hi - lo;
    if range <= 0.0 {
        return lo;
    }
    let mut t = (v - lo) % (2.0 * range);
    if t < 0.0 {
        t += 2.0 * range;
    }
    if t > range {
        t = 2.0 * range - t;
    }
    lo + t
}

impl RoadNetworkSpec {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.centers >= 2, "need at least two population centres");
        assert!(
            (0.0..=1.0).contains(&self.highway_fraction),
            "highway fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.rural_fraction),
            "rural fraction must be in [0, 1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let centers = self.place_centers(&mut rng);

        let mut rects = Vec::with_capacity(self.segments);
        let highway_budget = ((self.segments as f64) * self.highway_fraction).round() as usize;

        // Highways: connect each centre to its 2 nearest neighbours.
        'outer: for (i, &a) in centers.iter().enumerate() {
            let mut others: Vec<(f64, usize)> = centers
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, &b)| (a.dist2(&b), j))
                .collect();
            others.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
            for &(_, j) in others.iter().take(2) {
                if j < i {
                    continue; // each pair once
                }
                let b = centers[j];
                for seg in self.polyline_between(a, b, &mut rng) {
                    rects.push(seg);
                    if rects.len() >= highway_budget {
                        break 'outer;
                    }
                }
            }
        }

        // Local streets: random walks around centres, Zipf-weighted.
        let center_zipf = Zipf::new(self.centers, self.center_theta);
        while rects.len() < self.segments {
            let mut p = if rng.gen::<f64>() < self.rural_fraction {
                // Rural road: anywhere in the state.
                Point::new(
                    rng.gen_range(self.space.lo.x..=self.space.hi.x),
                    rng.gen_range(self.space.lo.y..=self.space.hi.y),
                )
            } else {
                // Urban/suburban street near a Zipf-weighted centre, with
                // exponential falloff.
                let c = centers[center_zipf.sample(&mut rng) - 1];
                let r_off: f64 = -3_200.0 * (1.0 - rng.gen::<f64>()).ln();
                let ang: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::new(
                    reflect_into(c.x + r_off * ang.cos(), self.space.lo.x, self.space.hi.x),
                    reflect_into(c.y + r_off * ang.sin(), self.space.lo.y, self.space.hi.y),
                )
            };
            // Walk a short street (grid-ish: mostly axis-aligned headings).
            let mut heading: f64 = if rng.gen::<bool>() {
                0.0
            } else {
                std::f64::consts::FRAC_PI_2
            };
            if rng.gen::<bool>() {
                heading += std::f64::consts::PI;
            }
            let steps = rng.gen_range(3..25usize);
            for _ in 0..steps {
                if rects.len() >= self.segments {
                    break;
                }
                heading += rng.gen_range(-0.3..0.3);
                let len = self.street_step * rng.gen_range(0.4..1.6);
                let q = Point::new(
                    reflect_into(p.x + len * heading.cos(), self.space.lo.x, self.space.hi.x),
                    reflect_into(p.y + len * heading.sin(), self.space.lo.y, self.space.hi.y),
                );
                rects.push(Rect::from_corners(p, q));
                p = q;
            }
        }
        Dataset::new(rects)
    }

    /// Places population centres along a jittered diagonal corridor.
    fn place_centers<R: Rng>(&self, rng: &mut R) -> Vec<Point> {
        let mut centers = Vec::with_capacity(self.centers);
        for i in 0..self.centers {
            let t = (i as f64 + rng.gen::<f64>()) / self.centers as f64;
            // Corridor runs corner-to-corner; centres jitter around it.
            let base_x = self.space.lo.x + t * self.space.width();
            let base_y = self.space.lo.y + t * self.space.height();
            let jx = rng.gen_range(-0.25..0.25) * self.space.width();
            let jy = rng.gen_range(-0.12..0.12) * self.space.height();
            centers.push(Point::new(
                (base_x + jx).clamp(self.space.lo.x, self.space.hi.x),
                (base_y + jy).clamp(self.space.lo.y, self.space.hi.y),
            ));
        }
        centers
    }

    /// A jittered polyline from `a` to `b`, returned as segment bounding
    /// boxes.
    fn polyline_between<R: Rng>(&self, a: Point, b: Point, rng: &mut R) -> Vec<Rect> {
        let dist = a.dist2(&b).sqrt();
        let steps = ((dist / self.highway_step).ceil() as usize).max(1);
        let mut out = Vec::with_capacity(steps);
        let mut p = a;
        for s in 1..=steps {
            let t = s as f64 / steps as f64;
            let jitter = self.highway_step * 0.4;
            let q = if s == steps {
                b
            } else {
                Point::new(
                    reflect_into(
                        a.x + t * (b.x - a.x) + rng.gen_range(-jitter..jitter),
                        self.space.lo.x,
                        self.space.hi.x,
                    ),
                    reflect_into(
                        a.y + t * (b.y - a.y) + rng.gen_range(-jitter..jitter),
                        self.space.lo.y,
                        self.space.hi.y,
                    ),
                )
            };
            out.push(Rect::from_corners(p, q));
            p = q;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(segments: usize) -> RoadNetworkSpec {
        RoadNetworkSpec {
            segments,
            centers: 12,
            ..RoadNetworkSpec::default()
        }
    }

    #[test]
    fn generates_exact_segment_count() {
        let ds = small_spec(30_000).generate(1);
        assert_eq!(ds.len(), 30_000);
        let space = RoadNetworkSpec::default().space;
        assert!(ds.rects().iter().all(|r| space.contains_rect(r)));
    }

    #[test]
    fn segments_are_small_and_thin() {
        let ds = small_spec(20_000).generate(2);
        let s = ds.stats();
        // Average segment extent is a tiny fraction of the space, as with
        // real road segments.
        assert!(s.avg_width < s.mbr.width() / 100.0);
        assert!(s.avg_height < s.mbr.height() / 100.0);
    }

    #[test]
    fn placement_is_strongly_skewed() {
        let ds = small_spec(40_000).generate(3);
        // Split the space into a 8x8 lattice of cells and compare the most
        // and least populated cells by rect centers.
        let space = RoadNetworkSpec::default().space;
        let g = 8;
        let mut counts = vec![0usize; g * g];
        for r in ds.rects() {
            let c = r.center();
            let ix = (((c.x - space.lo.x) / space.width() * g as f64) as usize).min(g - 1);
            let iy = (((c.y - space.lo.y) / space.height() * g as f64) as usize).min(g - 1);
            counts[iy * g + ix] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = 40_000 / (g * g);
        assert!(max > 4 * mean, "max cell {max}, uniform mean {mean}");
        // And a meaningful share of cells should be nearly empty.
        let sparse = counts.iter().filter(|&&c| c < mean / 4).count();
        assert!(sparse > g * g / 8, "only {sparse} sparse cells");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_spec(5_000).generate(10);
        let b = small_spec(5_000).generate(10);
        assert_eq!(a.rects(), b.rects());
    }

    #[test]
    fn default_matches_paper_cardinality() {
        assert_eq!(RoadNetworkSpec::default().segments, 414_442);
    }

    #[test]
    fn reflection_folds_into_range() {
        assert_eq!(reflect_into(5.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect_into(-3.0, 0.0, 10.0), 3.0);
        assert_eq!(reflect_into(13.0, 0.0, 10.0), 7.0);
        assert_eq!(reflect_into(27.0, 0.0, 10.0), 7.0); // multiple folds
        assert_eq!(reflect_into(4.0, 4.0, 4.0), 4.0); // degenerate range
        for v in [-100.0, -0.1, 0.0, 9.99, 10.0, 55.5] {
            let r = reflect_into(v, 0.0, 10.0);
            assert!((0.0..=10.0).contains(&r), "{v} -> {r}");
        }
    }

    #[test]
    fn coordinates_rarely_duplicate() {
        // Reflection (unlike clamping) must not pile mass onto the
        // boundary coordinate; distinct centre counts stay near n.
        let ds = small_spec(20_000).generate(5);
        let mut xs: Vec<f64> = ds.rects().iter().map(|r| r.center().x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let distinct = 1 + xs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            distinct as f64 > 0.99 * ds.len() as f64,
            "only {distinct}/{} distinct x centres",
            ds.len()
        );
    }
}
