//! Clustered point-data generator (Sequoia-style).
//!
//! The Sequoia 2000 benchmark's point data (California landmark locations)
//! is the paper's second real-life dataset; its results are deferred to the
//! paper's full version, so no experiment here depends on it, but the
//! generator is provided for completeness and for exercising the estimators
//! on *degenerate* rectangles (points), which the problem definition
//! explicitly covers.

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};
use rand::{Rng, SeedableRng};

use crate::Zipf;

/// Parameters for clustered point generation.
#[derive(Debug, Clone)]
pub struct ClusteredPointSpec {
    /// Number of points.
    pub n: usize,
    /// The space points are placed in.
    pub space: Rect,
    /// Number of cluster centres.
    pub clusters: usize,
    /// Zipf parameter of cluster sizes.
    pub cluster_theta: f64,
    /// Standard deviation of point offsets around their cluster centre,
    /// as a fraction of the space diagonal.
    pub spread: f64,
    /// Fraction of points placed uniformly (background noise).
    pub noise: f64,
}

impl Default for ClusteredPointSpec {
    fn default() -> ClusteredPointSpec {
        ClusteredPointSpec {
            n: 62_000,
            space: Rect::new(0.0, 0.0, 100_000.0, 100_000.0),
            clusters: 40,
            cluster_theta: 1.0,
            spread: 0.02,
            noise: 0.05,
        }
    }
}

/// Generates clustered point data (as degenerate rectangles).
pub fn clustered_points(spec: &ClusteredPointSpec, seed: u64) -> Dataset {
    assert!(spec.clusters > 0, "need at least one cluster");
    assert!((0.0..=1.0).contains(&spec.noise), "noise must be in [0, 1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..spec.clusters)
        .map(|_| {
            Point::new(
                rng.gen_range(spec.space.lo.x..=spec.space.hi.x),
                rng.gen_range(spec.space.lo.y..=spec.space.hi.y),
            )
        })
        .collect();
    let zipf = Zipf::new(spec.clusters, spec.cluster_theta);
    let sigma = spec.spread * (spec.space.width().powi(2) + spec.space.height().powi(2)).sqrt();

    let mut rects = Vec::with_capacity(spec.n);
    for _ in 0..spec.n {
        let p = if rng.gen::<f64>() < spec.noise {
            Point::new(
                rng.gen_range(spec.space.lo.x..=spec.space.hi.x),
                rng.gen_range(spec.space.lo.y..=spec.space.hi.y),
            )
        } else {
            let c = centers[zipf.sample(&mut rng) - 1];
            // Box-Muller normal offsets.
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
            let r = sigma * (-2.0 * u1.ln()).sqrt();
            let th = std::f64::consts::TAU * u2;
            Point::new(
                (c.x + r * th.cos()).clamp(spec.space.lo.x, spec.space.hi.x),
                (c.y + r * th.sin()).clamp(spec.space.lo.y, spec.space.hi.y),
            )
        };
        rects.push(Rect::from_point(p));
    }
    Dataset::new(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_degenerate_rects() {
        let spec = ClusteredPointSpec {
            n: 5_000,
            ..ClusteredPointSpec::default()
        };
        let ds = clustered_points(&spec, 1);
        assert_eq!(ds.len(), 5_000);
        assert!(ds.rects().iter().all(|r| r.area() == 0.0));
        assert_eq!(ds.stats().avg_width, 0.0);
        assert!(ds.rects().iter().all(|r| spec.space.contains_rect(r)));
    }

    #[test]
    fn clustering_creates_hotspots() {
        let spec = ClusteredPointSpec {
            n: 30_000,
            noise: 0.0,
            ..ClusteredPointSpec::default()
        };
        let ds = clustered_points(&spec, 2);
        let g = 10;
        let mut counts = vec![0usize; g * g];
        for r in ds.rects() {
            let c = r.center();
            let ix = ((c.x / spec.space.width() * g as f64) as usize).min(g - 1);
            let iy = ((c.y / spec.space.height() * g as f64) as usize).min(g - 1);
            counts[iy * g + ix] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 5 * (30_000 / (g * g)), "max cell holds {max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ClusteredPointSpec {
            n: 1_000,
            ..ClusteredPointSpec::default()
        };
        assert_eq!(
            clustered_points(&spec, 3).rects(),
            clustered_points(&spec, 3).rects()
        );
    }
}
