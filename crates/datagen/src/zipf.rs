//! A from-scratch Zipf sampler.
//!
//! The paper models both *size skew* (rectangle widths/heights) and
//! *placement skew* (where rectangles land in space) with the Zipf
//! distribution [Zip49]. The allowed dependency set has no distribution
//! crate, so this is a small exact sampler: probabilities are proportional
//! to `1 / rank^theta`, materialised as a CDF and sampled by binary search.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with skew parameter `theta >= 0`.
///
/// `theta = 0` degenerates to the uniform distribution; `theta = 1` is the
/// classic Zipf; larger values concentrate mass on low ranks.
///
/// # Examples
///
/// ```
/// use minskew_datagen::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!((1..=100).contains(&r));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there is a single rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the
        // 0-based index of the first cdf entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        let z = Zipf::new(10, 1.0);
        // p(1) / p(2) = 2 for theta = 1.
        assert!((z.pmf(1) / z.pmf(2) - 2.0).abs() < 1e-9);
        assert!((z.pmf(1) / z.pmf(5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(5, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut counts = [0usize; 5];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=5 {
            let expected = z.pmf(k) * draws as f64;
            let got = counts[k - 1] as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {k}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 1);
        }
        assert_eq!(z.pmf(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
