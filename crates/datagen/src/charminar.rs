//! The *Charminar* dataset (§5.1.2, Figure 1 of the paper).
//!
//! 40 000 rectangles of identical 100×100 size in a 10 000×10 000 space,
//! concentrated in the four corners ("four minarets") with *varying* density
//! levels per corner, plus a thin uniform scatter across the interior. The
//! varying corner densities are what make the set interesting: a good
//! partitioning must spend buckets unevenly.

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};
use rand::{Rng, SeedableRng};

/// Side length of the Charminar space.
const SPACE: f64 = 10_000.0;
/// Side length of every rectangle.
const RECT_SIDE: f64 = 100.0;

/// Generates the standard 40 000-rectangle Charminar set.
pub fn charminar(seed: u64) -> Dataset {
    charminar_with(40_000, seed)
}

/// Generates a Charminar-style set with `n` rectangles.
///
/// Mass distribution: the four corner clusters receive 30 %, 27 %, 22 % and
/// 14 % of the rectangles (distinct densities, as in Figure 5 of the paper,
/// where the corner peaks differ in height), and the remaining 7 % scatter
/// uniformly over the whole space. Within a cluster, centre offsets from the
/// corner follow an exponential falloff, giving the smooth density decay
/// visible in the paper's density plot.
pub fn charminar_with(n: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // (corner x, corner y, direction into the space, share of mass)
    let corners = [
        (0.0, 0.0, 1.0, 1.0, 0.30),
        (SPACE, 0.0, -1.0, 1.0, 0.27),
        (0.0, SPACE, 1.0, -1.0, 0.22),
        (SPACE, SPACE, -1.0, -1.0, 0.14),
    ];
    // Mean distance of cluster points from their corner, per axis.
    let falloff = 900.0;
    let half = RECT_SIDE / 2.0;

    let mut rects = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut placed = false;
        for &(cx, cy, dx, dy, share) in &corners {
            acc += share;
            if u < acc {
                // Exponential falloff from the corner, clamped into space.
                let off_x: f64 = -falloff * (1.0 - rng.gen::<f64>()).ln();
                let off_y: f64 = -falloff * (1.0 - rng.gen::<f64>()).ln();
                let x = (cx + dx * off_x).clamp(half, SPACE - half);
                let y = (cy + dy * off_y).clamp(half, SPACE - half);
                rects.push(Rect::from_center_size(
                    Point::new(x, y),
                    RECT_SIDE,
                    RECT_SIDE,
                ));
                placed = true;
                break;
            }
        }
        if !placed {
            // Uniform interior scatter.
            let x = rng.gen_range(half..SPACE - half);
            let y = rng.gen_range(half..SPACE - half);
            rects.push(Rect::from_center_size(
                Point::new(x, y),
                RECT_SIDE,
                RECT_SIDE,
            ));
        }
    }
    Dataset::new(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_charminar_shape() {
        let ds = charminar(1);
        assert_eq!(ds.len(), 40_000);
        let s = ds.stats();
        // All rects are 100x100.
        assert!((s.avg_width - RECT_SIDE).abs() < 1e-9);
        assert!((s.avg_height - RECT_SIDE).abs() < 1e-9);
        assert!(s.total_area > 0.0);
        // Everything inside the space.
        let space = Rect::new(0.0, 0.0, SPACE, SPACE);
        assert!(ds.rects().iter().all(|r| space.contains_rect(r)));
    }

    #[test]
    fn corners_are_denser_than_center() {
        let ds = charminar_with(20_000, 2);
        let corner = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        let center = Rect::new(4250.0, 4250.0, 5750.0, 5750.0);
        let c_corner = ds.count_intersecting(&corner);
        let c_center = ds.count_intersecting(&center);
        assert!(
            c_corner > 5 * c_center.max(1),
            "corner {c_corner} should dominate centre {c_center}"
        );
    }

    #[test]
    fn corner_densities_differ() {
        let ds = charminar_with(40_000, 3);
        let probe = 1200.0;
        let counts: Vec<usize> = [
            Rect::new(0.0, 0.0, probe, probe),
            Rect::new(SPACE - probe, 0.0, SPACE, probe),
            Rect::new(0.0, SPACE - probe, probe, SPACE),
            Rect::new(SPACE - probe, SPACE - probe, SPACE, SPACE),
        ]
        .iter()
        .map(|q| ds.count_intersecting(q))
        .collect();
        // Densities ordered by the configured shares (allow generous noise).
        assert!(counts[0] > counts[3], "counts = {counts:?}");
        assert!(counts[1] > counts[3], "counts = {counts:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = charminar_with(500, 42);
        let b = charminar_with(500, 42);
        let c = charminar_with(500, 43);
        assert_eq!(a.rects(), b.rects());
        assert_ne!(a.rects(), c.rects());
    }
}
