//! The parameterised synthetic family of §5.1.2: datasets varying in size,
//! sparsity, placement skew, and size skew, all driven by Zipf distributions.

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::Zipf;

/// Specification of a synthetic rectangle dataset.
///
/// *Placement skew* is modelled by laying a `placement_grid ×
/// placement_grid` lattice over the space and drawing each rectangle's cell
/// with per-axis Zipf(`placement_theta`) ranks; rank-to-row/column
/// assignments are shuffled by the seed so hot regions land in different
/// places per dataset rather than always at the origin corner. *Size skew*
/// draws each side length from a geometric ladder of `size_levels` values
/// between `min_side` and `max_side` with Zipf(`size_theta`) rank
/// probabilities (rank 1 = smallest side, matching real data where small
/// objects dominate).
///
/// # Examples
///
/// ```
/// use minskew_datagen::SyntheticSpec;
///
/// let ds = SyntheticSpec::default().with_n(1_000).generate(7);
/// assert_eq!(ds.len(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of rectangles.
    pub n: usize,
    /// The space rectangles are placed in (controls sparsity together
    /// with `n` and the side lengths).
    pub space: Rect,
    /// Placement lattice resolution per axis.
    pub placement_grid: usize,
    /// Zipf parameter of placement skew (0 = uniform placement).
    pub placement_theta: f64,
    /// Zipf parameter of size skew (0 = uniform over the size ladder).
    pub size_theta: f64,
    /// Number of rungs on the size ladder.
    pub size_levels: usize,
    /// Smallest side length.
    pub min_side: f64,
    /// Largest side length.
    pub max_side: f64,
}

impl Default for SyntheticSpec {
    /// 50 000 rectangles in a 100 000² space: moderate placement skew
    /// (`theta = 0.8`), mild size skew (`theta = 0.5`), sides 20–2 000.
    fn default() -> SyntheticSpec {
        SyntheticSpec {
            n: 50_000,
            space: Rect::new(0.0, 0.0, 100_000.0, 100_000.0),
            placement_grid: 64,
            placement_theta: 0.8,
            size_theta: 0.5,
            size_levels: 16,
            min_side: 20.0,
            max_side: 2_000.0,
        }
    }
}

impl SyntheticSpec {
    /// Returns the spec with `n` replaced.
    pub fn with_n(mut self, n: usize) -> SyntheticSpec {
        self.n = n;
        self
    }

    /// Returns the spec with placement skew replaced.
    pub fn with_placement_theta(mut self, theta: f64) -> SyntheticSpec {
        self.placement_theta = theta;
        self
    }

    /// Returns the spec with size skew replaced.
    pub fn with_size_theta(mut self, theta: f64) -> SyntheticSpec {
        self.size_theta = theta;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero grid, inverted side range).
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.placement_grid > 0, "placement grid must be non-empty");
        assert!(self.size_levels > 0, "size ladder must be non-empty");
        assert!(
            self.min_side > 0.0 && self.min_side <= self.max_side,
            "side range must satisfy 0 < min <= max"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = self.placement_grid;
        let col_zipf = Zipf::new(g, self.placement_theta);
        let row_zipf = Zipf::new(g, self.placement_theta);
        let size_zipf = Zipf::new(self.size_levels, self.size_theta);

        // Shuffle rank -> lattice position so skew hotspots are scattered.
        let mut col_of_rank: Vec<usize> = (0..g).collect();
        let mut row_of_rank: Vec<usize> = (0..g).collect();
        col_of_rank.shuffle(&mut rng);
        row_of_rank.shuffle(&mut rng);

        // Geometric size ladder.
        let ratio = if self.size_levels == 1 {
            1.0
        } else {
            (self.max_side / self.min_side).powf(1.0 / (self.size_levels - 1) as f64)
        };
        let side_of_rank: Vec<f64> = (0..self.size_levels)
            .map(|i| self.min_side * ratio.powi(i as i32))
            .collect();

        let cell_w = self.space.width() / g as f64;
        let cell_h = self.space.height() / g as f64;
        let mut rects = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let col = col_of_rank[col_zipf.sample(&mut rng) - 1];
            let row = row_of_rank[row_zipf.sample(&mut rng) - 1];
            let cx = self.space.lo.x + (col as f64 + rng.gen::<f64>()) * cell_w;
            let cy = self.space.lo.y + (row as f64 + rng.gen::<f64>()) * cell_h;
            let w = side_of_rank[size_zipf.sample(&mut rng) - 1];
            let h = side_of_rank[size_zipf.sample(&mut rng) - 1];
            rects.push(Rect::from_center_size(Point::new(cx, cy), w, h));
        }
        Dataset::new(rects)
    }
}

/// Generates `n` rectangles of fixed size uniformly placed in `space`
/// (the no-skew control case).
pub fn uniform_rects(n: usize, space: Rect, width: f64, height: f64, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rects = (0..n)
        .map(|_| {
            let cx = rng.gen_range(space.lo.x..=space.hi.x);
            let cy = rng.gen_range(space.lo.y..=space.hi.y);
            Rect::from_center_size(Point::new(cx, cy), width, height)
        })
        .collect();
    Dataset::new(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_deterministically() {
        let spec = SyntheticSpec::default().with_n(2_000);
        let a = spec.generate(5);
        let b = spec.generate(5);
        assert_eq!(a.len(), 2_000);
        assert_eq!(a.rects(), b.rects());
        assert_ne!(a.rects(), spec.generate(6).rects());
    }

    #[test]
    fn sides_stay_on_ladder_range() {
        let spec = SyntheticSpec {
            min_side: 10.0,
            max_side: 100.0,
            ..SyntheticSpec::default()
        }
        .with_n(3_000);
        let ds = spec.generate(11);
        for r in ds.rects() {
            assert!(r.width() >= 10.0 - 1e-9 && r.width() <= 100.0 + 1e-9);
            assert!(r.height() >= 10.0 - 1e-9 && r.height() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn size_skew_prefers_small_sides() {
        let spec = SyntheticSpec {
            size_theta: 1.5,
            ..SyntheticSpec::default()
        }
        .with_n(20_000);
        let ds = spec.generate(3);
        let small = ds
            .rects()
            .iter()
            .filter(|r| r.width() <= spec.min_side * 2.0)
            .count();
        assert!(
            small > ds.len() / 3,
            "strong size skew should make small widths dominant: {small}"
        );
    }

    #[test]
    fn placement_skew_concentrates_mass() {
        // With high theta, some lattice cell should hold far more than the
        // uniform share of rect centres.
        let spec = SyntheticSpec {
            placement_theta: 1.5,
            placement_grid: 16,
            ..SyntheticSpec::default()
        }
        .with_n(20_000);
        let ds = spec.generate(9);
        let g = 16;
        let mut counts = vec![0usize; g * g];
        let cw = spec.space.width() / g as f64;
        let ch = spec.space.height() / g as f64;
        for r in ds.rects() {
            let c = r.center();
            let ix = (((c.x - spec.space.lo.x) / cw) as usize).min(g - 1);
            let iy = (((c.y - spec.space.lo.y) / ch) as usize).min(g - 1);
            counts[iy * g + ix] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform_share = 20_000 / (g * g);
        assert!(
            max > 10 * uniform_share,
            "max cell {max} vs uniform share {uniform_share}"
        );
    }

    #[test]
    fn uniform_control_is_spread_out() {
        let space = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let ds = uniform_rects(10_000, space, 5.0, 5.0, 4);
        assert_eq!(ds.len(), 10_000);
        // Quadrant counts should be roughly equal.
        let q = ds.count_intersecting(&Rect::new(0.0, 0.0, 500.0, 500.0));
        assert!((2000..3200).contains(&q), "quadrant count {q}");
    }

    #[test]
    #[should_panic(expected = "side range")]
    fn inverted_side_range_rejected() {
        SyntheticSpec {
            min_side: 10.0,
            max_side: 5.0,
            ..SyntheticSpec::default()
        }
        .generate(0);
    }
}
