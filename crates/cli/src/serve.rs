//! `minskew serve` — the TCP serving front-end — and `minskew catalog`,
//! its line-protocol client.
//!
//! `serve` hosts a [`SpatialCatalog`] behind the engine's zero-dependency
//! line protocol (see `minskew_engine::serve`); `catalog` is a one-shot
//! client that sends a single request and maps `ERR <code>` replies onto
//! the CLI's exit-code taxonomy, so scripts talk to a running server with
//! the same failure classes as the offline subcommands.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use minskew_data::atomic::write_atomic;
use minskew_data::read_rects_csv;
use minskew_engine::{serve, ServeOptions, SpatialCatalog, StatsTechnique, TableOptions};

use crate::{num, req, CliError, ErrorKind, Flags};

fn parse_technique(value: &str) -> Result<StatsTechnique, CliError> {
    match value {
        "min-skew" | "minskew" => Ok(StatsTechnique::MinSkew),
        "equi-area" => Ok(StatsTechnique::EquiArea),
        "equi-count" => Ok(StatsTechnique::EquiCount),
        "uniform" => Ok(StatsTechnique::Uniform),
        other => Err(CliError::usage(format!(
            "unknown technique {other:?} (want min-skew|equi-area|equi-count|uniform)"
        ))),
    }
}

fn table_options(opts: &Flags) -> Result<TableOptions, CliError> {
    let mut options = TableOptions::default();
    options.analyze.buckets = num(opts, "buckets", options.analyze.buckets)?;
    options.shards = num(opts, "shards", 1usize)?;
    if let Some(t) = opts.get("technique") {
        options.analyze.technique = parse_technique(t)?;
    }
    Ok(options)
}

/// `minskew serve [--addr A] [--port-file F] [--input data.csv]
/// [--table NAME] [--buckets B] [--shards S] [--technique T]`.
///
/// Blocks until a client sends `SHUTDOWN`, then dumps the server's metrics
/// registry to stdout.
pub(crate) fn serve_cmd(opts: &Flags) -> Result<(), CliError> {
    let addr = opts.get("addr").map_or("127.0.0.1:0", String::as_str);
    let options = table_options(opts)?;
    let catalog = Arc::new(SpatialCatalog::new());
    if let Some(path) = opts.get("input") {
        let name = opts.get("table").map_or("main", String::as_str);
        let data =
            read_rects_csv(path).map_err(|e| CliError::from_csv(&format!("reading {path}"), e))?;
        let entry = catalog
            .create(name, options)
            .map_err(|e| CliError::usage(e.to_string()))?;
        let mut table = entry.table();
        for r in data.rects() {
            table.insert(*r);
        }
        table.analyze();
        println!(
            "table {name:?}: {} rects, {} buckets, {} shard(s)",
            data.len(),
            table.stats_diagnostics().achieved_buckets,
            table.current_snapshot().num_shards(),
        );
    }
    let handle = serve(
        catalog,
        ServeOptions {
            addr: addr.to_string(),
            table_options: options,
            max_batch: num(opts, "max-batch", 4096usize)?,
        },
    )
    .map_err(|e| CliError::new(ErrorKind::Io, format!("binding {addr}: {e}")))?;
    let bound = handle.addr();
    println!("listening on {bound}");
    if let Some(port_file) = opts.get("port-file") {
        write_atomic(Path::new(port_file), format!("{bound}\n").as_bytes())
            .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {port_file}: {e}")))?;
    }
    let metrics = handle.join();
    print!("{}", metrics.to_text());
    Ok(())
}

/// Sends one request line and reads one reply line.
fn round_trip(addr: &str, request: &str) -> Result<String, CliError> {
    let io_err =
        |what: &str, e: std::io::Error| CliError::new(ErrorKind::Io, format!("{what} {addr}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connecting to", e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| io_err("configuring", e))?;
    stream
        .write_all(format!("{request}\n").as_bytes())
        .map_err(|e| io_err("writing to", e))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| io_err("reading from", e))?;
    if reply.is_empty() {
        return Err(CliError::new(
            ErrorKind::Io,
            format!("server at {addr} closed the connection without replying"),
        ));
    }
    Ok(reply.trim_end_matches(['\n', '\r']).to_string())
}

/// Maps a protocol reply onto the exit-code taxonomy: `OK`'s payload goes
/// to stdout; `ERR <code> <msg>` becomes a [`CliError`] of the matching
/// kind, so the process exits with the server's error code.
fn report(reply: &str) -> Result<(), CliError> {
    if let Some(payload) = reply.strip_prefix("OK") {
        println!("{}", payload.trim_start());
        return Ok(());
    }
    let Some(rest) = reply.strip_prefix("ERR ") else {
        return Err(CliError::new(
            ErrorKind::Io,
            format!("malformed server reply {reply:?}"),
        ));
    };
    let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
    let kind = match code {
        "3" => ErrorKind::Io,
        "4" => ErrorKind::Parse,
        "5" => ErrorKind::CorruptStats,
        "6" => ErrorKind::Build,
        _ => ErrorKind::Usage,
    };
    Err(CliError::new(kind, format!("server: {message}")))
}

/// Turns a `x1,y1,x2,y2` flag value into four protocol tokens.
fn rect_tokens(s: &str) -> Result<String, CliError> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!("expected x1,y1,x2,y2, got {s:?}")));
    }
    for p in &parts {
        p.parse::<f64>()
            .map_err(|e| CliError::usage(format!("bad coordinate {p:?}: {e}")))?;
    }
    Ok(parts.join(" "))
}

/// `minskew catalog <action> --addr HOST:PORT ...` — one-shot client.
pub(crate) fn catalog_cmd(action: &str, opts: &Flags) -> Result<(), CliError> {
    let addr = req(opts, "addr")?;
    let request = match action {
        "ping" => String::from("PING"),
        "list" => String::from("TABLES"),
        "shutdown" => String::from("SHUTDOWN"),
        "create" => {
            let mut request = format!("CREATE {}", req(opts, "name")?);
            for key in ["buckets", "shards", "technique"] {
                if let Some(value) = opts.get(key) {
                    request.push_str(&format!(" {key}={value}"));
                }
            }
            request
        }
        "drop" => format!("DROP {}", req(opts, "name")?),
        "insert" => format!(
            "INSERT {} {}",
            req(opts, "name")?,
            rect_tokens(req(opts, "rect")?)?
        ),
        "delete" => format!("DELETE {} {}", req(opts, "name")?, req(opts, "id")?),
        "analyze" => format!("ANALYZE {}", req(opts, "name")?),
        "estimate" => format!(
            "ESTIMATE {} {}",
            req(opts, "name")?,
            rect_tokens(req(opts, "query")?)?
        ),
        "stats" => match opts.get("name") {
            Some(name) => format!("STATS {name}"),
            None => String::from("STATS"),
        },
        "maintain" => {
            let mut request = format!("MAINTAIN {}", req(opts, "name")?);
            if let Some(mode) = opts.get("mode") {
                // Validate locally so a typo is a usage error before any
                // network round trip.
                mode.parse::<minskew_engine::MaintenanceMode>()
                    .map_err(CliError::usage)?;
                request.push_str(&format!(" MODE {mode}"));
            }
            request
        }
        "snapshot" => {
            let op = req(opts, "op")?;
            if !op.eq_ignore_ascii_case("save") && !op.eq_ignore_ascii_case("load") {
                return Err(CliError::usage(format!(
                    "--op must be save or load, got {op:?}"
                )));
            }
            format!(
                "SNAPSHOT {} {} {}",
                req(opts, "name")?,
                op.to_ascii_uppercase(),
                req(opts, "path")?
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown catalog action {other:?} (want ping|list|create|drop|insert|delete|\
                 analyze|estimate|stats|maintain|snapshot|shutdown)"
            )))
        }
    };
    report(&round_trip(addr, &request)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_maps_error_codes_to_exit_kinds() {
        for (reply, kind) in [
            ("ERR 2 usage: nope", ErrorKind::Usage),
            ("ERR 3 io: gone", ErrorKind::Io),
            ("ERR 4 parse", ErrorKind::Parse),
            ("ERR 5 corrupt", ErrorKind::CorruptStats),
            ("ERR 6 build", ErrorKind::Build),
            ("ERR 99 weird", ErrorKind::Usage),
        ] {
            let e = report(reply).expect_err(reply);
            assert_eq!(e.kind, kind, "{reply}");
        }
        assert!(report("OK pong").is_ok());
        assert!(report("garbage").is_err());
    }

    #[test]
    fn rect_tokens_round_trip() {
        assert_eq!(rect_tokens("0, 1 ,2.5,3").expect("valid"), "0 1 2.5 3");
        assert!(rect_tokens("0,1,2").is_err());
        assert!(rect_tokens("a,b,c,d").is_err());
    }
}
