//! `minskew serve` — the TCP serving front-end — and `minskew catalog`,
//! its line-protocol client.
//!
//! `serve` hosts a [`SpatialCatalog`] behind the engine's zero-dependency
//! line protocol (see `minskew_engine::serve`); `catalog` is a one-shot
//! client that sends a single request and maps `ERR <code>` replies onto
//! the CLI's exit-code taxonomy, so scripts talk to a running server with
//! the same failure classes as the offline subcommands.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use minskew_data::atomic::write_atomic;
use minskew_data::read_rects_csv;
use minskew_engine::{serve, ServeOptions, SpatialCatalog, StatsTechnique, TableOptions};

use crate::{num, req, CliError, ErrorKind, Flags};

fn parse_technique(value: &str) -> Result<StatsTechnique, CliError> {
    match value {
        "min-skew" | "minskew" => Ok(StatsTechnique::MinSkew),
        "equi-area" => Ok(StatsTechnique::EquiArea),
        "equi-count" => Ok(StatsTechnique::EquiCount),
        "uniform" => Ok(StatsTechnique::Uniform),
        other => Err(CliError::usage(format!(
            "unknown technique {other:?} (want min-skew|equi-area|equi-count|uniform)"
        ))),
    }
}

fn table_options(opts: &Flags) -> Result<TableOptions, CliError> {
    let mut options = TableOptions::default();
    options.analyze.buckets = num(opts, "buckets", options.analyze.buckets)?;
    options.shards = num(opts, "shards", 1usize)?;
    if let Some(t) = opts.get("technique") {
        options.analyze.technique = parse_technique(t)?;
    }
    Ok(options)
}

/// `minskew serve [--addr A] [--port-file F] [--input data.csv]
/// [--table NAME] [--buckets B] [--shards S] [--technique T]`.
///
/// Blocks until a client sends `SHUTDOWN`, then dumps the server's metrics
/// registry to stdout.
pub(crate) fn serve_cmd(opts: &Flags) -> Result<(), CliError> {
    let addr = opts.get("addr").map_or("127.0.0.1:0", String::as_str);
    let options = table_options(opts)?;
    let catalog = Arc::new(SpatialCatalog::new());
    if let Some(path) = opts.get("input") {
        let name = opts.get("table").map_or("main", String::as_str);
        let data =
            read_rects_csv(path).map_err(|e| CliError::from_csv(&format!("reading {path}"), e))?;
        let entry = catalog
            .create(name, options)
            .map_err(|e| CliError::usage(e.to_string()))?;
        let mut table = entry.table();
        for r in data.rects() {
            table.insert(*r);
        }
        table.analyze();
        println!(
            "table {name:?}: {} rects, {} buckets, {} shard(s)",
            data.len(),
            table.stats_diagnostics().achieved_buckets,
            table.current_snapshot().num_shards(),
        );
    }
    let handle = serve(
        catalog,
        ServeOptions {
            addr: addr.to_string(),
            table_options: options,
            max_batch: num(opts, "max-batch", 4096usize)?,
        },
    )
    .map_err(|e| CliError::new(ErrorKind::Io, format!("binding {addr}: {e}")))?;
    let bound = handle.addr();
    println!("listening on {bound}");
    if let Some(port_file) = opts.get("port-file") {
        write_atomic(Path::new(port_file), format!("{bound}\n").as_bytes())
            .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {port_file}: {e}")))?;
    }
    let metrics = handle.join();
    print!("{}", metrics.to_text());
    Ok(())
}

/// Parses a reply's first line as an `OK <k>` frame header (tolerating an
/// optional `TID=<token> ` echo), returning `k`.
fn framed_count(line: &str) -> Option<usize> {
    let line = match line.strip_prefix("TID=") {
        Some(rest) => rest.split_once(' ').map_or(line, |(_, tail)| tail),
        None => line,
    };
    line.strip_prefix("OK ")?.trim().parse().ok()
}

/// Sends one request line and reads the reply: one line, plus — when
/// `framed` and the first line is an `OK <k>` frame header — the `k`
/// payload lines that follow (`FLIGHT` / `METRICS` framing).
fn round_trip(addr: &str, request: &str, framed: bool) -> Result<String, CliError> {
    let io_err =
        |what: &str, e: std::io::Error| CliError::new(ErrorKind::Io, format!("{what} {addr}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connecting to", e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| io_err("configuring", e))?;
    stream
        .write_all(format!("{request}\n").as_bytes())
        .map_err(|e| io_err("writing to", e))?;
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .map_err(|e| io_err("reading from", e))?;
    if first.is_empty() {
        return Err(CliError::new(
            ErrorKind::Io,
            format!("server at {addr} closed the connection without replying"),
        ));
    }
    let mut reply = first.trim_end_matches(['\n', '\r']).to_string();
    if framed {
        if let Some(k) = framed_count(&reply) {
            for _ in 0..k {
                let mut line = String::new();
                reader
                    .read_line(&mut line)
                    .map_err(|e| io_err("reading from", e))?;
                if line.is_empty() {
                    return Err(CliError::new(
                        ErrorKind::Io,
                        format!("server at {addr} closed the connection mid-frame"),
                    ));
                }
                reply.push('\n');
                reply.push_str(line.trim_end_matches(['\n', '\r']));
            }
        }
    }
    Ok(reply)
}

/// Maps a protocol reply onto the exit-code taxonomy: `OK`'s payload goes
/// to stdout; `ERR <code> <msg>` becomes a [`CliError`] of the matching
/// kind, so the process exits with the server's error code.
fn report(reply: &str) -> Result<(), CliError> {
    if let Some(payload) = reply.strip_prefix("OK") {
        println!("{}", payload.trim_start());
        return Ok(());
    }
    let Some(rest) = reply.strip_prefix("ERR ") else {
        return Err(CliError::new(
            ErrorKind::Io,
            format!("malformed server reply {reply:?}"),
        ));
    };
    let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
    let kind = match code {
        "3" => ErrorKind::Io,
        "4" => ErrorKind::Parse,
        "5" => ErrorKind::CorruptStats,
        "6" => ErrorKind::Build,
        _ => ErrorKind::Usage,
    };
    Err(CliError::new(kind, format!("server: {message}")))
}

/// [`report`] for framed (`OK <k>` + `k` lines) replies: the count line is
/// protocol framing, so only the payload lines reach stdout. A closed
/// stdout (`... | head`, `... | grep -q`) is a normal end of consumption,
/// not an error — the write is allowed to fail silently.
fn report_framed(reply: &str) -> Result<(), CliError> {
    use std::io::Write;
    if reply.starts_with("OK") {
        if let Some((_, body)) = reply.split_once('\n') {
            let _ = writeln!(std::io::stdout(), "{body}");
        }
        return Ok(());
    }
    report(reply)
}

/// Turns a `x1,y1,x2,y2` flag value into four protocol tokens.
fn rect_tokens(s: &str) -> Result<String, CliError> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!("expected x1,y1,x2,y2, got {s:?}")));
    }
    for p in &parts {
        p.parse::<f64>()
            .map_err(|e| CliError::usage(format!("bad coordinate {p:?}: {e}")))?;
    }
    Ok(parts.join(" "))
}

/// `minskew catalog <action> --addr HOST:PORT ...` — one-shot client.
///
/// With `--tid TOKEN`, the request carries a `TID=<token>` prefix and the
/// reply's echo is verified and stripped before reporting.
pub(crate) fn catalog_cmd(action: &str, opts: &Flags) -> Result<(), CliError> {
    let addr = req(opts, "addr")?;
    // FLIGHT and METRICS replies are `OK <k>` + k payload lines.
    let framed = matches!(action, "flight" | "metrics");
    let request = match action {
        "ping" => String::from("PING"),
        "list" => String::from("TABLES"),
        "shutdown" => String::from("SHUTDOWN"),
        "create" => {
            let mut request = format!("CREATE {}", req(opts, "name")?);
            for key in ["buckets", "shards", "technique"] {
                if let Some(value) = opts.get(key) {
                    request.push_str(&format!(" {key}={value}"));
                }
            }
            request
        }
        "drop" => format!("DROP {}", req(opts, "name")?),
        "insert" => format!(
            "INSERT {} {}",
            req(opts, "name")?,
            rect_tokens(req(opts, "rect")?)?
        ),
        "delete" => format!("DELETE {} {}", req(opts, "name")?, req(opts, "id")?),
        "analyze" => format!("ANALYZE {}", req(opts, "name")?),
        "estimate" => format!(
            "ESTIMATE {} {}",
            req(opts, "name")?,
            rect_tokens(req(opts, "query")?)?
        ),
        "explain" => format!(
            "EXPLAIN {} {}",
            req(opts, "name")?,
            rect_tokens(req(opts, "query")?)?
        ),
        "flight" => {
            let mut request = String::from("FLIGHT");
            if let Some(name) = opts.get("name") {
                request.push_str(&format!(" {name}"));
            }
            if let Some(limit) = opts.get("limit") {
                limit
                    .parse::<usize>()
                    .map_err(|e| CliError::usage(format!("bad --limit {limit:?}: {e}")))?;
                request.push_str(&format!(" {limit}"));
            }
            request
        }
        "metrics" => {
            let mut request = String::from("METRICS");
            if let Some(name) = opts.get("name") {
                request.push_str(&format!(" {name}"));
            }
            if let Some(format) = opts.get("format") {
                if format != "json" && format != "text" {
                    return Err(CliError::usage(format!(
                        "--format must be json or text, got {format:?}"
                    )));
                }
                request.push_str(&format!(" {format}"));
            }
            request
        }
        "stats" => match opts.get("name") {
            Some(name) => format!("STATS {name}"),
            None => String::from("STATS"),
        },
        "maintain" => {
            let mut request = format!("MAINTAIN {}", req(opts, "name")?);
            if let Some(mode) = opts.get("mode") {
                // Validate locally so a typo is a usage error before any
                // network round trip.
                mode.parse::<minskew_engine::MaintenanceMode>()
                    .map_err(CliError::usage)?;
                request.push_str(&format!(" MODE {mode}"));
            }
            request
        }
        "snapshot" => {
            let op = req(opts, "op")?;
            if !op.eq_ignore_ascii_case("save") && !op.eq_ignore_ascii_case("load") {
                return Err(CliError::usage(format!(
                    "--op must be save or load, got {op:?}"
                )));
            }
            format!(
                "SNAPSHOT {} {} {}",
                req(opts, "name")?,
                op.to_ascii_uppercase(),
                req(opts, "path")?
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown catalog action {other:?} (want ping|list|create|drop|insert|delete|\
                 analyze|estimate|explain|stats|flight|metrics|maintain|snapshot|shutdown)"
            )))
        }
    };
    let tid = opts.get("tid");
    if let Some(t) = tid {
        let valid = !t.is_empty()
            && t.len() <= 64
            && t.bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
        if !valid {
            return Err(CliError::usage(format!(
                "bad --tid {t:?} (want 1-64 chars of [A-Za-z0-9._-])"
            )));
        }
    }
    let request = match tid {
        Some(t) => format!("TID={t} {request}"),
        None => request,
    };
    let mut reply = round_trip(addr, &request, framed)?;
    if let Some(t) = tid {
        let echo = format!("TID={t} ");
        match reply.strip_prefix(&echo) {
            Some(rest) => reply = rest.to_string(),
            None => {
                return Err(CliError::new(
                    ErrorKind::Io,
                    format!("server reply is missing the trace-id echo: {reply:?}"),
                ))
            }
        }
    }
    if framed {
        report_framed(&reply)
    } else {
        report(&reply)
    }
}

/// Extracts the first number following `"key":` in a JSON document emitted
/// by this workspace's hand-written writers (`STATS` replies, the
/// `minskew-obs/v1` export). Not a general JSON parser: `null` and absent
/// keys are both `None`.
fn json_field(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One polled observation for `minskew top`.
struct TopSample {
    requests: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
    connections: f64,
    cache_hits: f64,
    cache_misses: f64,
    staleness: Option<f64>,
}

/// Polls one `top` sample: the bare `STATS` document always, plus the
/// table's `METRICS` registry and `STATS` row when `--name` was given.
fn top_sample(addr: &str, table: Option<&str>) -> Result<TopSample, CliError> {
    let stats = round_trip(addr, "STATS", false)?;
    let mut sample = TopSample {
        requests: json_field(&stats, "count").unwrap_or(0.0),
        p50_ns: json_field(&stats, "p50").unwrap_or(0.0),
        p95_ns: json_field(&stats, "p95").unwrap_or(0.0),
        p99_ns: json_field(&stats, "p99").unwrap_or(0.0),
        connections: json_field(&stats, "active_connections").unwrap_or(0.0),
        cache_hits: 0.0,
        cache_misses: 0.0,
        staleness: None,
    };
    if let Some(name) = table {
        let metrics = round_trip(addr, &format!("METRICS {name} json"), true)?;
        sample.cache_hits = json_field(&metrics, "engine.cache.hits").unwrap_or(0.0);
        sample.cache_misses = json_field(&metrics, "engine.cache.misses").unwrap_or(0.0);
        let tstats = round_trip(addr, &format!("STATS {name}"), false)?;
        if tstats.starts_with("OK") {
            sample.staleness = json_field(&tstats, "staleness");
        }
    }
    Ok(sample)
}

/// `minskew top --addr HOST:PORT [--name TABLE] [--interval SECS]
/// [--iterations N]` — a live metrics dashboard over the `STATS` and
/// `METRICS` verbs.
///
/// Each tick polls the server and renders one aligned row: queries/second
/// and cache-hit rate are per-interval deltas; the latency quantiles are
/// the server's cumulative `serve.request_ns` upper bounds. `--iterations
/// 0` (the default is 0 = forever) polls until interrupted.
pub(crate) fn top_cmd(opts: &Flags) -> Result<(), CliError> {
    let addr = req(opts, "addr")?;
    let table = opts.get("name").map(String::as_str);
    let interval = num(opts, "interval", 2.0f64)?;
    if !interval.is_finite() || interval <= 0.0 {
        return Err(CliError::usage(format!(
            "--interval must be a positive number of seconds, got {interval}"
        )));
    }
    let iterations = num(opts, "iterations", 0usize)?;
    println!(
        "{:>10}  {:>9}  {:>9}  {:>9}  {:>6}  {:>7}  {:>9}",
        "req/s", "p50_us", "p95_us", "p99_us", "conns", "cache%", "staleness"
    );
    let mut prev = top_sample(addr, table)?;
    let mut tick = 0usize;
    loop {
        std::thread::sleep(Duration::from_secs_f64(interval));
        let cur = top_sample(addr, table)?;
        let qps = (cur.requests - prev.requests).max(0.0) / interval;
        let hits = (cur.cache_hits - prev.cache_hits).max(0.0);
        let misses = (cur.cache_misses - prev.cache_misses).max(0.0);
        let cache = if hits + misses > 0.0 {
            format!("{:.1}", 100.0 * hits / (hits + misses))
        } else {
            String::from("-")
        };
        let staleness = cur
            .staleness
            .map_or_else(|| String::from("-"), |s| format!("{s:.3}"));
        println!(
            "{:>10.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>6}  {:>7}  {:>9}",
            qps,
            cur.p50_ns / 1e3,
            cur.p95_ns / 1e3,
            cur.p99_ns / 1e3,
            cur.connections as u64,
            cache,
            staleness
        );
        prev = cur;
        tick += 1;
        if iterations > 0 && tick >= iterations {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_maps_error_codes_to_exit_kinds() {
        for (reply, kind) in [
            ("ERR 2 usage: nope", ErrorKind::Usage),
            ("ERR 3 io: gone", ErrorKind::Io),
            ("ERR 4 parse", ErrorKind::Parse),
            ("ERR 5 corrupt", ErrorKind::CorruptStats),
            ("ERR 6 build", ErrorKind::Build),
            ("ERR 99 weird", ErrorKind::Usage),
        ] {
            let e = report(reply).expect_err(reply);
            assert_eq!(e.kind, kind, "{reply}");
        }
        assert!(report("OK pong").is_ok());
        assert!(report("garbage").is_err());
    }

    #[test]
    fn rect_tokens_round_trip() {
        assert_eq!(rect_tokens("0, 1 ,2.5,3").expect("valid"), "0 1 2.5 3");
        assert!(rect_tokens("0,1,2").is_err());
        assert!(rect_tokens("a,b,c,d").is_err());
    }

    #[test]
    fn framed_count_reads_headers_with_and_without_echo() {
        assert_eq!(framed_count("OK 3"), Some(3));
        assert_eq!(framed_count("OK 0"), Some(0));
        assert_eq!(framed_count("TID=abc OK 7"), Some(7));
        assert_eq!(framed_count("OK pong"), None);
        assert_eq!(framed_count("ERR 2 nope"), None);
        assert_eq!(framed_count("TID=abc ERR 2 nope"), None);
    }

    #[test]
    fn json_field_extracts_from_both_json_dialects() {
        // Server STATS style (no space after the colon).
        let stats = r#"OK {"tables":2,"active_connections":1,"request_ns":{"count":14,"p50":2048,"p95":4096,"p99":8192}}"#;
        assert_eq!(json_field(stats, "tables"), Some(2.0));
        assert_eq!(json_field(stats, "count"), Some(14.0));
        assert_eq!(json_field(stats, "p99"), Some(8192.0));
        // minskew-obs/v1 style (space after the colon).
        let obs = "{\n  \"counters\": {\n    \"engine.cache.hits\": 12\n  }\n}";
        assert_eq!(json_field(obs, "engine.cache.hits"), Some(12.0));
        // Null and absent fields are both None.
        assert_eq!(json_field(r#"{"staleness":null}"#, "staleness"), None);
        assert_eq!(json_field(stats, "missing"), None);
    }

    #[test]
    fn report_framed_prints_body_and_maps_errors() {
        assert!(report_framed("OK 0").is_ok());
        assert!(report_framed("OK 2\nline1\nline2").is_ok());
        assert_eq!(
            report_framed("ERR 2 usage: nope").unwrap_err().kind,
            ErrorKind::Usage
        );
    }
}
