//! `minskew` — command-line driver for the spatial selectivity estimation
//! library.
//!
//! Subcommands:
//!
//! ```text
//! minskew generate --kind charminar|road|synthetic|uniform|points
//!                  [--n N] [--seed S] --out data.csv
//! minskew build    --input data.csv --technique min-skew|equi-area|
//!                  equi-count|rtree|uniform [--buckets B] [--regions R]
//!                  [--refinements K] [--threads T] --out stats.bin
//! minskew estimate --stats stats.bin --query x1,y1,x2,y2 [--input data.csv]
//!                  [--trace]
//! minskew explain  --stats stats.bin --query x1,y1,x2,y2 [--input data.csv]
//!                  [--terms N]
//! minskew evaluate --input data.csv [--buckets B] [--qsize F]
//!                  [--queries N] [--seed S]
//! minskew tune     --input data.csv [--buckets B] [--queries N]
//!                  [--out stats.bin]
//! minskew render   --input data.csv --technique <t> [--buckets B]
//!                  --out out.svg
//! minskew stats    --input data.csv [--buckets B] [--queries N]
//!                  [--qsize F] [--seed S] [--json]
//! minskew maintain --input data.csv [--mode off|reanalyze|refine]
//!                  [--buckets B] [--rounds R] [--queries N] [--qsize F]
//!                  [--seed S]
//! minskew snapshot save --input data.csv [--technique <t>] [--buckets B]
//!                  --out stats.snap   (or --stats legacy.bin to migrate)
//! minskew snapshot verify --snapshot stats.snap
//! minskew snapshot load --snapshot stats.snap [--input data.csv]
//! minskew serve    [--addr A] [--port-file F] [--input data.csv]
//!                  [--table NAME] [--buckets B] [--shards S] [--technique T]
//! minskew catalog  <action> --addr HOST:PORT [action flags]
//! minskew top      --addr HOST:PORT [--name TABLE] [--interval SECS]
//!                  [--iterations N]
//! ```
//!
//! `build --trace` prints the Min-Skew per-split audit trail; `estimate
//! --trace` prints the query's lifecycle spans; `stats` drives a serving
//! workload through the query engine and dumps the metrics registry
//! (human-readable, or the `minskew-obs/v1` JSON document with `--json`).
//!
//! Dataset files are `x1,y1,x2,y2` CSV; statistics files use the library's
//! versioned catalog codec.
//!
//! Failures never panic: every error is mapped to a category with a stable
//! process exit code, so scripts can branch on the failure class:
//!
//! | exit code | meaning |
//! |---|---|
//! | 0 | success |
//! | 2 | usage error (bad flags, unknown subcommand) |
//! | 3 | I/O error (missing/unwritable file) |
//! | 4 | malformed dataset (CSV parse error) |
//! | 5 | corrupt statistics file (codec or snapshot container rejected it) |
//! | 6 | statistics construction failed (empty data, bad budget, …) |
//!
//! `snapshot verify` maps every container-integrity failure (bad magic,
//! checksum mismatch, truncation, malformed payload) to exit code 5, so
//! health checks can distinguish "the snapshot is damaged" from plain I/O
//! trouble (exit 3).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod serve;

use std::collections::HashMap;
use std::process::ExitCode;

use minskew_core::{
    build_uniform, simd_level, try_build_equi_area, try_build_equi_count,
    try_build_rtree_partitioning_default, BuildError, FractalEstimator, IndexScratch,
    MinSkewBuildTrace, MinSkewBuilder, SamplingEstimator, SpatialEstimator, SpatialHistogram,
};
use minskew_core::{FormatVersion, SnapshotInfo};
use minskew_data::atomic::write_atomic;
use minskew_data::{read_rects_csv, write_rects_csv, CsvError, Dataset};
use minskew_datagen::{
    charminar_with, clustered_points, uniform_rects, ClusteredPointSpec, RoadNetworkSpec,
    SyntheticSpec,
};
use minskew_engine::{AnalyzeOptions, MaintenanceMode, RowId, SpatialTable, TableOptions};
use minskew_geom::Rect;
use minskew_workload::{evaluate_all, GroundTruth, QueryWorkload};

/// Failure category; the discriminant is the process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    /// Bad flags or unknown subcommand — exit code 2.
    Usage = 2,
    /// Underlying file I/O failed — exit code 3.
    Io = 3,
    /// A dataset file was malformed — exit code 4.
    Parse = 4,
    /// A statistics file failed to decode — exit code 5.
    CorruptStats = 5,
    /// Histogram construction reported an error — exit code 6.
    Build = 6,
}

/// A categorised CLI failure: a message for humans, a kind for scripts.
#[derive(Debug)]
struct CliError {
    kind: ErrorKind,
    message: String,
}

impl CliError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> CliError {
        CliError {
            kind,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> CliError {
        CliError::new(ErrorKind::Usage, message)
    }

    fn exit_code(&self) -> ExitCode {
        ExitCode::from(self.kind as u8)
    }

    /// Categorises a CSV failure: lost files are I/O, bad rows are parse
    /// errors.
    fn from_csv(context: &str, e: CsvError) -> CliError {
        let kind = match &e {
            CsvError::Io(_) => ErrorKind::Io,
            CsvError::Parse(..) => ErrorKind::Parse,
        };
        CliError::new(kind, format!("{context}: {e}"))
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.message.fmt(f)
    }
}

impl From<BuildError> for CliError {
    fn from(e: BuildError) -> CliError {
        CliError::new(ErrorKind::Build, e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `minskew help` for usage");
            e.exit_code()
        }
    }
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage("missing subcommand"));
    };
    if cmd == "snapshot" {
        // `snapshot` takes an action word before its flags.
        let Some((action, rest)) = rest.split_first() else {
            return Err(CliError::usage(
                "snapshot needs an action: save, load, or verify",
            ));
        };
        let opts = parse_flags(rest)?;
        return snapshot_cmd(action, &opts);
    }
    if cmd == "catalog" {
        // `catalog` also takes an action word before its flags.
        let Some((action, rest)) = rest.split_first() else {
            return Err(CliError::usage(
                "catalog needs an action: ping, list, create, drop, insert, delete, \
                 analyze, estimate, explain, stats, flight, metrics, maintain, \
                 snapshot, or shutdown",
            ));
        };
        let opts = parse_flags(rest)?;
        return serve::catalog_cmd(action, &opts);
    }
    let opts = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => generate(&opts),
        "build" => build(&opts),
        "estimate" => estimate(&opts),
        "explain" => explain_cmd(&opts),
        "evaluate" => evaluate_cmd(&opts),
        "tune" => tune(&opts),
        "render" => render(&opts),
        "stats" => stats_cmd(&opts),
        "maintain" => maintain_cmd(&opts),
        "serve" => serve::serve_cmd(&opts),
        "top" => serve::top_cmd(&opts),
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown subcommand {other:?}"))),
    }
}

const USAGE: &str = "\
minskew — spatial selectivity estimation (Min-Skew, SIGMOD 1999)

  minskew generate --kind charminar|road|synthetic|uniform|points \\
                   [--n N] [--seed S] --out data.csv
  minskew build    --input data.csv --technique min-skew|equi-area|equi-count|rtree|uniform \\
                   [--buckets B] [--regions R] [--refinements K] [--threads T] [--trace] \\
                   --out stats.bin
                   (--threads: min-skew only; 1 = serial, 0 = all cores; output is
                    bit-identical at every setting. --trace prints the Min-Skew
                    per-split audit trail; tracing never changes the output bytes)
  minskew estimate --stats stats.bin --query x1,y1,x2,y2 [--input data.csv] [--trace]
  minskew explain  --stats stats.bin --query x1,y1,x2,y2 [--input data.csv] [--terms N]
                   (the estimate with its evidence: per-bucket contributions, pruning
                    counters, extension-rule inputs; the headline is bit-identical to
                    `estimate`'s indexed serving path, and the term sum reproduces it)
  minskew evaluate --input data.csv [--buckets B] [--qsize F] [--queries N] [--seed S]
  minskew tune     --input data.csv [--buckets B] [--queries N]
  minskew render   --input data.csv --technique T [--buckets B] [--regions R] --out out.svg
  minskew stats    --input data.csv [--buckets B] [--queries N] [--qsize F] [--seed S] [--json]
                   (drives a serving workload through the query engine, audits live
                    accuracy against exact counts, and dumps the metrics registry)
  minskew maintain --input data.csv [--mode off|reanalyze|refine] [--buckets B] \\
                   [--rounds R] [--queries N] [--qsize F] [--seed S]
                   (simulates data drift in rounds — hotspot inserts plus deletes — serves
                    a query workload, and runs one maintenance pass per round: audit the
                    live accuracy, then repair per --mode: off observes only, reanalyze
                    rebuilds, refine applies the bounded query-driven histogram repair)
  minskew snapshot save   --input data.csv [--technique T] [--buckets B] --out stats.snap
  minskew snapshot save   --stats legacy.bin --out stats.snap   (migrate a legacy file)
                   (builds or migrates statistics and installs them as a checksummed
                    snapshot via the crash-safe temp+fsync+rename protocol)
  minskew snapshot verify --snapshot stats.snap
                   (integrity check only: exit 0 and a summary, or exit 5 on corruption)
  minskew snapshot load   --snapshot stats.snap [--input data.csv]
                   (strict load by default: corruption is exit 5; with --input, runs the
                    engine's graceful recovery — quarantine + rebuild from the data)
  minskew serve    [--addr HOST:PORT] [--port-file F] [--input data.csv] [--table NAME] \\
                   [--buckets B] [--shards S] [--technique T] [--max-batch N]
                   (hosts a table catalog over the line protocol; --input preloads and
                    ANALYZEs one table; blocks until a client sends SHUTDOWN, then dumps
                    the server's metrics registry)
  minskew catalog  <action> --addr HOST:PORT [flags]
                   actions: ping | list | shutdown | stats [--name T]
                            create --name T [--buckets B] [--shards S] [--technique T]
                            drop --name T | analyze --name T
                            insert --name T --rect x1,y1,x2,y2 | delete --name T --id N
                            estimate --name T --query x1,y1,x2,y2
                            explain --name T --query x1,y1,x2,y2
                            flight [--name T] [--limit N]
                            metrics [--name T] [--format json|text]
                            maintain --name T [--mode off|reanalyze|refine]
                            snapshot --name T --op save|load --path P
                   (one-shot client; server ERR codes become the matching exit code.
                    any action takes --tid TOKEN: the request carries a TID=<token>
                    prefix, the reply echo is verified, and the token lands in the
                    server's flight records. flight drains the slow/wrong/sampled
                    query recorder — bare for the wire recorder, --name T for a
                    table's; metrics scrapes a registry live)
  minskew top      --addr HOST:PORT [--name TABLE] [--interval SECS] [--iterations N]
                   (live dashboard over STATS/METRICS: queries/sec, request-latency
                    quantiles, connections, per-interval cache-hit rate and staleness
                    for --name; --iterations 0 polls until interrupted)

exit codes: 0 ok, 2 usage, 3 I/O, 4 malformed dataset, 5 corrupt stats, 6 build failure
";

type Flags = HashMap<String, String>;

/// Flags that take no value: present means `true`.
const BOOL_FLAGS: &[&str] = &["trace", "json"];

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(CliError::usage(format!("expected --flag, got {flag:?}")));
        };
        if BOOL_FLAGS.contains(&name) {
            out.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?;
        out.insert(name.to_owned(), value.clone());
    }
    Ok(out)
}

fn flag_set(opts: &Flags, name: &str) -> bool {
    opts.contains_key(name)
}

fn req<'a>(opts: &'a Flags, name: &str) -> Result<&'a str, CliError> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("missing required flag --{name}")))
}

fn num<T: std::str::FromStr>(opts: &Flags, name: &str, default: T) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| CliError::usage(format!("bad value for --{name}: {e}"))),
    }
}

fn load(opts: &Flags) -> Result<Dataset, CliError> {
    let path = req(opts, "input")?;
    read_rects_csv(path).map_err(|e| CliError::from_csv(&format!("reading {path}"), e))
}

fn generate(opts: &Flags) -> Result<(), CliError> {
    let kind = req(opts, "kind")?;
    let out = req(opts, "out")?;
    let seed = num(opts, "seed", 0u64)?;
    let data = match kind {
        "charminar" => charminar_with(num(opts, "n", 40_000)?, seed),
        "road" => RoadNetworkSpec {
            segments: num(opts, "n", 414_442)?,
            ..RoadNetworkSpec::default()
        }
        .generate(seed),
        "synthetic" => SyntheticSpec::default()
            .with_n(num(opts, "n", 50_000)?)
            .generate(seed),
        "uniform" => uniform_rects(
            num(opts, "n", 50_000)?,
            Rect::new(0.0, 0.0, 100_000.0, 100_000.0),
            num(opts, "width", 100.0)?,
            num(opts, "height", 100.0)?,
            seed,
        ),
        "points" => clustered_points(
            &ClusteredPointSpec {
                n: num(opts, "n", 62_000)?,
                ..ClusteredPointSpec::default()
            },
            seed,
        ),
        other => return Err(CliError::usage(format!("unknown dataset kind {other:?}"))),
    };
    write_rects_csv(&data, out)
        .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {out}: {e}")))?;
    println!("wrote {} rectangles to {out}", data.len());
    Ok(())
}

fn build_technique(
    data: &Dataset,
    technique: &str,
    opts: &Flags,
) -> Result<SpatialHistogram, CliError> {
    Ok(build_technique_traced(data, technique, opts, false)?.0)
}

fn build_technique_traced(
    data: &Dataset,
    technique: &str,
    opts: &Flags,
    traced: bool,
) -> Result<(SpatialHistogram, Option<MinSkewBuildTrace>), CliError> {
    let buckets = num(opts, "buckets", 100usize)?;
    Ok(match technique {
        "min-skew" => {
            let mut b =
                MinSkewBuilder::try_new(buckets)?.try_regions(num(opts, "regions", 10_000)?)?;
            let k = num(opts, "refinements", 0usize)?;
            if k > 0 {
                b = b.try_progressive_refinements(k)?;
            }
            // Bit-identical at every thread count, so this is purely a
            // wall-clock knob (1 = serial, 0 = one worker per core).
            b = b.threads(num(opts, "threads", 1usize)?);
            if traced {
                // The traced build is byte-identical to the untraced one.
                let (hist, trace) = b.try_build_traced(data)?;
                (hist, Some(trace))
            } else {
                (b.try_build(data)?, None)
            }
        }
        "equi-area" => (try_build_equi_area(data, buckets)?, None),
        "equi-count" => (try_build_equi_count(data, buckets)?, None),
        "rtree" => (try_build_rtree_partitioning_default(data, buckets)?, None),
        "uniform" => (build_uniform(data), None),
        other => return Err(CliError::usage(format!("unknown technique {other:?}"))),
    })
}

fn print_build_trace(trace: &MinSkewBuildTrace) {
    println!(
        "build trace: {} splits over {} phase(s), final grid {}x{} -> final skew {:.3}",
        trace.splits.len(),
        trace.phases,
        trace.grid_side,
        trace.grid_side,
        trace.final_skew
    );
    for (i, s) in trace.splits.iter().enumerate() {
        println!(
            "  #{i:<4} phase {} bucket {:<4} {:?} @ {:<12.3} skew {:.3} -> {:.3}",
            s.phase, s.bucket, s.axis, s.coordinate, s.skew_before, s.skew_after
        );
    }
    if trace.build_ns > 0 {
        println!("build time: {:.3} ms", trace.build_ns as f64 / 1e6);
    }
}

fn build(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let technique = req(opts, "technique")?;
    let out = req(opts, "out")?;
    let traced = flag_set(opts, "trace");
    let (hist, trace) = build_technique_traced(&data, technique, opts, traced)?;
    std::fs::write(out, hist.to_bytes())
        .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {out}: {e}")))?;
    println!(
        "built {} with {} buckets ({} bytes) over {} rects -> {out}",
        hist.name(),
        hist.num_buckets(),
        hist.size_bytes(),
        data.len()
    );
    match &trace {
        Some(trace) => print_build_trace(trace),
        None if traced => println!(
            "(per-split tracing is Min-Skew-only; build time for every technique \
             is recorded under core.build.* in `minskew stats`)"
        ),
        None => {}
    }
    Ok(())
}

fn parse_query(s: &str) -> Result<Rect, CliError> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!(
            "query must be x1,y1,x2,y2, got {s:?}"
        )));
    }
    let mut v = [0.0; 4];
    for (slot, p) in v.iter_mut().zip(&parts) {
        *slot = p
            .trim()
            .parse()
            .map_err(|e| CliError::usage(format!("bad query coordinate {p:?}: {e}")))?;
    }
    Rect::try_new(v[0], v[1], v[2], v[3])
        .map_err(|e| CliError::usage(format!("bad query {s:?}: {e}")))
}

fn estimate(opts: &Flags) -> Result<(), CliError> {
    let trace = minskew_obs::Trace::new();
    let stats_path = req(opts, "stats")?;
    let hist = {
        let _span = trace.span("decode_stats");
        let bytes = std::fs::read(stats_path)
            .map_err(|e| CliError::new(ErrorKind::Io, format!("reading {stats_path}: {e}")))?;
        SpatialHistogram::from_bytes(&bytes).map_err(|e| {
            CliError::new(
                ErrorKind::CorruptStats,
                format!("decoding {stats_path}: {e}"),
            )
        })?
    };
    let query = parse_query(req(opts, "query")?)?;
    // Serve through the bucket index — bit-identical to the linear scan.
    let mut scratch = IndexScratch::new();
    let est = {
        let _span = trace.span("estimate");
        hist.estimate_count_indexed(&query, &mut scratch)
    };
    let selectivity = if hist.input_len() == 0 {
        0.0
    } else {
        est / hist.input_len() as f64
    };
    println!(
        "{}: estimated |Q| = {est:.1} (selectivity {selectivity:.5})",
        hist.name(),
    );
    if opts.contains_key("input") {
        let _span = trace.span("exact_count");
        let data = load(opts)?;
        println!("exact:    |Q| = {}", data.count_intersecting(&query));
    }
    if flag_set(opts, "trace") {
        if minskew_obs::enabled() {
            println!("trace:");
            for e in trace.events() {
                println!(
                    "  {:<14} start {:>10.3} us  dur {:>10.3} us",
                    e.name,
                    e.start_ns as f64 / 1e3,
                    e.dur_ns as f64 / 1e3
                );
            }
        } else {
            println!("trace: unavailable (minskew-obs compiled with the `noop` feature)");
        }
    }
    Ok(())
}

/// `minskew explain` — the offline EXPLAIN surface: the estimate plus the
/// evidence behind it (per-bucket terms, pruning counters, extension-rule
/// inputs), computed through the same indexed serving path as `estimate`.
fn explain_cmd(opts: &Flags) -> Result<(), CliError> {
    let stats_path = req(opts, "stats")?;
    let bytes = std::fs::read(stats_path)
        .map_err(|e| CliError::new(ErrorKind::Io, format!("reading {stats_path}: {e}")))?;
    let hist = SpatialHistogram::from_bytes(&bytes).map_err(|e| {
        CliError::new(
            ErrorKind::CorruptStats,
            format!("decoding {stats_path}: {e}"),
        )
    })?;
    let query = parse_query(req(opts, "query")?)?;
    let mut scratch = IndexScratch::new();
    let trace = hist.estimate_count_explained(&query, &mut scratch);
    let headline = hist.estimate_count_indexed(&query, &mut scratch);
    let estimate = trace.estimate();
    println!(
        "{}: estimated |Q| = {estimate:.1} (rule {}, {} buckets, N = {})",
        trace.technique,
        trace.rule.label(),
        trace.num_buckets,
        hist.input_len(),
    );
    println!(
        "serving path: indexed estimate {headline} — {}",
        if headline.to_bits() == estimate.to_bits() {
            "bit-identical"
        } else {
            "MISMATCH (file a bug)"
        }
    );
    let k = &trace.kernel;
    println!(
        "pruning: {} block(s) ({} pruned), {} quad(s) tested ({} pruned), \
         {} bucket(s) classified",
        k.prune.blocks,
        k.prune.blocks_pruned,
        k.prune.quads_tested,
        k.prune.quads_pruned,
        k.prune.buckets_classified,
    );
    println!(
        "terms: {} contributing; ordered sum {} — {}",
        k.terms.len(),
        k.term_sum(),
        if k.term_sum().to_bits() == estimate.to_bits() {
            "reproduces the estimate exactly"
        } else {
            "DOES NOT reproduce the estimate"
        }
    );
    let limit = num(opts, "terms", 10usize)?;
    for t in k.terms.iter().take(limit) {
        println!(
            "  bucket {:<5} count {:>12.1}  ext ({:.4}, {:.4})  fraction {:.5}  -> {}",
            t.bucket, t.count, t.ex, t.ey, t.fraction, t.term
        );
    }
    if k.terms.len() > limit {
        println!(
            "  ... {} more term(s); raise --terms to see them",
            k.terms.len() - limit
        );
    }
    if opts.contains_key("input") {
        let data = load(opts)?;
        println!("exact:    |Q| = {}", data.count_intersecting(&query));
    }
    Ok(())
}

fn stats_cmd(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let buckets = num(opts, "buckets", 100usize)?;
    let queries = num(opts, "queries", 1_000usize)?;
    let qsize = num(opts, "qsize", 0.05f64)?;
    let seed = num(opts, "seed", 1u64)?;
    let mut table = SpatialTable::try_new(TableOptions {
        analyze: AnalyzeOptions {
            buckets,
            ..AnalyzeOptions::default()
        },
        // A short demonstration workload: sample densely so the latency
        // histograms actually fill.
        metrics_sampling: 4,
        ..TableOptions::default()
    })?;
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    let workload = QueryWorkload::generate(&data, qsize, queries, seed);
    for q in workload.queries() {
        let _ = table.estimate(q);
    }
    // Serve the same workload once more through the batch path (and, for
    // the single-query path, through the now-warm cache).
    table.estimate_batch(workload.queries());
    for q in workload.queries() {
        let _ = table.estimate(q);
    }
    let report = table.audit_accuracy();
    // The engine publishes per-table metrics; builders and the parallel
    // runtime publish to the process-wide registry. Merge for one view.
    let mut snap = table.metrics();
    snap.merge(minskew_obs::Registry::global().snapshot());
    if flag_set(opts, "json") {
        println!("{}", snap.to_json());
    } else {
        println!(
            "served {} queries twice (+ once batched) over {} rects, {buckets} buckets",
            workload.len(),
            data.len()
        );
        if let Some(stats) = table.current_snapshot().stats() {
            let fp = stats.histogram().serving_footprint();
            println!(
                "serving footprint: summary={} ext_table={} index={} plane={} \
                 total={} bytes (kernel: {})",
                fp.summary,
                fp.ext_table,
                fp.index,
                fp.plane,
                fp.total(),
                simd_level()
            );
        }
        if let Some(report) = &report {
            println!("{report}");
        }
        print!("{}", snap.to_text());
    }
    Ok(())
}

fn maintain_cmd(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let buckets = num(opts, "buckets", 100usize)?;
    let rounds = num(opts, "rounds", 3usize)?;
    let queries = num(opts, "queries", 200usize)?;
    let qsize = num(opts, "qsize", 0.05f64)?;
    let seed = num(opts, "seed", 1u64)?;
    let mode = match opts.get("mode").map(String::as_str) {
        None => MaintenanceMode::OnlineRefine,
        Some(m) => m.parse::<MaintenanceMode>().map_err(CliError::usage)?,
    };
    let mut table = SpatialTable::try_new(TableOptions {
        analyze: AnalyzeOptions {
            buckets,
            ..AnalyzeOptions::default()
        },
        maintenance: mode,
        // Maintenance is the demonstration here; keep auto-ANALYZE out of
        // the way so every repair is attributable to `maintain`, and
        // engage repair as soon as the audited error leaves the band a
        // fresh build achieves (~0.1) rather than only on catastrophic
        // drift — the default 0.5 would let this short demo end without
        // ever showing a repair.
        auto_analyze_threshold: None,
        accuracy_drift_threshold: 0.15,
        ..TableOptions::default()
    })?;
    let mut resident: std::collections::VecDeque<RowId> =
        data.rects().iter().map(|r| table.insert(*r)).collect();
    table.analyze();
    let bbox = data
        .rects()
        .iter()
        .fold(None::<Rect>, |acc, r| Some(acc.map_or(*r, |b| b.union(r))))
        .ok_or_else(|| CliError::new(ErrorKind::Build, "dataset is empty"))?;
    println!(
        "maintaining {} rects, {buckets} buckets, mode={mode}: \
         {rounds} round(s) of drift, {queries} queries each",
        data.len()
    );
    let churn = (data.len() / 10).max(1);
    for round in 0..rounds {
        // Drift: a hotspot of new rectangles parks in a corner that moves
        // every round, while the oldest resident rows disappear.
        let fx = 0.1 + 0.8 * ((round % 3) as f64 / 2.0);
        let (cx, cy) = (
            bbox.lo.x + fx * bbox.width(),
            bbox.lo.y + (1.0 - fx) * bbox.height(),
        );
        let side = (bbox.width().min(bbox.height()) / 200.0).max(1e-9);
        for i in 0..churn {
            let jitter = (i % 17) as f64 * side * 0.1;
            let id = table.insert(Rect::new(
                cx + jitter,
                cy + jitter,
                cx + jitter + side,
                cy + jitter + side,
            ));
            resident.push_back(id);
        }
        for _ in 0..churn.min(resident.len().saturating_sub(1)) {
            if let Some(id) = resident.pop_front() {
                table.delete(id);
            }
        }
        let workload = QueryWorkload::generate(&data, qsize, queries, seed + round as u64);
        for q in workload.queries() {
            let _ = table.estimate(q);
        }
        let staleness = table.stats_staleness().unwrap_or(f64::NAN);
        let report = table.maintain();
        println!("round {}: staleness {staleness:.3}; {report}", round + 1);
    }
    println!(
        "final: {} rows, staleness {:.3}, mode={}",
        table.len(),
        table.stats_staleness().unwrap_or(f64::NAN),
        table.maintenance_mode()
    );
    Ok(())
}

fn evaluate_cmd(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let buckets = num(opts, "buckets", 100usize)?;
    let qsize = num(opts, "qsize", 0.05f64)?;
    let queries = num(opts, "queries", 1_000usize)?;
    let seed = num(opts, "seed", 1u64)?;

    println!(
        "evaluating 7 techniques: {} rects, {buckets} buckets, QSize {:.0}%, {queries} queries",
        data.len(),
        qsize * 100.0
    );
    let truth = GroundTruth::index(&data);
    let minskew = MinSkewBuilder::try_new(buckets)?
        .try_regions(num(opts, "regions", 10_000)?)?
        .try_build(&data)?;
    let equi_count = try_build_equi_count(&data, buckets)?;
    let equi_area = try_build_equi_area(&data, buckets)?;
    let rtree = try_build_rtree_partitioning_default(&data, buckets)?;
    let sample = SamplingEstimator::build(&data, buckets, seed);
    let fractal = FractalEstimator::build(&data);
    let uniform = build_uniform(&data);
    let roster: Vec<&dyn SpatialEstimator> = vec![
        &minskew,
        &equi_count,
        &equi_area,
        &rtree,
        &sample,
        &fractal,
        &uniform,
    ];
    let workload = QueryWorkload::generate(&data, qsize, queries, seed);
    for report in evaluate_all(&roster, &workload, &truth) {
        println!("{report}");
    }
    Ok(())
}

fn tune(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let buckets = num(opts, "buckets", 100usize)?;
    let mut tune_opts = minskew_workload::TuneOptions::for_buckets(buckets);
    tune_opts.queries_per_size = num(opts, "queries", 500usize)?;
    println!(
        "tuning Min-Skew over {} rects, {buckets} buckets ({} configurations)...",
        data.len(),
        tune_opts.region_ladder.len() + tune_opts.refinement_ladder.len() - 1
    );
    let tuned = minskew_workload::tune_min_skew(&data, buckets, &tune_opts);
    for t in &tuned.trials {
        println!(
            "  regions {:>7}  refinements {}  ->  {:>5.1}%{}",
            t.regions,
            t.refinements,
            t.error * 100.0,
            if *t == tuned.best { "  <- chosen" } else { "" }
        );
    }
    if let Some(out) = opts.get("out") {
        std::fs::write(out, tuned.histogram.to_bytes())
            .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {out}: {e}")))?;
        println!("wrote tuned histogram to {out}");
    }
    Ok(())
}

fn snapshot_cmd(action: &str, opts: &Flags) -> Result<(), CliError> {
    match action {
        "save" => snapshot_save(opts),
        "verify" => snapshot_verify(opts),
        "load" => snapshot_load(opts),
        other => Err(CliError::usage(format!(
            "unknown snapshot action {other:?} (expected save, load, or verify)"
        ))),
    }
}

fn describe_snapshot(info: &SnapshotInfo) -> String {
    format!(
        "{} snapshot: {} ({} buckets, N = {}, {} section(s), {} bytes)",
        match info.version {
            FormatVersion::Container => "v1",
            FormatVersion::Legacy => "legacy",
        },
        info.technique,
        info.buckets,
        info.input_len,
        info.sections,
        info.total_bytes,
    )
}

/// `snapshot save`: build statistics from a dataset (or re-seal an existing
/// statistics file, migrating legacy bytes to the container format) and
/// install them at `--out` through the crash-safe atomic write protocol.
fn snapshot_save(opts: &Flags) -> Result<(), CliError> {
    let out = req(opts, "out")?;
    let hist = if let Some(stats_path) = opts.get("stats") {
        // Migration path: accept container or legacy bytes.
        let bytes = std::fs::read(stats_path)
            .map_err(|e| CliError::new(ErrorKind::Io, format!("reading {stats_path}: {e}")))?;
        let (hist, info) = SpatialHistogram::from_snapshot_bytes(&bytes).map_err(|e| {
            CliError::new(
                ErrorKind::CorruptStats,
                format!("decoding {stats_path}: {e}"),
            )
        })?;
        if info.version == FormatVersion::Legacy {
            println!("migrating legacy statistics file {stats_path} to the snapshot container");
        }
        hist
    } else {
        let data = load(opts)?;
        let technique = opts.get("technique").map_or("min-skew", String::as_str);
        build_technique(&data, technique, opts)?
    };
    let bytes = hist.to_snapshot_bytes();
    write_atomic(std::path::Path::new(out), &bytes)
        .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {out}: {e}")))?;
    let info = minskew_core::verify_snapshot(&bytes)
        .map_err(|e| CliError::new(ErrorKind::CorruptStats, format!("self-check: {e}")))?;
    println!("saved {} -> {out}", describe_snapshot(&info));
    Ok(())
}

/// `snapshot verify`: run the full container integrity check without
/// installing anything. Corruption of any kind is exit code 5.
fn snapshot_verify(opts: &Flags) -> Result<(), CliError> {
    let path = req(opts, "snapshot")?;
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::new(ErrorKind::Io, format!("reading {path}: {e}")))?;
    let info = minskew_core::verify_snapshot(&bytes)
        .map_err(|e| CliError::new(ErrorKind::CorruptStats, format!("{path}: {e}")))?;
    println!("ok: {}", describe_snapshot(&info));
    Ok(())
}

/// `snapshot load`: strict decode by default (corruption is exit code 5);
/// with `--input`, demonstrates the engine's graceful recovery instead —
/// the corrupt file is quarantined and statistics are rebuilt from data.
fn snapshot_load(opts: &Flags) -> Result<(), CliError> {
    let path = req(opts, "snapshot")?;
    if !opts.contains_key("input") {
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::new(ErrorKind::Io, format!("reading {path}: {e}")))?;
        let (_, info) = SpatialHistogram::from_snapshot_bytes(&bytes)
            .map_err(|e| CliError::new(ErrorKind::CorruptStats, format!("decoding {path}: {e}")))?;
        println!("loaded {}", describe_snapshot(&info));
        return Ok(());
    }
    let data = load(opts)?;
    let mut table = SpatialTable::try_new(TableOptions {
        analyze: AnalyzeOptions {
            buckets: num(opts, "buckets", 100usize)?,
            ..AnalyzeOptions::default()
        },
        ..TableOptions::default()
    })?;
    for r in data.rects() {
        table.insert(*r);
    }
    let report = table.load_snapshot(std::path::Path::new(path));
    if report.installed {
        let info = report
            .info
            .as_ref()
            .map_or_else(|| "snapshot".to_owned(), describe_snapshot);
        println!("loaded {info}");
    } else {
        println!("recovered: {}", report.diagnostics);
        if let Some(q) = &report.quarantined {
            println!("quarantined corrupt snapshot at {}", q.display());
        }
    }
    Ok(())
}

fn render(opts: &Flags) -> Result<(), CliError> {
    let data = load(opts)?;
    let technique = req(opts, "technique")?;
    let out = req(opts, "out")?;
    let hist = build_technique(&data, technique, opts)?;
    let svg = minskew_viz::partitioning_svg(&data, &hist, 800);
    std::fs::write(out, svg)
        .map_err(|e| CliError::new(ErrorKind::Io, format!("writing {out}: {e}")))?;
    println!(
        "rendered {} ({} buckets) over {} rects -> {out}",
        hist.name(),
        hist.num_buckets(),
        data.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let flags =
            parse_flags(&["--kind".into(), "road".into(), "--n".into(), "100".into()]).unwrap();
        assert_eq!(flags["kind"], "road");
        assert_eq!(num::<usize>(&flags, "n", 5).unwrap(), 100);
        assert_eq!(num::<usize>(&flags, "missing", 5).unwrap(), 5);
        assert!(parse_flags(&["oops".into()]).is_err());
        assert!(parse_flags(&["--dangling".into()]).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        // `--trace` / `--json` consume no operand: the flag after them still
        // parses as a flag, and trailing position is fine.
        let flags = parse_flags(&["--trace".into(), "--n".into(), "9".into(), "--json".into()])
            .expect("boolean flags parse");
        assert!(flag_set(&flags, "trace"));
        assert!(flag_set(&flags, "json"));
        assert!(!flag_set(&flags, "quiet"));
        assert_eq!(num::<usize>(&flags, "n", 0).unwrap(), 9);
    }

    #[test]
    fn query_parsing() {
        assert_eq!(
            parse_query("1,2,3,4").unwrap(),
            Rect::new(1.0, 2.0, 3.0, 4.0)
        );
        assert!(parse_query("1,2,3").is_err());
        assert!(parse_query("a,2,3,4").is_err());
        assert!(
            parse_query("nan,2,3,4").is_err(),
            "non-finite query rejected"
        );
    }

    #[test]
    fn maintain_subcommand_runs_every_mode_and_rejects_bad_ones() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-maint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("grid.csv");
        let mut body = String::new();
        for iy in 0..10 {
            for ix in 0..10 {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                body.push_str(&format!("{x},{y},{},{}\n", x + 5.0, y + 5.0));
            }
        }
        std::fs::write(&csv, body).unwrap();
        let base = |mode: &str| {
            vec![
                "maintain".into(),
                "--input".into(),
                csv.display().to_string(),
                "--mode".into(),
                mode.into(),
                "--rounds".into(),
                "2".into(),
                "--queries".into(),
                "30".into(),
                "--buckets".into(),
                "8".into(),
            ]
        };
        for mode in ["off", "reanalyze", "refine"] {
            run(base(mode)).unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        }
        assert_eq!(run(base("bogus")).unwrap_err().kind, ErrorKind::Usage);
        assert_eq!(
            run(vec!["maintain".into()]).unwrap_err().kind,
            ErrorKind::Usage,
            "missing --input"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_carry_stable_exit_codes() {
        // Usage errors.
        assert_eq!(run(vec![]).unwrap_err().kind, ErrorKind::Usage);
        assert_eq!(
            run(vec!["frobnicate".into()]).unwrap_err().kind,
            ErrorKind::Usage
        );
        // I/O: missing dataset file.
        let e = run(vec![
            "evaluate".into(),
            "--input".into(),
            "/no/such/file.csv".into(),
        ])
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Io);
        let dir = std::env::temp_dir().join(format!("minskew-cli-codes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Parse: malformed dataset.
        let bad_csv = dir.join("bad.csv");
        std::fs::write(&bad_csv, "1,2,3\n").unwrap();
        let e = run(vec![
            "build".into(),
            "--input".into(),
            bad_csv.display().to_string(),
            "--technique".into(),
            "min-skew".into(),
            "--out".into(),
            dir.join("s.bin").display().to_string(),
        ])
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Parse);
        // Corrupt stats: garbage statistics file.
        let bad_stats = dir.join("bad.bin");
        std::fs::write(&bad_stats, b"not a histogram").unwrap();
        let e = run(vec![
            "estimate".into(),
            "--stats".into(),
            bad_stats.display().to_string(),
            "--query".into(),
            "0,0,1,1".into(),
        ])
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::CorruptStats);
        // Build: empty dataset cannot be summarised strictly.
        let empty_csv = dir.join("empty.csv");
        std::fs::write(&empty_csv, "# nothing\n").unwrap();
        let e = run(vec![
            "build".into(),
            "--input".into(),
            empty_csv.display().to_string(),
            "--technique".into(),
            "min-skew".into(),
            "--out".into(),
            dir.join("s.bin").display().to_string(),
        ])
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Build);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let stats = dir.join("s.bin");
        let svg = dir.join("p.svg");

        run(vec![
            "generate".into(),
            "--kind".into(),
            "charminar".into(),
            "--n".into(),
            "2000".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();

        run(vec![
            "build".into(),
            "--input".into(),
            csv.display().to_string(),
            "--technique".into(),
            "min-skew".into(),
            "--buckets".into(),
            "20".into(),
            "--regions".into(),
            "400".into(),
            "--out".into(),
            stats.display().to_string(),
        ])
        .unwrap();

        run(vec![
            "estimate".into(),
            "--stats".into(),
            stats.display().to_string(),
            "--query".into(),
            "0,0,2000,2000".into(),
        ])
        .unwrap();

        // The EXPLAIN surface serves the same file and query, with the
        // exact-count cross-check and a term cap.
        run(vec![
            "explain".into(),
            "--stats".into(),
            stats.display().to_string(),
            "--query".into(),
            "0,0,2000,2000".into(),
            "--input".into(),
            csv.display().to_string(),
            "--terms".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(
            run(vec![
                "explain".into(),
                "--stats".into(),
                stats.display().to_string()
            ])
            .unwrap_err()
            .kind,
            ErrorKind::Usage,
            "explain requires --query"
        );

        run(vec![
            "render".into(),
            "--input".into(),
            csv.display().to_string(),
            "--technique".into(),
            "equi-count".into(),
            "--buckets".into(),
            "10".into(),
            "--out".into(),
            svg.display().to_string(),
        ])
        .unwrap();

        assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_builds_bit_identical_stats() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-thr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "charminar".into(),
            "--n".into(),
            "3000".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        let build_with = |threads: &str, out: &std::path::Path| {
            run(vec![
                "build".into(),
                "--input".into(),
                csv.display().to_string(),
                "--technique".into(),
                "min-skew".into(),
                "--buckets".into(),
                "25".into(),
                "--threads".into(),
                threads.into(),
                "--out".into(),
                out.display().to_string(),
            ])
            .unwrap();
            std::fs::read(out).unwrap()
        };
        let serial = build_with("1", &dir.join("s1.bin"));
        for t in ["0", "2", "8"] {
            assert_eq!(
                build_with(t, &dir.join(format!("s{t}.bin"))),
                serial,
                "--threads {t} drifted from the serial build"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evaluate_subcommand_runs() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "uniform".into(),
            "--n".into(),
            "800".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        run(vec![
            "evaluate".into(),
            "--input".into(),
            csv.display().to_string(),
            "--buckets".into(),
            "10".into(),
            "--queries".into(),
            "50".into(),
            "--qsize".into(),
            "0.2".into(),
        ])
        .unwrap();
        // Missing input file surfaces a readable error.
        assert!(run(vec![
            "evaluate".into(),
            "--input".into(),
            "/no/such/file.csv".into(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_subcommand_runs() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-tune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "charminar".into(),
            "--n".into(),
            "1500".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        let stats = dir.join("tuned.bin");
        run(vec![
            "tune".into(),
            "--input".into(),
            csv.display().to_string(),
            "--buckets".into(),
            "20".into(),
            "--queries".into(),
            "60".into(),
            "--out".into(),
            stats.display().to_string(),
        ])
        .unwrap();
        assert!(stats.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_build_is_byte_identical_and_stats_subcommand_runs() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "charminar".into(),
            "--n".into(),
            "1200".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        // `build --trace` must not change the emitted statistics bytes.
        let build = |traced: bool, out: &std::path::Path| {
            let mut args = vec![
                "build".to_string(),
                "--input".into(),
                csv.display().to_string(),
                "--technique".into(),
                "min-skew".into(),
                "--buckets".into(),
                "16".into(),
                "--regions".into(),
                "256".into(),
                "--out".into(),
                out.display().to_string(),
            ];
            if traced {
                args.push("--trace".into());
            }
            run(args).unwrap();
            std::fs::read(out).unwrap()
        };
        let plain = build(false, &dir.join("plain.bin"));
        let traced = build(true, &dir.join("traced.bin"));
        assert_eq!(plain, traced, "--trace changed the stats bytes");
        // `estimate --trace` runs.
        run(vec![
            "estimate".into(),
            "--stats".into(),
            dir.join("plain.bin").display().to_string(),
            "--query".into(),
            "0,0,2000,2000".into(),
            "--trace".into(),
        ])
        .unwrap();
        // `stats` serves a workload and exits cleanly in both output modes.
        let base = vec![
            "stats".to_string(),
            "--input".into(),
            csv.display().to_string(),
            "--buckets".into(),
            "12".into(),
            "--queries".into(),
            "80".into(),
        ];
        run(base.clone()).unwrap();
        let mut json = base;
        json.push("--json".into());
        run(json).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_subcommand_lifecycle() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let snap = dir.join("s.snap");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "charminar".into(),
            "--n".into(),
            "1500".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        // save -> verify -> load (strict) all succeed.
        run(vec![
            "snapshot".into(),
            "save".into(),
            "--input".into(),
            csv.display().to_string(),
            "--buckets".into(),
            "20".into(),
            "--regions".into(),
            "400".into(),
            "--out".into(),
            snap.display().to_string(),
        ])
        .unwrap();
        run(vec![
            "snapshot".into(),
            "verify".into(),
            "--snapshot".into(),
            snap.display().to_string(),
        ])
        .unwrap();
        run(vec![
            "snapshot".into(),
            "load".into(),
            "--snapshot".into(),
            snap.display().to_string(),
        ])
        .unwrap();
        // Corrupt the file: verify and strict load report exit class 5.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        for action in ["verify", "load"] {
            let e = run(vec![
                "snapshot".into(),
                action.into(),
                "--snapshot".into(),
                snap.display().to_string(),
            ])
            .unwrap_err();
            assert_eq!(e.kind, ErrorKind::CorruptStats, "{action}");
        }
        // Graceful load with --input recovers (exit 0) and quarantines.
        run(vec![
            "snapshot".into(),
            "load".into(),
            "--snapshot".into(),
            snap.display().to_string(),
            "--input".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        assert!(!snap.exists(), "corrupt snapshot must be quarantined");
        assert!(
            dir.join("s.snap.corrupt-1").exists(),
            "quarantine file must be preserved"
        );
        // Missing file is I/O (3), not corruption (5).
        let e = run(vec![
            "snapshot".into(),
            "verify".into(),
            "--snapshot".into(),
            dir.join("absent.snap").display().to_string(),
        ])
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Io);
        // Usage errors.
        assert_eq!(
            run(vec!["snapshot".into()]).unwrap_err().kind,
            ErrorKind::Usage
        );
        assert_eq!(
            run(vec!["snapshot".into(), "frob".into()])
                .unwrap_err()
                .kind,
            ErrorKind::Usage
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_migrates_legacy_stats() {
        let dir = std::env::temp_dir().join(format!("minskew-cli-mig-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let legacy = dir.join("legacy.bin");
        let snap = dir.join("migrated.snap");
        run(vec![
            "generate".into(),
            "--kind".into(),
            "uniform".into(),
            "--n".into(),
            "600".into(),
            "--out".into(),
            csv.display().to_string(),
        ])
        .unwrap();
        // `build` writes the legacy bare-codec format.
        run(vec![
            "build".into(),
            "--input".into(),
            csv.display().to_string(),
            "--technique".into(),
            "equi-count".into(),
            "--buckets".into(),
            "8".into(),
            "--out".into(),
            legacy.display().to_string(),
        ])
        .unwrap();
        run(vec![
            "snapshot".into(),
            "save".into(),
            "--stats".into(),
            legacy.display().to_string(),
            "--out".into(),
            snap.display().to_string(),
        ])
        .unwrap();
        run(vec![
            "snapshot".into(),
            "verify".into(),
            "--snapshot".into(),
            snap.display().to_string(),
        ])
        .unwrap();
        // The migrated container carries the same statistics payload.
        let legacy_bytes = std::fs::read(&legacy).unwrap();
        let container = std::fs::read(&snap).unwrap();
        let (hist, info) = SpatialHistogram::from_snapshot_bytes(&container).unwrap();
        assert_eq!(info.version, FormatVersion::Container);
        assert_eq!(hist.to_bytes(), legacy_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_subcommand_and_kind() {
        assert!(run(vec!["frobnicate".into()]).is_err());
        assert!(generate(
            &[
                ("kind".to_string(), "nope".to_string()),
                ("out".to_string(), "/tmp/x".to_string())
            ]
            .into_iter()
            .collect()
        )
        .is_err());
    }
}
