//! Deterministic data parallelism on scoped threads — no work stealing, no
//! external crates, and **bit-identical results at every thread count**.
//!
//! The estimator stack parallelizes three kinds of loops: sharded counting
//! (density-grid construction), independent per-item evaluation (split
//! candidates, batch estimates), and load-imbalanced per-item work (exact
//! ground-truth counting, where query cost varies by orders of magnitude).
//! This crate provides one primitive per shape, all built on
//! [`std::thread::scope`]:
//!
//! * [`map_slice`] — order-preserving parallel map over contiguous chunks.
//! * [`map_chunks_queued`] — order-preserving parallel map driven by a
//!   chunked work *queue* (an atomic cursor over fixed chunk boundaries), so
//!   slow items do not serialize the whole batch. Not work stealing: chunk
//!   boundaries are fixed up front and results are reassembled by chunk
//!   index, so scheduling order can never leak into the output.
//! * [`map_chunks_queued_with`] — the queued map with one reusable scratch
//!   state per worker, for allocation-free per-item work (batch serving).
//! * [`fold_shards`] — one accumulator per chunk, returned in chunk order,
//!   for sharded-counts-then-merge patterns.
//!
//! # Determinism contract
//!
//! Every function here returns output whose value depends only on the input
//! and the (pure) closure — never on the number of threads or on how the OS
//! schedules them. The building blocks:
//!
//! 1. chunk boundaries are a pure function of `(len, threads)`
//!    ([`chunk_ranges`]);
//! 2. each chunk is processed left-to-right by exactly one worker;
//! 3. results are reassembled in chunk order, not completion order.
//!
//! Callers keep the contract by merging shard accumulators with
//! order-independent operations (integer addition) or by folding them in
//! chunk order. Floating-point *reductions across items* are the one shape
//! deliberately not offered: `(a + b) + c != a + (b + c)` in general, so a
//! parallel f64 sum cannot be bit-identical to the serial sweep. Hot paths
//! that accumulate f64 (the final bucket-assignment pass of Min-Skew) stay
//! serial for exactly this reason.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `threads` knob: `0` means "auto" (one worker per available
/// core), any other value is taken literally. Never returns 0.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Deterministic contiguous chunk boundaries: `len` items split into at most
/// `chunks` ranges, the first `len % chunks` ranges one item longer. Empty
/// ranges are never emitted, so fewer than `chunks` ranges come back when
/// `len < chunks`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len);
    if chunks == 0 {
        return Vec::new();
    }
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// The slice is split into one contiguous chunk per worker; with
/// `threads <= 1` (or a single-item input) the map runs inline on the
/// calling thread. The output is identical at every thread count.
pub fn map_slice<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let ranges = chunk_ranges(items.len(), threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                scope.spawn(move || items[r].iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// Order-preserving parallel map over a **chunked work queue**: the slice is
/// cut into fixed chunks of `chunk_size`, workers claim chunks through an
/// atomic cursor (cheapest-possible dynamic load balancing — no stealing,
/// no per-item locks), and results are reassembled by chunk index.
///
/// Use this instead of [`map_slice`] when per-item cost is wildly uneven
/// (e.g. range queries whose result sizes span orders of magnitude), so one
/// expensive region of the input does not serialize a whole static chunk.
/// Output is still `out[i] = f(&items[i])`, independent of scheduling.
pub fn map_chunks_queued<T, R, F>(threads: usize, chunk_size: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_chunks_queued_with(threads, chunk_size, items, || (), move |(), item| f(item))
}

/// [`map_chunks_queued`] with **per-worker scratch state**: each worker
/// creates one `S` via `init()` when it starts and threads it through every
/// item it processes (`out[i] = f(&mut state, &items[i])`).
///
/// This is the allocation-free batch-serving shape: a worker's scratch
/// buffers (candidate lists, visited stamps) are reused across all the
/// items that worker claims, instead of being reallocated per item. The
/// determinism contract still holds **provided `f` is pure with respect to
/// the scratch** — the scratch may cache allocations but must not change
/// the value `f` returns for a given item. All existing callers get this
/// for free via [`map_chunks_queued`] (`S = ()`).
pub fn map_chunks_queued_with<T, R, S, I, F>(
    threads: usize,
    chunk_size: usize,
    items: &[T],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    let chunk_size = chunk_size.max(1);
    let n_chunks = items.len().div_ceil(chunk_size);
    if threads <= 1 || n_chunks <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = threads.min(n_chunks);
    if minskew_obs::enabled() {
        let registry = minskew_obs::Registry::global();
        registry.counter("par.queued.calls").inc();
        registry.counter("par.queued.chunks").add(n_chunks as u64);
        registry.counter("par.queued.workers").add(workers as u64);
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<R>>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    // Per-worker observability, accumulated locally and
                    // flushed once at worker exit — the claim loop itself
                    // stays two relaxed atomics per chunk.
                    let clock = minskew_obs::Stopwatch::start();
                    let mut contended: u64 = 0;
                    let mut prev_ci: Option<usize> = None;
                    let mut state = init();
                    let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        // A gap in this worker's claim sequence means another
                        // worker claimed in between: the queue was contended.
                        if prev_ci.is_some_and(|p| ci != p + 1) {
                            contended += 1;
                        }
                        prev_ci = Some(ci);
                        let lo = ci * chunk_size;
                        let hi = (lo + chunk_size).min(items.len());
                        done.push((
                            ci,
                            items[lo..hi]
                                .iter()
                                .map(|item| f(&mut state, item))
                                .collect(),
                        ));
                    }
                    if minskew_obs::enabled() {
                        let registry = minskew_obs::Registry::global();
                        registry
                            .histogram("par.worker.busy_ns")
                            .record(clock.total());
                        registry
                            .counter("par.queue.contended_claims")
                            .add(contended);
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (ci, chunk) in h.join().expect("queued map worker panicked") {
                slots[ci] = Some(chunk);
            }
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.extend(slot.expect("every chunk claimed exactly once"));
    }
    out
}

/// Sharded fold: splits `items` into one contiguous chunk per worker, folds
/// each chunk left-to-right into its own accumulator (`init()` per shard),
/// and returns the accumulators **in chunk order**.
///
/// The caller merges the shards; the merge is bit-identical to a serial fold
/// whenever the accumulation is order-independent (integer counters) or the
/// caller folds shards in the returned order and the operation is
/// associative.
pub fn fold_shards<T, A, I, F>(threads: usize, items: &[T], init: I, fold: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &T) + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        let mut acc = init();
        for item in items {
            fold(&mut acc, item);
        }
        return vec![acc];
    }
    let ranges = chunk_ranges(items.len(), threads);
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let init = &init;
                let fold = &fold;
                scope.spawn(move || {
                    let mut acc = init();
                    for item in &items[r] {
                        fold(&mut acc, item);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("sharded fold worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let rs = chunk_ranges(len, chunks);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "len={len} chunks={chunks}");
                    assert!(!r.is_empty(), "empty chunk for len={len} chunks={chunks}");
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(rs.len() <= chunks);
                // Balanced: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    rs.iter().map(ExactSizeIterator::len).min(),
                    rs.iter().map(ExactSizeIterator::len).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_slice_is_order_preserving_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            assert_eq!(map_slice(threads, &items, |x| x * x + 1), expect);
        }
        assert_eq!(map_slice(4, &[] as &[u64], |x| *x), Vec::<u64>::new());
    }

    #[test]
    fn queued_map_matches_serial_under_uneven_load() {
        let items: Vec<usize> = (0..500).collect();
        let spin = |x: &usize| {
            // Uneven per-item cost: some items loop far longer.
            let mut acc = *x as u64;
            for _ in 0..(x % 97) * 10 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (*x, acc)
        };
        let expect: Vec<(usize, u64)> = items.iter().map(spin).collect();
        for threads in [1usize, 2, 3, 8] {
            for chunk in [1usize, 7, 64, 1000] {
                assert_eq!(map_chunks_queued(threads, chunk, &items, spin), expect);
            }
        }
    }

    #[test]
    fn queued_map_with_scratch_matches_serial_and_reuses_state() {
        // The scratch buffer caches a growable allocation; the per-item
        // value must not depend on which worker (or how many) ran it.
        let items: Vec<usize> = (0..333).collect();
        let f = |scratch: &mut Vec<u64>, x: &usize| {
            scratch.clear();
            scratch.extend((0..x % 13).map(|i| (x + i) as u64));
            scratch.iter().sum::<u64>()
        };
        let expect: Vec<u64> = {
            let mut s = Vec::new();
            items.iter().map(|x| f(&mut s, x)).collect()
        };
        for threads in [1usize, 2, 3, 8] {
            for chunk in [1usize, 5, 64, 1000] {
                assert_eq!(
                    map_chunks_queued_with(threads, chunk, &items, Vec::new, f),
                    expect,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn fold_shards_merge_exactly_for_integers() {
        // Sharded histogram counting: u32 addition is order-independent, so
        // the merged shards equal the serial fold bit-for-bit.
        let items: Vec<usize> = (0..1000).map(|i| (i * 7) % 16).collect();
        let serial = {
            let mut h = vec![0u32; 16];
            for &i in &items {
                h[i] += 1;
            }
            h
        };
        for threads in [1usize, 2, 3, 8] {
            let shards = fold_shards(threads, &items, || vec![0u32; 16], |h, &i| h[i] += 1);
            let mut merged = vec![0u32; 16];
            for shard in shards {
                for (m, s) in merged.iter_mut().zip(shard) {
                    *m += s;
                }
            }
            assert_eq!(merged, serial);
        }
    }

    #[test]
    fn queued_map_publishes_worker_metrics() {
        let registry = minskew_obs::Registry::global();
        let read = |snap: &minskew_obs::RegistrySnapshot, name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        let before = registry.snapshot();
        let busy_before = registry.histogram("par.worker.busy_ns").count();
        let items: Vec<usize> = (0..640).collect();
        let out = map_chunks_queued_with(4, 64, &items, || (), |(), x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let after = registry.snapshot();
        if minskew_obs::enabled() {
            // The global registry is shared across concurrently running
            // tests, so assert deltas as lower bounds.
            assert!(read(&after, "par.queued.calls") > read(&before, "par.queued.calls"));
            assert!(read(&after, "par.queued.chunks") >= read(&before, "par.queued.chunks") + 10);
            assert!(read(&after, "par.queued.workers") >= read(&before, "par.queued.workers") + 4);
            assert!(registry.histogram("par.worker.busy_ns").count() >= busy_before + 4);
        } else {
            assert!(after.counters.is_empty() || after.counters.iter().all(|&(_, v)| v == 0));
        }
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }
}
