//! Dependency-free SVG rendering of datasets, density grids, and bucket
//! partitionings.
//!
//! The paper's Figures 1–7 are pictures of the Charminar dataset, its
//! density surface, and the partitionings each technique produces. This
//! crate regenerates those artifacts as standalone SVG files so the
//! qualitative claims ("Equi-Area tiles uniformly", "Equi-Count and
//! Min-Skew chase the corners") can be inspected directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod svg;

pub use svg::SvgCanvas;

use minskew_core::SpatialHistogram;
use minskew_data::{Dataset, DensityGrid};

/// Renders the dataset's rectangles (Figure 1 style).
pub fn dataset_svg(data: &Dataset, px: u32) -> String {
    let mut canvas = SvgCanvas::new(data.stats().mbr, px);
    for r in data.rects() {
        canvas.rect(r, "fill:#2563eb;fill-opacity:0.25;stroke:none");
    }
    canvas.finish()
}

/// Renders a bucket partitioning over a faint copy of the data
/// (Figures 2–4 and 7 style).
pub fn partitioning_svg(data: &Dataset, hist: &SpatialHistogram, px: u32) -> String {
    let mut canvas = SvgCanvas::new(data.stats().mbr, px);
    for r in data.rects() {
        canvas.rect(r, "fill:#94a3b8;fill-opacity:0.15;stroke:none");
    }
    for b in hist.buckets() {
        canvas.rect(&b.mbr, "fill:none;stroke:#dc2626;stroke-width:1.5");
    }
    canvas.finish()
}

/// Renders a density grid as a grayscale heat map (Figure 5 style;
/// darker = denser).
pub fn density_svg(grid: &DensityGrid, px: u32) -> String {
    let mut canvas = SvgCanvas::new(grid.bounds(), px);
    let max = grid.densities().iter().copied().max().unwrap_or(0).max(1) as f64;
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let d = grid.density(ix, iy) as f64;
            if d == 0.0 {
                continue;
            }
            // Square-root scale spreads the low end, where most cells live.
            let t = (d / max).sqrt();
            let shade = (255.0 * (1.0 - t)) as u8;
            let style = format!("fill:rgb({shade},{shade},{shade});stroke:none");
            canvas.rect(&grid.cell_rect(ix, iy), &style);
        }
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_core::MinSkewBuilder;
    use minskew_geom::Rect;

    fn tiny_dataset() -> Dataset {
        Dataset::new(vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(20.0, 20.0, 30.0, 35.0),
            Rect::new(50.0, 5.0, 55.0, 9.0),
        ])
    }

    #[test]
    fn dataset_svg_contains_every_rect() {
        let ds = tiny_dataset();
        let svg = dataset_svg(&ds, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 3 + 1); // + background
    }

    #[test]
    fn partitioning_svg_outlines_buckets() {
        let ds = tiny_dataset();
        let h = MinSkewBuilder::new(2).regions(16).build(&ds);
        let svg = partitioning_svg(&ds, &h, 400);
        let outlines = svg.matches("stroke:#dc2626").count();
        assert_eq!(outlines, h.num_buckets());
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_dataset_world_is_rejected() {
        // All mass at one point: there is no world rectangle to project
        // onto, and the canvas says so rather than emitting a broken SVG.
        let ds = Dataset::new(vec![Rect::new(5.0, 5.0, 5.0, 5.0); 3]);
        dataset_svg(&ds, 100);
    }

    #[test]
    fn density_svg_skips_empty_cells() {
        let ds = tiny_dataset();
        let grid = DensityGrid::build(ds.rects().iter(), ds.stats().mbr, 8, 8);
        let svg = density_svg(&grid, 300);
        let filled = svg.matches("rgb(").count();
        let nonzero = grid.densities().iter().filter(|&&d| d > 0).count();
        assert_eq!(filled, nonzero);
    }
}
