//! A minimal SVG canvas with world-to-pixel coordinate mapping.

use minskew_geom::Rect;

/// An SVG document under construction, mapping a world rectangle onto a
/// pixel viewport (y axis flipped so world "up" renders up).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    world: Rect,
    px_w: f64,
    px_h: f64,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas `px` pixels wide; the height follows the world
    /// aspect ratio. A white background rectangle is emitted first.
    ///
    /// # Panics
    ///
    /// Panics if the world rectangle is degenerate or `px == 0`.
    pub fn new(world: Rect, px: u32) -> SvgCanvas {
        assert!(px > 0, "viewport must be at least one pixel wide");
        assert!(
            world.width() > 0.0 && world.height() > 0.0,
            "world rectangle must have positive area"
        );
        let px_w = px as f64;
        let px_h = px_w * world.height() / world.width();
        let mut canvas = SvgCanvas {
            world,
            px_w,
            px_h,
            body: String::new(),
        };
        canvas.rect(&world, "fill:#ffffff;stroke:#0f172a;stroke-width:1");
        canvas
    }

    /// Adds a rectangle with an inline CSS style.
    pub fn rect(&mut self, r: &Rect, style: &str) {
        let (x, y) = self.to_px(r.lo.x, r.hi.y); // top-left in pixel space
        let w = r.width() / self.world.width() * self.px_w;
        let h = r.height() / self.world.height() * self.px_h;
        // Sub-pixel rectangles still get a hairline so tiny data shows up.
        let w = w.max(0.3);
        let h = h.max(0.3);
        self.body.push_str(&format!(
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" style="{style}"/>"#
        ));
        self.body.push('\n');
    }

    /// Adds a text label at a world position.
    pub fn text(&mut self, x: f64, y: f64, size_px: f64, content: &str) {
        let (px, py) = self.to_px(x, y);
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        self.body.push_str(&format!(
            r#"<text x="{px:.2}" y="{py:.2}" font-size="{size_px}" font-family="sans-serif">{escaped}</text>"#
        ));
        self.body.push('\n');
    }

    /// Finalises the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.px_w, self.px_h, self.px_w, self.px_h, self.body
        )
    }

    fn to_px(&self, x: f64, y: f64) -> (f64, f64) {
        let px = (x - self.world.lo.x) / self.world.width() * self.px_w;
        let py = (self.world.hi.y - y) / self.world.height() * self.px_h;
        (px, py)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y_axis_is_flipped() {
        let world = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut c = SvgCanvas::new(world, 100);
        // A rect at the top of the world should land at pixel y = 0.
        c.rect(&Rect::new(0.0, 90.0, 10.0, 100.0), "fill:red");
        let svg = c.finish();
        assert!(
            svg.contains(r#"<rect x="0.00" y="0.00" width="10.00" height="10.00" style="fill:red"#)
        );
    }

    #[test]
    fn aspect_ratio_preserved() {
        let world = Rect::new(0.0, 0.0, 200.0, 100.0);
        let svg = SvgCanvas::new(world, 400).finish();
        assert!(svg.contains(r#"width="400" height="200""#));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = SvgCanvas::new(Rect::new(0.0, 0.0, 1.0, 1.0), 10);
        c.text(0.5, 0.5, 12.0, "a<b & c>d");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_world_rejected() {
        SvgCanvas::new(Rect::new(0.0, 0.0, 0.0, 10.0), 100);
    }
}
