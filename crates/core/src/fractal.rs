//! The fractal-dimension parametric technique of Belussi & Faloutsos
//! (VLDB 1995), extended to rectangle data via centroids as the paper does
//! (§5.3).
//!
//! Real point sets often behave like fractals: the number of point pairs
//! within distance `ε` follows a power law `ε^D₂`, where `D₂` is the
//! *correlation fractal dimension*. `D₂` is measured by box counting: lay
//! grids of shrinking cell side `r` over the data and regress
//! `log Σᵢ pᵢ²` (the pair-count proxy, with `pᵢ` the fraction of points in
//! cell `i`) against `log r`; the slope is `D₂`. Selectivity of a square
//! query of side `ε` is then estimated as `N · (ε / L)^D₂`.
//!
//! The paper finds this technique ineffective on rectangle data (~90 %
//! error) — it was designed for points — and our reproduction retains that
//! behaviour on purpose.

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};

use crate::error::BuildError;
use crate::SpatialEstimator;

/// The *Fractal* estimator: stores only `N`, the input MBR, and `D₂`.
#[derive(Debug, Clone)]
pub struct FractalEstimator {
    input_len: usize,
    mbr: Rect,
    d2: f64,
}

impl FractalEstimator {
    /// Measures `D₂` with the default box-counting ladder
    /// (grid sides 2, 4, …, 256).
    pub fn build(data: &Dataset) -> FractalEstimator {
        Self::with_ladder(data, &[2, 4, 8, 16, 32, 64, 128, 256])
    }

    /// Measures `D₂` using the given ladder of grid resolutions
    /// (cells per axis).
    ///
    /// # Panics
    ///
    /// Panics if the ladder has fewer than two rungs.
    pub fn with_ladder(data: &Dataset, grid_sides: &[usize]) -> FractalEstimator {
        assert!(grid_sides.len() >= 2, "need at least two resolutions");
        let mbr = data.stats().mbr;
        let n = data.len();
        if n == 0 {
            return FractalEstimator {
                input_len: 0,
                mbr,
                d2: 2.0,
            };
        }
        let centers: Vec<Point> = data.rects().iter().map(Rect::center).collect();
        // Regress log(sum p_i^2) on log(r).
        let mut xs = Vec::with_capacity(grid_sides.len());
        let mut ys = Vec::with_capacity(grid_sides.len());
        for &g in grid_sides {
            assert!(g >= 1, "grid side must be positive");
            let s2 = sum_squared_fractions(&centers, &mbr, g);
            // Normalised cell side r = 1/g.
            xs.push((1.0 / g as f64).ln());
            ys.push(s2.ln());
        }
        let d2 = least_squares_slope(&xs, &ys).clamp(0.0, 2.0);
        FractalEstimator {
            input_len: n,
            mbr,
            d2,
        }
    }

    /// Fallible counterpart of [`FractalEstimator::build`].
    pub fn try_build(data: &Dataset) -> Result<FractalEstimator, BuildError> {
        Self::try_with_ladder(data, &[2, 4, 8, 16, 32, 64, 128, 256])
    }

    /// Fallible counterpart of [`FractalEstimator::with_ladder`].
    pub fn try_with_ladder(
        data: &Dataset,
        grid_sides: &[usize],
    ) -> Result<FractalEstimator, BuildError> {
        if grid_sides.len() < 2 {
            return Err(BuildError::InvalidConfig(
                "box-counting ladder needs at least two resolutions".into(),
            ));
        }
        if grid_sides.contains(&0) {
            return Err(BuildError::InvalidConfig(
                "box-counting grid sides must be positive".into(),
            ));
        }
        if data.is_empty() {
            return Err(BuildError::EmptyDataset);
        }
        if !data.stats().mbr.is_finite() {
            return Err(BuildError::NonFiniteMbr);
        }
        Ok(Self::with_ladder(data, grid_sides))
    }

    /// The measured correlation fractal dimension.
    pub fn d2(&self) -> f64 {
        self.d2
    }
}

/// `Σ p_i²` over a `g × g` grid of the MBR.
fn sum_squared_fractions(centers: &[Point], mbr: &Rect, g: usize) -> f64 {
    let mut counts = vec![0u32; g * g];
    let w = mbr.width();
    let h = mbr.height();
    for c in centers {
        let ix = if w == 0.0 {
            0
        } else {
            (((c.x - mbr.lo.x) / w * g as f64) as usize).min(g - 1)
        };
        let iy = if h == 0.0 {
            0
        } else {
            (((c.y - mbr.lo.y) / h * g as f64) as usize).min(g - 1)
        };
        counts[iy * g + ix] += 1;
    }
    let n = centers.len() as f64;
    let s2: f64 = counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum();
    // Guard the logarithm: with all mass in one cell s2 = 1; it can never be
    // 0 because fractions sum to 1.
    s2.max(f64::MIN_POSITIVE)
}

fn least_squares_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

impl SpatialEstimator for FractalEstimator {
    fn estimate_count(&self, query: &Rect) -> f64 {
        if self.input_len == 0 {
            return 0.0;
        }
        let clipped = match query.intersection(&self.mbr) {
            Some(c) => c,
            None => return 0.0,
        };
        // Normalised query side: geometric mean of the two side fractions
        // (the power law is stated for square windows).
        let fx = if self.mbr.width() == 0.0 {
            1.0
        } else {
            clipped.width() / self.mbr.width()
        };
        let fy = if self.mbr.height() == 0.0 {
            1.0
        } else {
            clipped.height() / self.mbr.height()
        };
        let eps = (fx * fy).sqrt();
        let est = self.input_len as f64 * eps.powf(self.d2);
        est.clamp(0.0, self.input_len as f64)
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn name(&self) -> &str {
        "Fractal"
    }

    fn size_bytes(&self) -> usize {
        // N + 4-word MBR + D2: six words.
        6 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::{clustered_points, uniform_rects, ClusteredPointSpec};

    #[test]
    fn uniform_points_have_dimension_near_two() {
        let ds = uniform_rects(40_000, Rect::new(0.0, 0.0, 1000.0, 1000.0), 0.0, 0.0, 1);
        let f = FractalEstimator::build(&ds);
        assert!(
            (1.8..=2.0).contains(&f.d2()),
            "uniform 2-D points: D2 = {}",
            f.d2()
        );
    }

    #[test]
    fn line_points_have_dimension_near_one() {
        // Points along the diagonal: a 1-dimensional set.
        let rects: Vec<Rect> = (0..20_000)
            .map(|i| {
                let t = i as f64 / 20.0;
                Rect::from_point(Point::new(t, t))
            })
            .collect();
        let ds = Dataset::new(rects);
        let f = FractalEstimator::build(&ds);
        assert!(
            (0.8..=1.2).contains(&f.d2()),
            "diagonal points: D2 = {}",
            f.d2()
        );
    }

    #[test]
    fn clustered_points_have_fractional_dimension() {
        let spec = ClusteredPointSpec {
            n: 30_000,
            ..ClusteredPointSpec::default()
        };
        let ds = clustered_points(&spec, 2);
        let f = FractalEstimator::build(&ds);
        assert!(
            f.d2() > 0.3 && f.d2() < 2.0,
            "clustered points: D2 = {}",
            f.d2()
        );
    }

    #[test]
    fn estimates_scale_with_query_size() {
        let ds = uniform_rects(10_000, Rect::new(0.0, 0.0, 100.0, 100.0), 0.0, 0.0, 3);
        let f = FractalEstimator::build(&ds);
        let small = f.estimate_count(&Rect::new(0.0, 0.0, 10.0, 10.0));
        let large = f.estimate_count(&Rect::new(0.0, 0.0, 50.0, 50.0));
        let whole = f.estimate_count(&Rect::new(0.0, 0.0, 100.0, 100.0));
        assert!(small < large && large < whole);
        // Whole-space query returns ~N.
        assert!(
            (whole - 10_000.0).abs() / 10_000.0 < 0.05,
            "whole = {whole}"
        );
        // Disjoint query returns 0.
        assert_eq!(
            f.estimate_count(&Rect::new(200.0, 200.0, 300.0, 300.0)),
            0.0
        );
    }

    #[test]
    fn tiny_footprint() {
        let ds = uniform_rects(1_000, Rect::new(0.0, 0.0, 10.0, 10.0), 0.1, 0.1, 4);
        let f = FractalEstimator::build(&ds);
        assert_eq!(f.size_bytes(), 48);
        assert_eq!(f.name(), "Fractal");
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(vec![]);
        let f = FractalEstimator::build(&ds);
        assert_eq!(f.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }

    use minskew_data::Dataset;
    use minskew_geom::Point;
}
