//! Durable snapshot container for persisted statistics.
//!
//! The catalog codec ([`crate::codec`]) gives a histogram a compact wire
//! form, but a bare codec blob on disk has no integrity story: a torn
//! write, a flipped bit in a zeroed region, or a half-synced page can decode
//! into a *plausible* histogram that silently mis-estimates forever. This
//! module wraps the codec payload in a versioned, checksummed container so
//! every such corruption is **detected**, typed, and recoverable:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"MSKSNAP\x01"
//! 8       2     format version (u16 le, currently 1)
//! 10      1     technique tag (see [`technique_tag`])
//! 11      1     reserved (must be 0)
//! 12      4     section count (u32 le)
//! 16      32*k  section table: kind u32, reserved u32, offset u64,
//!               len u64, crc64 u64 per section
//! ...           section payloads (concatenated, in table order)
//! end-8   8     whole-file CRC-64 over every preceding byte
//! ```
//!
//! Sections are length-prefixed and independently checksummed (CRC-64/XZ),
//! so a decoder can localise damage; the trailing whole-file checksum
//! catches truncation and header tampering that per-section checks cannot.
//! Unknown section kinds are *skipped* after their checksum verifies, so
//! older readers survive newer writers (forward compatibility). Decoding is
//! **total**: any byte input yields `Ok` or a typed [`SnapshotError`],
//! never a panic — the fault-injection suite drives this with torn writes,
//! bit flips, truncation, and arbitrary byte soup.
//!
//! Blobs in the pre-container format (the bare `MSKH` codec image) still
//! load through [`SpatialHistogram::from_snapshot_bytes`]; they are
//! reported as [`FormatVersion::Legacy`] so callers can surface the
//! migration diagnostic.

use crate::codec::CodecError;
use crate::{SpatialEstimator, SpatialHistogram};

/// First 8 bytes of every container-format snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MSKSNAP\x01";
/// Container format version this library writes.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Section kind holding the histogram codec payload.
pub const SECTION_STATS: u32 = 1;
/// Bytes per section-table entry.
const SECTION_ENTRY_BYTES: usize = 32;
/// Fixed header bytes before the section table.
const HEADER_BYTES: usize = 16;
/// Trailing whole-file checksum bytes.
const FOOTER_BYTES: usize = 8;

/// Sanity ceiling on the decoded bucket count: no legitimate summary in
/// this workspace is remotely near 2^24 buckets, and refusing earlier means
/// a hostile header can never drive a large allocation.
pub const MAX_SNAPSHOT_BUCKETS: usize = 1 << 24;

/// Which on-disk format a snapshot was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatVersion {
    /// The checksummed container format (version 1).
    Container,
    /// A bare pre-container codec blob (`MSKH` magic, no checksums).
    Legacy,
}

impl std::fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatVersion::Container => write!(f, "container/v{SNAPSHOT_VERSION}"),
            FormatVersion::Legacy => write!(f, "legacy"),
        }
    }
}

/// Decoded snapshot metadata, returned alongside (or instead of) the
/// histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format the bytes were decoded from.
    pub version: FormatVersion,
    /// Technique tag recorded in the header (mirrors the payload name).
    pub technique: String,
    /// Sections present in the container (1 for legacy blobs).
    pub sections: usize,
    /// Bytes of the stats codec payload.
    pub payload_bytes: usize,
    /// Total snapshot size in bytes.
    pub total_bytes: usize,
    /// Buckets in the decoded histogram.
    pub buckets: usize,
    /// `N` recorded by the histogram (rectangles summarised).
    pub input_len: usize,
}

impl std::fmt::Display for SnapshotInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} snapshot: {} ({} buckets over {} rects), {} section(s), {} bytes",
            self.version,
            self.technique,
            self.buckets,
            self.input_len,
            self.sections,
            self.total_bytes,
        )
    }
}

/// Errors produced while decoding or verifying a snapshot.
///
/// Every corruption mode maps to a variant — decoding never panics — and
/// the engine's degradation ladder keys recovery off the variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Neither the container magic nor the legacy codec magic matched.
    BadMagic,
    /// The container format version is unknown to this library.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared structure.
    Truncated,
    /// The header's reserved byte or section count is malformed.
    MalformedHeader(String),
    /// A section-table entry points outside the payload region.
    SectionOutOfBounds {
        /// Section kind tag of the offending entry.
        kind: u32,
    },
    /// A section's stored CRC-64 does not match its bytes.
    SectionChecksum {
        /// Section kind tag whose checksum failed.
        kind: u32,
    },
    /// The trailing whole-file CRC-64 does not match the preceding bytes.
    FileChecksum,
    /// No `SECTION_STATS` section is present.
    MissingStatsSection,
    /// The stats payload failed the inner codec's validation.
    Payload(CodecError),
    /// The header technique tag disagrees with the decoded payload.
    TechniqueMismatch {
        /// Technique recorded in the container header.
        header: String,
        /// Technique the decoded payload reports.
        payload: String,
    },
    /// The decoded bucket count exceeds [`MAX_SNAPSHOT_BUCKETS`].
    InsaneBucketCount {
        /// Count the payload declared.
        count: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::MalformedHeader(why) => write!(f, "malformed snapshot header: {why}"),
            SnapshotError::SectionOutOfBounds { kind } => {
                write!(f, "section {kind} points outside the snapshot")
            }
            SnapshotError::SectionChecksum { kind } => {
                write!(f, "section {kind} checksum mismatch (corrupt payload)")
            }
            SnapshotError::FileChecksum => {
                write!(f, "whole-file checksum mismatch (torn or corrupt snapshot)")
            }
            SnapshotError::MissingStatsSection => write!(f, "snapshot has no stats section"),
            SnapshotError::Payload(e) => write!(f, "stats payload rejected: {e}"),
            SnapshotError::TechniqueMismatch { header, payload } => write!(
                f,
                "technique tag {header:?} disagrees with payload technique {payload:?}"
            ),
            SnapshotError::InsaneBucketCount { count } => write!(
                f,
                "bucket count {count} exceeds the sanity bound {MAX_SNAPSHOT_BUCKETS}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> SnapshotError {
        SnapshotError::Payload(e)
    }
}

/// CRC-64/XZ (reflected ECMA-182 polynomial), table-driven. Chosen over an
/// ad-hoc hash because its error-detection properties under burst and
/// single-bit corruption are well characterised — exactly the faults a torn
/// page or decaying medium produces.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42; // reflected 0x42F0E1EBA9EA3693

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Maps a technique name to its header tag. Unknown names map to 255 and
/// round-trip through [`technique_name`] as `"other"`.
pub fn technique_tag(name: &str) -> u8 {
    match name {
        "Min-Skew" => 0,
        "Equi-Area" => 1,
        "Equi-Count" => 2,
        "Uniform" => 3,
        "R-tree" => 4,
        "Grid" => 5,
        _ => 255,
    }
}

/// Inverse of [`technique_tag`].
pub fn technique_name(tag: u8) -> &'static str {
    match tag {
        0 => "Min-Skew",
        1 => "Equi-Area",
        2 => "Equi-Count",
        3 => "Uniform",
        4 => "R-tree",
        5 => "Grid",
        _ => "other",
    }
}

fn read_u16(data: &[u8], at: usize) -> Result<u16, SnapshotError> {
    let b = data.get(at..at + 2).ok_or(SnapshotError::Truncated)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn read_u32(data: &[u8], at: usize) -> Result<u32, SnapshotError> {
    let b = data.get(at..at + 4).ok_or(SnapshotError::Truncated)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn read_u64(data: &[u8], at: usize) -> Result<u64, SnapshotError> {
    let b = data.get(at..at + 8).ok_or(SnapshotError::Truncated)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// One verified section: kind tag plus its payload slice.
struct Section<'a> {
    kind: u32,
    bytes: &'a [u8],
}

/// Parses and fully verifies the container structure: magic, version,
/// header sanity, section bounds, per-section checksums, and the trailing
/// whole-file checksum. Returns the verified sections plus the header
/// technique tag.
fn parse_container(data: &[u8]) -> Result<(u8, Vec<Section<'_>>), SnapshotError> {
    if data.len() < 8 || &data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if data.len() < HEADER_BYTES + FOOTER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    // Whole-file checksum first: it catches truncation and header damage in
    // one probe, before any header field is trusted.
    let stored = read_u64(data, data.len() - FOOTER_BYTES)?;
    if crc64(&data[..data.len() - FOOTER_BYTES]) != stored {
        return Err(SnapshotError::FileChecksum);
    }
    let version = read_u16(data, 8)?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let technique = data[10];
    if data[11] != 0 {
        return Err(SnapshotError::MalformedHeader(format!(
            "reserved byte is {}",
            data[11]
        )));
    }
    let n_sections = read_u32(data, 12)? as usize;
    let table_bytes = n_sections
        .checked_mul(SECTION_ENTRY_BYTES)
        .ok_or_else(|| SnapshotError::MalformedHeader("section count overflows".into()))?;
    let payload_start = HEADER_BYTES
        .checked_add(table_bytes)
        .ok_or(SnapshotError::Truncated)?;
    let payload_end = data.len() - FOOTER_BYTES;
    if payload_start > payload_end {
        return Err(SnapshotError::Truncated);
    }
    let mut sections = Vec::with_capacity(n_sections);
    for i in 0..n_sections {
        let entry = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
        let kind = read_u32(data, entry)?;
        if read_u32(data, entry + 4)? != 0 {
            return Err(SnapshotError::MalformedHeader(format!(
                "section {kind} reserved word is non-zero"
            )));
        }
        let offset = read_u64(data, entry + 8)? as usize;
        let len = read_u64(data, entry + 16)? as usize;
        let crc = read_u64(data, entry + 24)?;
        let end = offset
            .checked_add(len)
            .ok_or(SnapshotError::SectionOutOfBounds { kind })?;
        if offset < payload_start || end > payload_end {
            return Err(SnapshotError::SectionOutOfBounds { kind });
        }
        let bytes = &data[offset..end];
        if crc64(bytes) != crc {
            return Err(SnapshotError::SectionChecksum { kind });
        }
        sections.push(Section { kind, bytes });
    }
    Ok((technique, sections))
}

/// Decodes the stats payload out of verified sections, applying the
/// engine-facing sanity bounds the raw codec does not enforce.
fn decode_stats(
    technique_tag_byte: u8,
    sections: &[Section<'_>],
) -> Result<SpatialHistogram, SnapshotError> {
    let stats = sections
        .iter()
        .find(|s| s.kind == SECTION_STATS)
        .ok_or(SnapshotError::MissingStatsSection)?;
    let hist = SpatialHistogram::from_bytes(stats.bytes)?;
    if hist.num_buckets() > MAX_SNAPSHOT_BUCKETS {
        return Err(SnapshotError::InsaneBucketCount {
            count: hist.num_buckets(),
        });
    }
    let header = technique_name(technique_tag_byte);
    // A tag of 255 means "technique this writer didn't know"; any payload
    // name is acceptable there. Known tags must agree with the payload —
    // disagreement means one of the two was corrupted in a way the
    // checksums cannot see (e.g. a stale header spliced onto a new body).
    if technique_tag_byte != 255 && technique_tag(hist.name()) != technique_tag_byte {
        return Err(SnapshotError::TechniqueMismatch {
            header: header.to_owned(),
            payload: hist.name().to_owned(),
        });
    }
    Ok(hist)
}

impl SpatialHistogram {
    /// Serialises the histogram into the checksummed snapshot container.
    ///
    /// The encoding is deterministic: the same histogram always yields the
    /// same bytes, so snapshot files can be byte-compared in differential
    /// tests.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let payload = self.to_bytes();
        let payload_offset = HEADER_BYTES + SECTION_ENTRY_BYTES; // one section
        let mut buf = Vec::with_capacity(payload_offset + payload.len() + FOOTER_BYTES);
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(technique_tag(self.name()));
        buf.push(0); // reserved
        buf.extend_from_slice(&1u32.to_le_bytes()); // section count
                                                    // Section table entry: stats.
        buf.extend_from_slice(&SECTION_STATS.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        buf.extend_from_slice(&(payload_offset as u64).to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let file_crc = crc64(&buf);
        buf.extend_from_slice(&file_crc.to_le_bytes());
        buf
    }

    /// Decodes a snapshot produced by [`Self::to_snapshot_bytes`], or a
    /// legacy bare codec blob (reported as [`FormatVersion::Legacy`]).
    ///
    /// Total on arbitrary input: every corruption mode — bad magic, torn
    /// write, bit flip, truncation, hostile header, stale section table —
    /// maps to a typed [`SnapshotError`]; this function never panics and
    /// never installs a silently-wrong histogram (checksums cover every
    /// payload byte).
    pub fn from_snapshot_bytes(
        data: &[u8],
    ) -> Result<(SpatialHistogram, SnapshotInfo), SnapshotError> {
        if data.len() >= 4 && &data[..4] == b"MSKH" {
            // Legacy pre-container blob: decode through the codec, apply
            // the same sanity bounds, and flag the format for migration.
            let hist = SpatialHistogram::from_bytes(data)?;
            if hist.num_buckets() > MAX_SNAPSHOT_BUCKETS {
                return Err(SnapshotError::InsaneBucketCount {
                    count: hist.num_buckets(),
                });
            }
            let info = SnapshotInfo {
                version: FormatVersion::Legacy,
                technique: hist.name().to_owned(),
                sections: 1,
                payload_bytes: data.len(),
                total_bytes: data.len(),
                buckets: hist.num_buckets(),
                input_len: hist.input_len(),
            };
            return Ok((hist, info));
        }
        let (tag, sections) = parse_container(data)?;
        let payload_bytes = sections
            .iter()
            .find(|s| s.kind == SECTION_STATS)
            .map_or(0, |s| s.bytes.len());
        let n_sections = sections.len();
        let hist = decode_stats(tag, &sections)?;
        let info = SnapshotInfo {
            version: FormatVersion::Container,
            technique: hist.name().to_owned(),
            sections: n_sections,
            payload_bytes,
            total_bytes: data.len(),
            buckets: hist.num_buckets(),
            input_len: hist.input_len(),
        };
        Ok((hist, info))
    }
}

/// Fully verifies a snapshot without keeping the decoded histogram:
/// structure, checksums, payload decode, and sanity bounds all run, so
/// `verify_snapshot(bytes).is_ok()` implies a later load will succeed.
pub fn verify_snapshot(data: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    SpatialHistogram::from_snapshot_bytes(data).map(|(_, info)| info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_uniform, MinSkewBuilder};
    use minskew_datagen::charminar_with;

    fn sample() -> SpatialHistogram {
        let ds = charminar_with(2_000, 7);
        MinSkewBuilder::new(30).regions(900).build(&ds)
    }

    #[test]
    fn container_round_trip_is_byte_identical() {
        let h = sample();
        let snap = h.to_snapshot_bytes();
        let (back, info) = SpatialHistogram::from_snapshot_bytes(&snap).expect("clean decode");
        assert_eq!(back, h);
        assert_eq!(back.to_snapshot_bytes(), snap, "re-encode drift");
        assert_eq!(info.version, FormatVersion::Container);
        assert_eq!(info.technique, "Min-Skew");
        assert_eq!(info.buckets, h.num_buckets());
        assert_eq!(info.input_len, h.input_len());
        assert_eq!(info.total_bytes, snap.len());
        assert!(verify_snapshot(&snap).is_ok());
    }

    #[test]
    fn legacy_blob_still_loads_with_diagnostic() {
        let h = sample();
        let legacy = h.to_bytes();
        let (back, info) = SpatialHistogram::from_snapshot_bytes(&legacy).expect("legacy shim");
        assert_eq!(back, h);
        assert_eq!(info.version, FormatVersion::Legacy);
        assert!(info.to_string().contains("legacy"), "{info}");
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_harmless() {
        // The container's contract is stronger than the codec's: a valid
        // snapshot with ANY single byte changed must fail to decode (the
        // checksums cover every byte), not just "not panic".
        let snap = sample().to_snapshot_bytes();
        for pos in 0..snap.len() {
            let mut corrupt = snap.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                SpatialHistogram::from_snapshot_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let snap = sample().to_snapshot_bytes();
        for cut in 0..snap.len() {
            let r = SpatialHistogram::from_snapshot_bytes(&snap[..cut]);
            assert!(r.is_err(), "truncation to {cut} bytes went undetected");
        }
    }

    #[test]
    fn torn_zero_tail_is_detected() {
        // A torn write that leaves a prefix valid and the tail zeroed is
        // the classic failure the bare codec could mis-decode; the
        // container must reject it at every tear point.
        let snap = sample().to_snapshot_bytes();
        for at in [16, snap.len() / 3, snap.len() / 2, snap.len() - 9] {
            let mut torn = snap.clone();
            for b in &mut torn[at..] {
                *b = 0;
            }
            assert!(
                SpatialHistogram::from_snapshot_bytes(&torn).is_err(),
                "tear at {at} went undetected"
            );
        }
    }

    #[test]
    fn technique_mismatch_is_detected() {
        let mut snap = sample().to_snapshot_bytes();
        snap[10] = technique_tag("Uniform");
        // Re-seal the checksums the way a buggy (not malicious) rewriter
        // would, so only the semantic cross-check can catch it.
        let end = snap.len() - 8;
        let crc = crc64(&snap[..end]).to_le_bytes();
        snap[end..].copy_from_slice(&crc);
        assert!(matches!(
            SpatialHistogram::from_snapshot_bytes(&snap),
            Err(SnapshotError::TechniqueMismatch { .. })
        ));
    }

    #[test]
    fn arbitrary_byte_soup_never_panics() {
        let mut state = 0x5EED_CAFEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in [0usize, 1, 7, 8, 15, 16, 47, 48, 100, 4096] {
            let soup: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = SpatialHistogram::from_snapshot_bytes(&soup);
            let _ = verify_snapshot(&soup);
        }
        // Byte soup behind a valid magic exercises the header paths.
        for len in [0usize, 8, 24, 48, 200] {
            let mut soup: Vec<u8> = SNAPSHOT_MAGIC.to_vec();
            soup.extend((0..len).map(|_| next()));
            let _ = SpatialHistogram::from_snapshot_bytes(&soup);
        }
    }

    #[test]
    fn unknown_sections_are_skipped() {
        // Hand-build a container with an extra unknown section; an old
        // reader must verify and skip it.
        let h = build_uniform(&charminar_with(200, 3));
        let payload = h.to_bytes();
        let extra = b"future-section-payload";
        let payload_offset = HEADER_BYTES + 2 * SECTION_ENTRY_BYTES;
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(technique_tag(h.name()));
        buf.push(0);
        buf.extend_from_slice(&2u32.to_le_bytes());
        for (kind, offset, bytes) in [
            (SECTION_STATS, payload_offset, payload.as_slice()),
            (0xBEEF, payload_offset + payload.len(), extra.as_slice()),
        ] {
            buf.extend_from_slice(&kind.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&(offset as u64).to_le_bytes());
            buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            buf.extend_from_slice(&crc64(bytes).to_le_bytes());
        }
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(extra);
        let crc = crc64(&buf).to_le_bytes();
        buf.extend_from_slice(&crc);
        let (back, info) = SpatialHistogram::from_snapshot_bytes(&buf).expect("skips unknown");
        assert_eq!(back, h);
        assert_eq!(info.sections, 2);
        // ...but a corrupted unknown section still fails verification.
        let extra_at = payload_offset + payload.len();
        buf[extra_at] ^= 0xFF;
        let end = buf.len() - 8;
        let reseal = crc64(&buf[..end]).to_le_bytes();
        buf[end..].copy_from_slice(&reseal);
        assert!(matches!(
            SpatialHistogram::from_snapshot_bytes(&buf),
            Err(SnapshotError::SectionChecksum { kind: 0xBEEF })
        ));
    }

    #[test]
    fn version_and_magic_are_checked() {
        let mut wrong_version = sample().to_snapshot_bytes();
        wrong_version[8] = 99;
        let end = wrong_version.len() - 8;
        let crc = crc64(&wrong_version[..end]).to_le_bytes();
        wrong_version[end..].copy_from_slice(&crc);
        assert_eq!(
            SpatialHistogram::from_snapshot_bytes(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
        assert_eq!(
            SpatialHistogram::from_snapshot_bytes(b"what is this").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SpatialHistogram::from_snapshot_bytes(b"").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn crc64_matches_reference_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn technique_tags_round_trip() {
        for name in [
            "Min-Skew",
            "Equi-Area",
            "Equi-Count",
            "Uniform",
            "R-tree",
            "Grid",
        ] {
            assert_eq!(technique_name(technique_tag(name)), name);
        }
        assert_eq!(technique_name(technique_tag("Sampling")), "other");
    }
}
