//! A flat, dependency-free spatial directory over histogram buckets, making
//! `estimate_count` sub-linear in the bucket count on the serving path.
//!
//! # The pruning contract
//!
//! The linear reference path ([`crate::SpatialHistogram::estimate_count`])
//! sums [`Bucket::estimate`] over **every** bucket; a bucket contributes a
//! non-zero term only when the *extended* query (the query grown by that
//! bucket's own `W̄/H̄` slack under the active [`ExtensionRule`]) intersects
//! the bucket's bounding box. The index exploits that: it places each
//! non-empty bucket's raw MBR into a uniform grid directory, and at lookup
//! time extends the query **once** by the *maximum* per-bucket extension
//! amounts — using the exact same [`Rect::expanded`] code path the
//! per-bucket estimate uses — and gathers only the buckets whose cells the
//! extended query touches.
//!
//! Why this is bit-identical to the linear scan (proof sketch, mirrored in
//! DESIGN.md §9):
//!
//! 1. **No false negatives.** IEEE-754 addition/subtraction are monotone,
//!    so for per-bucket amounts `ex_b <= max_ex` (a maximum over the very
//!    same computed values) the *computed* rectangle
//!    `query.expanded(ex_b, ey_b)` is contained in the computed
//!    `query.expanded(max_ex, max_ey)`. A bucket whose estimate is non-zero
//!    therefore intersects the max-extended query, whose cell range overlaps
//!    the bucket's cell range because cell coordinates are a monotone
//!    function of position. Every such bucket is gathered.
//! 2. **False positives are exact no-ops.** A gathered bucket still goes
//!    through the unchanged [`Bucket::estimate`] arithmetic; if the query
//!    misses it, the term is exactly `+0.0`, and `s + 0.0 == s` bit-for-bit
//!    for every non-negative partial sum `s` (all bucket estimates are
//!    non-negative products of clamped fractions). The one wrinkle is
//!    Rust's fold identity: `f64::sum()` starts from `-0.0`, so a fold
//!    that skips *every* term ends at `-0.0` where the full fold over
//!    all-zero terms ends at `+0.0`; the caller re-adds a single `+0.0`
//!    (one of the skipped terms) to apply exactly that correction — see
//!    [`crate::SpatialHistogram::estimate_count_indexed`].
//! 3. **Order is preserved.** Candidates are deduplicated and sorted into
//!    ascending bucket order before summation, so the surviving terms are
//!    added in exactly the order the linear scan adds them.
//!
//! Empty buckets (`count == 0.0`) estimate to `0.0` unconditionally and are
//! excluded from the directory outright. Queries whose extended footprint
//! covers most of the grid fall back to the linear scan itself — which is
//! trivially bit-identical — so the indexed path never does more work than
//! `O(B)` plus a small constant.

use minskew_geom::Rect;

use crate::{Bucket, ExtensionRule};

/// Grid sizing target: aim for this many cells per non-empty bucket.
const TARGET_CELLS_PER_BUCKET: usize = 4;
/// Directory size cap: keeps the CSR arrays small even for huge budgets.
const MAX_CELLS: usize = 1 << 16;
/// Rebuild the grid coarser when heavily-overlapping buckets blow up the
/// per-cell lists past this many entries per bucket on average.
const MAX_ENTRIES_PER_BUCKET: usize = 32;

/// Reusable per-caller scratch space for index lookups.
///
/// Holding the candidate buffer and the visited stamps outside the index
/// makes lookups allocation-free once the scratch is warm, and lets many
/// threads share one immutable [`BucketIndex`] with a scratch per worker.
#[derive(Debug, Clone, Default)]
pub struct IndexScratch {
    /// Deduplicated candidate bucket ids for the current query.
    candidates: Vec<u32>,
    /// Sparse term buffer (dense per-bucket slots plus an id-space
    /// bitmask) filled by the kernel's block-pruned scan
    /// ([`crate::BucketPlane::accumulate_pruned`]).
    pub(crate) terms: crate::kernel::TermBuf,
    /// Stamp per bucket id; `visited[b] == stamp` means already gathered.
    visited: Vec<u32>,
    /// Current query's stamp (wraps safely; see [`IndexScratch::begin`]).
    stamp: u32,
}

impl IndexScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// reused for every subsequent lookup.
    pub fn new() -> IndexScratch {
        IndexScratch::default()
    }

    /// Prepares the scratch for a histogram with `num_buckets` buckets.
    fn begin(&mut self, num_buckets: usize) {
        if self.visited.len() < num_buckets {
            self.visited.resize(num_buckets, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // One wrap every 2^32 queries: reset the stamps and restart.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.stamp = 1;
        }
        self.candidates.clear();
    }

    /// Marks a bucket as gathered; returns `true` the first time.
    #[inline]
    fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }
}

/// Result of a candidate lookup.
#[derive(Debug)]
pub enum CandidateSet<'a> {
    /// The extended query misses every non-empty bucket: the estimate is
    /// exactly `0.0` (the sum the linear scan would produce).
    Pruned,
    /// The query covers most of the directory; the caller should run the
    /// plain linear scan (bit-identical by definition).
    Scan,
    /// Deduplicated candidate bucket ids in **ascending** order. Every
    /// bucket with a non-zero estimate is present; extra ids estimate to
    /// exactly `0.0`.
    Subset(&'a [u32]),
}

/// A static uniform-grid directory over the non-empty buckets of a
/// histogram, built for one [`ExtensionRule`].
///
/// Layout: a `gx × gy` grid over the union of the bucket MBRs, with a CSR
/// (`cell_starts`/`cell_buckets`) mapping each cell to the sorted ids of
/// the buckets overlapping it. See the module docs for the bit-identical
/// pruning contract.
#[derive(Debug, Clone)]
pub struct BucketIndex {
    /// Union of the non-empty buckets' MBRs (meaningless when `empty`).
    bounds: Rect,
    /// Grid resolution.
    gx: u32,
    gy: u32,
    /// Precomputed `gx / bounds.width()` (0.0 for a degenerate axis).
    scale_x: f64,
    scale_y: f64,
    /// CSR offsets, length `gx * gy + 1`.
    cell_starts: Vec<u32>,
    /// Concatenated per-cell bucket-id lists, ascending within each cell.
    cell_buckets: Vec<u32>,
    /// Maximum per-bucket extension amounts under the build rule.
    max_ex: f64,
    max_ey: f64,
    /// Number of buckets in the histogram the index was built over.
    num_buckets: usize,
    /// `true` when no bucket has a non-zero count.
    empty: bool,
}

impl BucketIndex {
    /// Builds the directory over `buckets` for estimation under `rule`.
    pub fn build(buckets: &[Bucket], rule: ExtensionRule) -> BucketIndex {
        let active: Vec<u32> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count != 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        let Some((&first, rest)) = active.split_first() else {
            return BucketIndex {
                bounds: Rect::from_point(minskew_geom::Point::new(0.0, 0.0)),
                gx: 1,
                gy: 1,
                scale_x: 0.0,
                scale_y: 0.0,
                cell_starts: vec![0, 0],
                cell_buckets: Vec::new(),
                max_ex: 0.0,
                max_ey: 0.0,
                num_buckets: buckets.len(),
                empty: true,
            };
        };
        let mut bounds = buckets[first as usize].mbr;
        let mut max_ex = 0.0f64;
        let mut max_ey = 0.0f64;
        for &i in std::iter::once(&first).chain(rest) {
            let b = &buckets[i as usize];
            bounds = bounds.union(&b.mbr);
            let (ex, ey) = rule.amounts(b.avg_width, b.avg_height);
            // f64::max ignores NaN operands: a bucket with corrupt average
            // dimensions estimates to 0.0 unconditionally (its extended
            // query is a NaN rectangle that intersects nothing), so it is
            // safe for it not to influence the lookup extension.
            max_ex = max_ex.max(ex);
            max_ey = max_ey.max(ey);
        }

        let target = active
            .len()
            .saturating_mul(TARGET_CELLS_PER_BUCKET)
            .clamp(1, MAX_CELLS);
        let mut side = (target as f64).sqrt().ceil().max(1.0) as u32;
        loop {
            let index = Self::build_at(buckets, &active, bounds, side, max_ex, max_ey);
            // Heavily overlapping buckets (e.g. R-tree partitionings) can
            // make every bucket span many cells; coarsen until the CSR
            // stays linear in the bucket count.
            if side <= 1 || index.cell_buckets.len() <= MAX_ENTRIES_PER_BUCKET * active.len().max(1)
            {
                return index;
            }
            side = (side / 2).max(1);
        }
    }

    fn build_at(
        buckets: &[Bucket],
        active: &[u32],
        bounds: Rect,
        side: u32,
        max_ex: f64,
        max_ey: f64,
    ) -> BucketIndex {
        let (gx, gy) = (side, side);
        let scale_x = if bounds.width() > 0.0 {
            gx as f64 / bounds.width()
        } else {
            0.0
        };
        let scale_y = if bounds.height() > 0.0 {
            gy as f64 / bounds.height()
        } else {
            0.0
        };
        let mut index = BucketIndex {
            bounds,
            gx,
            gy,
            scale_x,
            scale_y,
            cell_starts: vec![0u32; (gx as usize * gy as usize) + 1],
            cell_buckets: Vec::new(),
            max_ex,
            max_ey,
            num_buckets: buckets.len(),
            empty: false,
        };
        // Two-pass CSR fill: count, prefix-sum, then place. Buckets are
        // visited in ascending id order, so each cell's list ends sorted.
        for &i in active {
            let (cx0, cx1, cy0, cy1) = index.cell_span(&buckets[i as usize].mbr);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    index.cell_starts[(cy as usize * gx as usize + cx as usize) + 1] += 1;
                }
            }
        }
        for c in 1..index.cell_starts.len() {
            index.cell_starts[c] += index.cell_starts[c - 1];
        }
        index.cell_buckets = vec![0u32; *index.cell_starts.last().unwrap_or(&0) as usize];
        let mut cursors: Vec<u32> = index.cell_starts[..index.cell_starts.len() - 1].to_vec();
        for &i in active {
            let (cx0, cx1, cy0, cy1) = index.cell_span(&buckets[i as usize].mbr);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let cell = cy as usize * gx as usize + cx as usize;
                    index.cell_buckets[cursors[cell] as usize] = i;
                    cursors[cell] += 1;
                }
            }
        }
        index
    }

    /// Cell coordinate of `x` along the x axis, clamped into the grid.
    ///
    /// Monotone non-decreasing in `x` (subtraction, multiplication by a
    /// non-negative constant, `floor`, and clamping are all monotone under
    /// IEEE-754 rounding), which is what makes cell-range overlap a sound
    /// necessary condition for rectangle intersection.
    #[inline]
    fn cell_x(&self, x: f64) -> u32 {
        let t = (x - self.bounds.lo.x) * self.scale_x;
        // Float→int casts saturate, so ±∞ clamp to the grid edges.
        (t.floor().max(0.0) as u32).min(self.gx - 1)
    }

    /// Cell coordinate of `y` along the y axis (see [`BucketIndex::cell_x`]).
    #[inline]
    fn cell_y(&self, y: f64) -> u32 {
        let t = (y - self.bounds.lo.y) * self.scale_y;
        (t.floor().max(0.0) as u32).min(self.gy - 1)
    }

    /// Inclusive cell span of a rectangle.
    #[inline]
    fn cell_span(&self, r: &Rect) -> (u32, u32, u32, u32) {
        (
            self.cell_x(r.lo.x),
            self.cell_x(r.hi.x),
            self.cell_y(r.lo.y),
            self.cell_y(r.hi.y),
        )
    }

    /// Gathers the candidate buckets for `query`, reusing `scratch`.
    ///
    /// See [`CandidateSet`] for the three outcomes and the module docs for
    /// why summing [`Bucket::estimate`] over the candidates reproduces the
    /// full linear scan bit-for-bit.
    pub fn candidates<'a>(&self, query: &Rect, scratch: &'a mut IndexScratch) -> CandidateSet<'a> {
        if self.empty {
            return CandidateSet::Pruned;
        }
        // The one query-side extension, through the exact code path every
        // per-bucket estimate uses (`Rect::expanded`), with the maximum
        // amounts: computed containment of every per-bucket extension.
        let extended = query.expanded(self.max_ex, self.max_ey);
        if !extended.intersects(&self.bounds) {
            return CandidateSet::Pruned;
        }
        let (cx0, cx1, cy0, cy1) = self.cell_span(&extended);
        let span_cells = (cx1 - cx0 + 1) as usize * (cy1 - cy0 + 1) as usize;
        let total_cells = self.gx as usize * self.gy as usize;
        if span_cells * 2 >= total_cells {
            return CandidateSet::Scan;
        }
        scratch.begin(self.num_buckets);
        for cy in cy0..=cy1 {
            let row = cy as usize * self.gx as usize;
            for cx in cx0..=cx1 {
                let cell = row + cx as usize;
                let lo = self.cell_starts[cell] as usize;
                let hi = self.cell_starts[cell + 1] as usize;
                for &id in &self.cell_buckets[lo..hi] {
                    if scratch.mark(id) {
                        scratch.candidates.push(id);
                    }
                }
            }
        }
        // Ascending bucket order = the linear scan's summation order.
        scratch.candidates.sort_unstable();
        CandidateSet::Subset(&scratch.candidates)
    }

    /// Number of directory cells.
    pub fn cells(&self) -> usize {
        self.gx as usize * self.gy as usize
    }

    /// Total CSR entries (sum of per-cell list lengths).
    pub fn entries(&self) -> usize {
        self.cell_buckets.len()
    }

    /// The query-side extension amounts applied at lookup time.
    pub fn max_extension(&self) -> (f64, f64) {
        (self.max_ex, self.max_ey)
    }

    /// Heap bytes held by the directory's CSR arrays, for serving-footprint
    /// accounting ([`crate::SpatialHistogram::serving_footprint`]).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<u32>() * (self.cell_starts.capacity() + self.cell_buckets.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_buckets(side: usize) -> Vec<Bucket> {
        let mut out = Vec::new();
        for iy in 0..side {
            for ix in 0..side {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                out.push(Bucket {
                    mbr: Rect::new(x, y, x + 10.0, y + 10.0),
                    count: 5.0,
                    avg_width: 1.0,
                    avg_height: 1.0,
                });
            }
        }
        out
    }

    fn linear(buckets: &[Bucket], q: &Rect, rule: ExtensionRule) -> f64 {
        buckets.iter().map(|b| b.estimate(q, rule)).sum()
    }

    /// Mirrors `SpatialHistogram::estimate_count_indexed`, including the
    /// `+ 0.0` identity-correction for skipped terms (all these tests use
    /// at least one bucket).
    fn indexed(buckets: &[Bucket], q: &Rect, rule: ExtensionRule) -> f64 {
        let index = BucketIndex::build(buckets, rule);
        let mut scratch = IndexScratch::new();
        let partial: f64 = match index.candidates(q, &mut scratch) {
            CandidateSet::Pruned => -0.0,
            CandidateSet::Scan => return linear(buckets, q, rule),
            CandidateSet::Subset(ids) => ids
                .iter()
                .map(|&i| buckets[i as usize].estimate(q, rule))
                .sum(),
        };
        partial + 0.0
    }

    #[test]
    fn small_query_gathers_few_and_matches_linear() {
        let buckets = grid_buckets(16); // 256 buckets over [0,160]^2
        let rule = ExtensionRule::Minkowski;
        let index = BucketIndex::build(&buckets, rule);
        let mut scratch = IndexScratch::new();
        let q = Rect::new(33.0, 41.0, 47.0, 55.0);
        match index.candidates(&q, &mut scratch) {
            CandidateSet::Subset(ids) => {
                assert!(!ids.is_empty() && ids.len() < 40, "got {}", ids.len());
                assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            }
            other => panic!("expected subset, got {other:?}"),
        }
        let a = linear(&buckets, &q, rule);
        let b = indexed(&buckets, &q, rule);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a > 0.0);
    }

    #[test]
    fn disjoint_and_covering_queries_match_linear() {
        let buckets = grid_buckets(8);
        for rule in [
            ExtensionRule::Minkowski,
            ExtensionRule::PaperLiteral,
            ExtensionRule::None,
        ] {
            for q in [
                Rect::new(-500.0, -500.0, -400.0, -400.0), // disjoint
                Rect::new(-10.0, -10.0, 200.0, 200.0),     // covers all
                Rect::new(79.9, 0.0, 80.1, 80.0),          // bucket seam
                Rect::from_point(minskew_geom::Point::new(40.0, 40.0)), // corner point
            ] {
                assert_eq!(
                    linear(&buckets, &q, rule).to_bits(),
                    indexed(&buckets, &q, rule).to_bits(),
                    "rule={rule:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn empty_and_zero_count_histograms_prune_everything() {
        let index = BucketIndex::build(&[], ExtensionRule::Minkowski);
        let mut scratch = IndexScratch::new();
        assert!(matches!(
            index.candidates(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut scratch),
            CandidateSet::Pruned
        ));
        let dead = vec![
            Bucket {
                mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                count: 0.0,
                avg_width: 1.0,
                avg_height: 1.0,
            };
            4
        ];
        let index = BucketIndex::build(&dead, ExtensionRule::Minkowski);
        assert!(matches!(
            index.candidates(&Rect::new(0.0, 0.0, 10.0, 10.0), &mut scratch),
            CandidateSet::Pruned
        ));
    }

    #[test]
    fn degenerate_point_pile_directory_works() {
        let buckets = vec![Bucket {
            mbr: Rect::from_point(minskew_geom::Point::new(5.0, 5.0)),
            count: 64.0,
            avg_width: 0.0,
            avg_height: 0.0,
        }];
        let rule = ExtensionRule::Minkowski;
        for q in [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(6.0, 6.0, 10.0, 10.0),
            Rect::from_point(minskew_geom::Point::new(5.0, 5.0)),
        ] {
            assert_eq!(
                linear(&buckets, &q, rule).to_bits(),
                indexed(&buckets, &q, rule).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn scratch_reuse_and_stamp_wrap() {
        let buckets = grid_buckets(4);
        let index = BucketIndex::build(&buckets, ExtensionRule::Minkowski);
        let mut scratch = IndexScratch::new();
        // Force the wrap path: pretend 2^32 - 2 queries already ran.
        scratch.stamp = u32::MAX - 1;
        let q = Rect::new(0.0, 0.0, 15.0, 15.0);
        let expect = linear(&buckets, &q, ExtensionRule::Minkowski);
        for _ in 0..4 {
            let got: f64 = match index.candidates(&q, &mut scratch) {
                CandidateSet::Subset(ids) => ids
                    .iter()
                    .map(|&i| buckets[i as usize].estimate(&q, ExtensionRule::Minkowski))
                    .sum(),
                other => panic!("expected subset, got {other:?}"),
            };
            assert_eq!(got.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn overlapping_buckets_coarsen_but_stay_correct() {
        // Every bucket covers the whole extent: the CSR blowup guard must
        // coarsen the grid rather than build a quadratic directory.
        let buckets = vec![
            Bucket {
                mbr: Rect::new(0.0, 0.0, 100.0, 100.0),
                count: 1.0,
                avg_width: 0.5,
                avg_height: 0.5,
            };
            200
        ];
        let index = BucketIndex::build(&buckets, ExtensionRule::Minkowski);
        assert!(index.entries() <= 32 * 200 || index.cells() == 1);
        let q = Rect::new(10.0, 10.0, 20.0, 20.0);
        assert_eq!(
            linear(&buckets, &q, ExtensionRule::Minkowski).to_bits(),
            indexed(&buckets, &q, ExtensionRule::Minkowski).to_bits()
        );
    }
}
