//! A fixed uniform-grid histogram (equi-width baseline).
//!
//! Not one of the paper's techniques, but the natural "do nothing clever"
//! bucket layout: tile the input MBR with a `g × g` grid, one bucket per
//! tile. Comparing Min-Skew against this shows how much of its win comes
//! from *adaptive* bucket placement rather than from bucketisation itself.

use minskew_data::{Dataset, DensityGrid};

use crate::error::BuildError;
use crate::{Bucket, ExtensionRule, SpatialHistogram};

/// Fallible counterpart of [`build_grid`].
pub fn try_build_grid(data: &Dataset, buckets: usize) -> Result<SpatialHistogram, BuildError> {
    if buckets == 0 {
        return Err(BuildError::ZeroBucketBudget);
    }
    if data.is_empty() {
        return Err(BuildError::EmptyDataset);
    }
    if !data.stats().mbr.is_finite() {
        return Err(BuildError::NonFiniteMbr);
    }
    Ok(build_grid(data, buckets))
}

/// Builds a uniform `⌊√buckets⌋ × ⌊√buckets⌋` grid histogram.
///
/// Rectangles are assigned to the tile containing their centre; empty tiles
/// are dropped (they estimate zero and would waste quota).
///
/// # Panics
///
/// Panics if `buckets == 0`; use [`try_build_grid`] to handle that as an
/// error.
pub fn build_grid(data: &Dataset, buckets: usize) -> SpatialHistogram {
    assert!(buckets >= 1, "need at least one bucket");
    if data.is_empty() {
        return SpatialHistogram::from_parts("Grid", vec![], 0, ExtensionRule::default());
    }
    let side = ((buckets as f64).sqrt().floor() as usize).max(1);
    let mbr = data.stats().mbr;
    // Reuse the density grid's geometry for tiling and point location; the
    // densities themselves are not needed here.
    let grid = DensityGrid::build(std::iter::empty::<&minskew_geom::Rect>(), mbr, side, side);
    let cells = grid.nx() * grid.ny();
    let mut count = vec![0f64; cells];
    let mut sum_w = vec![0f64; cells];
    let mut sum_h = vec![0f64; cells];
    for r in data.rects() {
        let (ix, iy) = grid.cell_containing(r.center());
        let c = iy * grid.nx() + ix;
        count[c] += 1.0;
        sum_w[c] += r.width();
        sum_h[c] += r.height();
    }
    let mut out = Vec::new();
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let c = iy * grid.nx() + ix;
            if count[c] == 0.0 {
                continue;
            }
            out.push(Bucket {
                mbr: grid.cell_rect(ix, iy),
                count: count[c],
                avg_width: sum_w[c] / count[c],
                avg_height: sum_h[c] / count[c],
            });
        }
    }
    SpatialHistogram::from_parts("Grid", out, data.len(), ExtensionRule::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialEstimator;
    use minskew_datagen::{charminar_with, uniform_rects};
    use minskew_geom::Rect as R;

    #[test]
    fn covers_input_within_budget() {
        let ds = charminar_with(5_000, 1);
        let h = build_grid(&ds, 100);
        assert!(h.num_buckets() <= 100);
        assert!((h.total_count() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn accurate_on_uniform_data() {
        let ds = uniform_rects(20_000, R::new(0.0, 0.0, 1000.0, 1000.0), 4.0, 4.0, 2);
        let h = build_grid(&ds, 100);
        let q = R::new(130.0, 130.0, 580.0, 580.0);
        let actual = ds.count_intersecting(&q) as f64;
        let e = h.estimate_count(&q);
        assert!((e - actual).abs() / actual < 0.1, "est {e} vs {actual}");
    }

    #[test]
    fn minskew_beats_grid_on_skewed_data() {
        let ds = charminar_with(20_000, 3);
        let grid = build_grid(&ds, 50);
        let minskew = crate::MinSkewBuilder::new(50).regions(2_500).build(&ds);
        let queries: Vec<R> = (0..15)
            .map(|i| {
                let t = i as f64 * 600.0;
                R::new(t, t, t + 800.0, t + 800.0)
            })
            .collect();
        let err = |est: &dyn SpatialEstimator| {
            let mut num = 0.0;
            let mut den = 0.0;
            for q in &queries {
                let actual = ds.count_intersecting(q) as f64;
                num += (est.estimate_count(q) - actual).abs();
                den += actual;
            }
            num / den
        };
        assert!(
            err(&minskew) < err(&grid),
            "Min-Skew {} vs Grid {}",
            err(&minskew),
            err(&grid)
        );
    }

    #[test]
    fn empty_input() {
        let h = build_grid(&Dataset::new(vec![]), 10);
        assert_eq!(h.num_buckets(), 0);
    }
}
