//! Typed errors for histogram construction and estimation.
//!
//! Every `try_*` constructor in this crate (and the engine layered above it)
//! reports failure through [`BuildError`] instead of panicking, so callers —
//! most importantly `minskew-engine`'s degradation ladder — can react to
//! *which* precondition failed: retry with a smaller bucket budget on
//! [`BuildError::GridTooCoarse`], fall back to the uniform estimator on
//! [`BuildError::EmptyDataset`], surface configuration mistakes immediately,
//! and so on. The legacy panicking constructors remain as thin wrappers for
//! code that prefers to crash on programmer error.

use crate::CodecError;

/// Why a histogram or partitioning could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The input contained no rectangles; there is nothing to summarise.
    ///
    /// The lenient constructors return an empty histogram in this case; the
    /// strict `try_*` paths report it so callers can distinguish "no data
    /// yet" from a real summary.
    EmptyDataset,
    /// The bucket budget was zero. Every technique needs at least one
    /// bucket to store anything.
    ZeroBucketBudget,
    /// The density grid is coarser than the requested bucket count: a
    /// `side × side` grid can yield at most `side²` buckets, so a budget of
    /// `buckets` over `regions` grid cells is unreachable. The engine reacts
    /// by degrading the budget to the achievable count.
    GridTooCoarse {
        /// Number of grid cells actually available (`side²` after alignment).
        regions: usize,
        /// The unreachable bucket budget that was requested.
        buckets: usize,
    },
    /// The input's minimum bounding rectangle contains NaN or infinite
    /// coordinates; densities and skews computed over it would be garbage.
    NonFiniteMbr,
    /// A tuning parameter was out of its documented range (description
    /// inside). Distinct from the data-dependent variants above: this is a
    /// caller bug, and the engine does not retry it.
    InvalidConfig(String),
    /// A persisted summary failed to decode.
    Corrupt(CodecError),
    /// The underlying rectangle source failed mid-sweep (I/O error, file
    /// changed since validation, injected fault).
    Source(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyDataset => write!(f, "input dataset is empty"),
            BuildError::ZeroBucketBudget => write!(f, "bucket budget must be at least 1"),
            BuildError::GridTooCoarse { regions, buckets } => write!(
                f,
                "density grid has only {regions} cells, cannot reach {buckets} buckets"
            ),
            BuildError::NonFiniteMbr => {
                write!(f, "input bounding box has non-finite coordinates")
            }
            BuildError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            BuildError::Corrupt(e) => write!(f, "corrupt persisted summary: {e}"),
            BuildError::Source(why) => write!(f, "rectangle source failed: {why}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for BuildError {
    fn from(e: CodecError) -> BuildError {
        BuildError::Corrupt(e)
    }
}

/// Why an estimate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The query rectangle contains NaN or infinite coordinates.
    NonFiniteQuery,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::NonFiniteQuery => {
                write!(f, "query rectangle has non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            BuildError::EmptyDataset.to_string(),
            BuildError::ZeroBucketBudget.to_string(),
            BuildError::GridTooCoarse {
                regions: 4,
                buckets: 100,
            }
            .to_string(),
            BuildError::NonFiniteMbr.to_string(),
            BuildError::InvalidConfig("refinements > 16".into()).to_string(),
            BuildError::Corrupt(CodecError::BadMagic).to_string(),
            BuildError::Source("disk on fire".into()).to_string(),
            EstimateError::NonFiniteQuery.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(BuildError::GridTooCoarse {
            regions: 4,
            buckets: 100
        }
        .to_string()
        .contains("4"));
    }

    #[test]
    fn codec_error_converts_and_chains() {
        let e: BuildError = CodecError::Truncated.into();
        assert_eq!(e, BuildError::Corrupt(CodecError::Truncated));
        assert!(std::error::Error::source(&e).is_some());
    }
}
