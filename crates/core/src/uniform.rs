//! The single-bucket uniformity-assumption estimator (§3.1).

use minskew_data::Dataset;

use crate::error::BuildError;
use crate::{Bucket, ExtensionRule, SpatialHistogram};

/// Fallible counterpart of [`build_uniform`].
///
/// An empty dataset is *not* an error here — the uniform estimator is the
/// engine's degradation floor and must be constructible in every state —
/// but a non-finite bounding box still is.
pub fn try_build_uniform(data: &Dataset) -> Result<SpatialHistogram, BuildError> {
    if !data.is_empty() && !data.stats().mbr.is_finite() {
        return Err(BuildError::NonFiniteMbr);
    }
    Ok(build_uniform(data))
}

/// Builds the *Uniform* technique: one bucket spanning the input MBR, with
/// the global average rectangle dimensions.
///
/// This is the spatial analogue of the classic relational uniform-
/// distribution assumption [SAC+79]; the paper uses it as the floor
/// baseline and shows 57–80 % error on real data. Point queries estimate
/// `N·W̄·H̄ / Area(T)`, which for identically-sized rectangles equals the
/// paper's `TA / Area(T)` average.
pub fn build_uniform(data: &Dataset) -> SpatialHistogram {
    let mut build_clock = minskew_obs::Stopwatch::start();
    let s = data.stats();
    let bucket = Bucket {
        mbr: s.mbr,
        count: s.n as f64,
        avg_width: s.avg_width,
        avg_height: s.avg_height,
    };
    let buckets = if s.n == 0 { vec![] } else { vec![bucket] };
    let hist = SpatialHistogram::from_parts("Uniform", buckets, s.n, ExtensionRule::default());
    crate::buildobs::record_build(&hist, build_clock.lap());
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialEstimator;
    use minskew_datagen::uniform_rects;
    use minskew_geom::{Point, Rect};

    #[test]
    fn accurate_on_truly_uniform_data() {
        let space = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let ds = uniform_rects(20_000, space, 10.0, 10.0, 1);
        let est = build_uniform(&ds);
        // Interior range query: estimate within ~10% of the truth.
        let q = Rect::new(200.0, 200.0, 500.0, 600.0);
        let actual = ds.count_intersecting(&q) as f64;
        let e = est.estimate_count(&q);
        assert!(
            (e - actual).abs() / actual < 0.1,
            "estimate {e} vs actual {actual}"
        );
    }

    #[test]
    fn point_query_matches_ta_over_area() {
        let space = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let ds = uniform_rects(10_000, space, 20.0, 10.0, 2);
        let est = build_uniform(&ds);
        let q = Rect::from_point(Point::new(500.0, 500.0));
        let s = ds.stats();
        let expected = s.total_area / s.mbr.area();
        let e = est.estimate_count(&q);
        assert!(
            (e - expected).abs() / expected < 0.05,
            "point estimate {e}, TA/Area {expected}"
        );
    }

    #[test]
    fn single_bucket_and_size() {
        let ds = uniform_rects(100, Rect::new(0.0, 0.0, 10.0, 10.0), 1.0, 1.0, 3);
        let est = build_uniform(&ds);
        assert_eq!(est.num_buckets(), 1);
        assert_eq!(est.summary_bytes(), Bucket::SIZE_BYTES);
        // The serving footprint additionally counts the eagerly seeded
        // extension table (and, once serving forces them, index + plane).
        assert_eq!(est.size_bytes(), est.serving_footprint().total());
        assert!(est.size_bytes() >= est.summary_bytes());
        assert_eq!(est.name(), "Uniform");
    }

    #[test]
    fn empty_dataset() {
        let est = build_uniform(&minskew_data::Dataset::new(vec![]));
        assert_eq!(est.num_buckets(), 0);
        assert_eq!(est.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }
}
