//! The structure-of-arrays clip-and-accumulate kernel behind the serving
//! hot path.
//!
//! # Why a kernel plane
//!
//! The reference estimator folds [`Bucket::estimate_with_extension`] over an
//! AoS `Vec<Bucket>`: every bucket costs two early-exit branches, a `Rect`
//! construction, and scattered loads across a 56-byte struct. Once the
//! [`crate::BucketIndex`] has pruned what it can, that per-bucket cost *is*
//! the serving floor (BENCH_estimate.json: ~1x indexed speedup at 50
//! buckets). [`BucketPlane`] stores the same nine per-bucket words
//! (`x1/y1/x2/y2/count/avg_w/avg_h/ex/ey`) as separate contiguous `f64`
//! slices so the clip-and-accumulate loop streams cache lines instead of
//! striding structs, and rewrites the loop in a branchless
//! min/max/clamp-to-zero form that LLVM can autovectorize.
//!
//! # The bit-identity contract
//!
//! Every accumulation in this module is **bit-identical** to the reference
//! AoS fold (`buckets.iter().map(estimate_with_extension).sum::<f64>()`,
//! which folds from Rust's `f64` additive identity `-0.0`). That is what
//! lets the kernel serve underneath every existing differential contract
//! (serving, sharded, parallel, wire-protocol goldens) without moving a
//! single bit. The derivation:
//!
//! 1. **The clip arithmetic is the same arithmetic.** For bucket `i` the
//!    reference computes `query.expanded(ex, ey)` (centre ± clamped
//!    half-extents), an `intersects` test, per-axis overlaps
//!    `(ehx.min(x2) - elx.max(x1)).max(0.0)`, and per-axis fractions
//!    `clamp(overlap/extent, 0, 1)` (degenerate axes count as 1). The
//!    kernel performs the *identical* operations in the identical order on
//!    the plane's columns — only the memory layout changed, so every term
//!    `t_i` matches the reference term bit for bit (IEEE-754 operations are
//!    deterministic).
//! 2. **Skipped zero terms are reconstructed exactly.** A strict in-order
//!    fold `-0.0 + t_0 + … + t_{n-1}` would serialise one `addsd` per
//!    bucket (~4 cycles each) even though almost every term of a selective
//!    query is zero. The kernel instead adds only the non-zero terms — in
//!    the same order — and repairs the one observable difference: IEEE-754
//!    addition of zeros. Adding `t = -0.0` never changes the accumulator;
//!    adding `t = +0.0` changes it only when it still holds `-0.0` (the
//!    fold identity), turning it into `+0.0`. So the skip-fold equals the
//!    strict fold **except** when the skip-fold ends at `-0.0` and at least
//!    one skipped term was `+0.0` — exactly repaired by a final `acc + 0.0`
//!    guarded by a "saw a skipped `+0.0`" flag.
//! 3. **Skipped-term signs are tracked without computing the terms.** A
//!    bucket is skipped when the branchless filter proves its term is some
//!    zero: the extended query misses the MBR (the reference early-returns
//!    literal `+0.0`), the count is `±0.0` (reference returns `+0.0`), or
//!    an axis with positive extent has zero overlap (the term is a product
//!    with a `+0.0` factor, so its sign is the sign of `count`). Hence a
//!    skipped term is `-0.0` **iff** the extended query intersects the MBR
//!    and `count < 0.0`; every other skipped term is `+0.0`. Buckets the
//!    filter cannot prove zero (including products that *underflow* to
//!    zero) compute the full term and re-test `t != 0.0`, so the flag is
//!    exact for them too.
//!
//! `count == -0.0` and NaN deserve a note: the filter treats `-0.0` counts
//! as zero-count buckets (`c != 0.0` is false) and records a `+0.0` skipped
//! term, matching the reference's literal `+0.0` early return. NaN
//! extension amounts collapse `(qhw + ex).max(0.0)` to `0.0` in both paths
//! (`f64::max` returns the non-NaN operand), and NaN counts survive the
//! `c != 0.0` filter so the NaN propagates into the sum exactly as the
//! reference propagates it.
//!
//! # Explicit SIMD and `fast-math`
//!
//! With the `simd` cargo feature on x86_64, the filter of step 3 runs four
//! (AVX2, runtime-detected) or two (SSE2 baseline) buckets per iteration
//! with `core::arch` compares; vectors with no surviving lane short-circuit
//! in a few cycles, and surviving lanes re-run the *scalar* step in lane
//! order, so the fold order and every surviving term are untouched —
//! bit-identity holds by construction, and `tests/kernel_differential.rs`
//! pins it. Per-lane min/max/compare semantics only feed the boolean
//! filter, where `-0.0 == +0.0` and the NaN behaviours above agree between
//! the scalar and vector forms.
//!
//! Reassociated accumulation (which genuinely reorders the fold and
//! therefore may move low bits) is **never** on the default path: it lives
//! behind the `fast-math` feature as the separate
//! [`BucketPlane::accumulate_fast`] entry point, with a pinned relative
//! error bound of `1e-12` against the bit-reference
//! (`tests/kernel_differential.rs`).

use minskew_geom::Rect;

use crate::{Bucket, ExtensionRule};

/// A query preprocessed for the kernel: centre and half-extents, the exact
/// intermediate values [`Rect::expanded`] derives before applying a
/// bucket's extension amounts.
///
/// Computing them once per query (instead of once per bucket) is
/// bit-identical because `expanded` derives them from the query alone.
#[derive(Debug, Clone, Copy)]
pub struct QueryPrep {
    cx: f64,
    cy: f64,
    hw: f64,
    hh: f64,
}

impl QueryPrep {
    /// Prepares `query` for accumulation.
    #[inline]
    pub fn new(query: &Rect) -> QueryPrep {
        let c = query.center();
        QueryPrep {
            cx: c.x,
            cy: c.y,
            hw: query.width() / 2.0,
            hh: query.height() / 2.0,
        }
    }
}

/// Buckets per pruning block of the Morton mirror: one coarse intersection
/// test can prove 16 terms zero at once (four AVX2 vectors).
const BLOCK: usize = 16;

/// Buckets per quad summary of the Morton mirror — the fine pruning level
/// below [`BLOCK`]. One block spans exactly `BLOCK / QUAD = 4` quads, so a
/// single four-wide vector compare tests all of a surviving block's quads.
const QUAD: usize = 4;

/// Structure-of-arrays mirror of a histogram's buckets plus the per-bucket
/// extension amounts under one [`ExtensionRule`].
///
/// Built by [`crate::SpatialHistogram`] alongside the [`crate::BucketIndex`]
/// and invalidated by the same `OnceLock` discipline (any bucket mutation or
/// rule change drops it). All fine columns have identical length and are in
/// bucket-id order, so [`BucketPlane::accumulate`] streams them in exactly
/// the reference fold order.
///
/// The plane additionally keeps a **Morton mirror** for the pruned serving
/// path ([`BucketPlane::accumulate_pruned`]): the fold columns permuted
/// into Z-order of the bucket centres (`morder` maps mirror position →
/// bucket id), plus one coarse **block summary** per [`BLOCK`] consecutive
/// mirror positions — the union of the members' MBRs and the maxima of
/// their extension amounts. Z-order makes a block's members spatial
/// neighbours, so a selective query prunes almost every block with one
/// rectangle test. The same computed-containment argument that makes
/// [`crate::BucketIndex`] sound (IEEE-754 add/sub/max are monotone, so the
/// query extended by the block maxima contains every member's extended
/// query) proves a failed block test means every member's term is exactly
/// `+0.0`.
#[derive(Debug, Clone, Default)]
pub struct BucketPlane {
    x1: Vec<f64>,
    y1: Vec<f64>,
    x2: Vec<f64>,
    y2: Vec<f64>,
    count: Vec<f64>,
    avg_w: Vec<f64>,
    avg_h: Vec<f64>,
    /// Per-bucket extension amounts, `rule.amounts(avg_w, avg_h)` — the
    /// same values [`crate::SpatialHistogram`] caches in its extension
    /// table, so using them is bit-identical to re-deriving them.
    ex: Vec<f64>,
    ey: Vec<f64>,
    /// Morton mirror: bucket id at each mirror position (a permutation of
    /// `0..len` in Z-order of bucket centres, padded to a whole quad with
    /// the sentinel id `len`), and the seven fold inputs gathered in that
    /// order.
    morder: Vec<u32>,
    mx1: Vec<f64>,
    my1: Vec<f64>,
    mx2: Vec<f64>,
    my2: Vec<f64>,
    mcount: Vec<f64>,
    mex: Vec<f64>,
    mey: Vec<f64>,
    /// Block summary columns, `ceil(len / BLOCK)` real summaries padded to
    /// a coarse vector of four with never-intersecting sentinels: union MBR of the
    /// block's members and the per-block maxima of `ex`/`ey` (NaN amounts
    /// are dropped by `f64::max`, matching how the members themselves
    /// collapse a NaN extension to zero).
    bx1: Vec<f64>,
    by1: Vec<f64>,
    bx2: Vec<f64>,
    by2: Vec<f64>,
    bex: Vec<f64>,
    bey: Vec<f64>,
    /// Quad summary columns, `ceil(len / QUAD)` real summaries padded to
    /// a whole block window (`nblocks * 4`): the same union
    /// MBR / extension maxima at per-4-member granularity, so a surviving
    /// block can discard three quarters of its members with one more
    /// rectangle test (one vector compare covers a whole block's quads).
    qx1: Vec<f64>,
    qy1: Vec<f64>,
    qx2: Vec<f64>,
    qy2: Vec<f64>,
    qex: Vec<f64>,
    qey: Vec<f64>,
}

/// Classification of one bucket's term in the skip-zero fold: the exact
/// value when non-zero, otherwise the sign of the zero (module docs,
/// steps 2–3).
#[derive(Debug, Clone, Copy)]
enum Term {
    Live(f64),
    PosZero,
    NegZero,
}

/// The single source of truth for one bucket's term: the reference
/// arithmetic of [`Bucket::estimate_with_extension`], operation for
/// operation, classified for the skip-zero fold. Every accumulation path —
/// id-ordered, Morton mirror, SIMD replay — funnels through this function,
/// so their terms are bit-identical by construction.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn classify(x1: f64, y1: f64, x2: f64, y2: f64, c: f64, ex: f64, ey: f64, p: &QueryPrep) -> Term {
    // `Rect::expanded(ex, ey)` for this bucket, element-wise.
    let hw = (p.hw + ex).max(0.0);
    let hh = (p.hh + ey).max(0.0);
    let elx = p.cx - hw;
    let ehx = p.cx + hw;
    let ely = p.cy - hh;
    let ehy = p.cy + hh;
    // `extended.intersects(&mbr)`; non-short-circuiting so the filter
    // compiles branch-free.
    let inter = (elx <= x2) & (x1 <= ehx) & (ely <= y2) & (y1 <= ehy);
    // `extended.overlap_len(&mbr, axis)`, both axes.
    let ox = (ehx.min(x2) - elx.max(x1)).max(0.0);
    let oy = (ehy.min(y2) - ely.max(y1)).max(0.0);
    let w = x2 - x1;
    let h = y2 - y1;
    // The term can be non-zero only if the extended query intersects
    // the MBR, the count is non-zero, and every positive-extent axis
    // has positive overlap. No divisions are spent on proven zeros.
    let live = inter & (c != 0.0) & ((w <= 0.0) | (ox > 0.0)) & ((h <= 0.0) | (oy > 0.0));
    if live {
        // `axis_fraction` per axis, then the reference's product order.
        let fx = if w > 0.0 {
            (ox / w).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let fy = if h > 0.0 {
            (oy / h).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let t = c * fx * fy;
        if t != 0.0 {
            Term::Live(t)
        } else if t.to_bits() == 0 {
            // The product underflowed (or clamped) to a zero the filter
            // could not prove; its bit pattern decides.
            Term::PosZero
        } else {
            Term::NegZero
        }
    } else if inter & (c < 0.0) {
        // Skipped term: `-0.0` iff the query reaches the MBR of a
        // negative-count bucket, `+0.0` in every other case (module docs,
        // step 3).
        Term::NegZero
    } else {
        Term::PosZero
    }
}

/// Reusable sparse term buffer for the block-pruned scan
/// ([`BucketPlane::accumulate_pruned`]): a dense per-bucket value slot plus
/// an id-space bitmask of which slots hold a term for the current query.
///
/// The scan visits buckets in Morton-mirror order but must fold them in
/// ascending bucket-id order to stay bit-identical to the reference. The
/// buffer makes that free: each non-zero term is scattered into its
/// bucket's slot and its id bit is set; the fold then walks the mask words
/// in ascending order, extracting set bits low-to-high — exactly ascending
/// id order, with no sort. Only the mask words are cleared per query
/// (`ceil(buckets / 64)` stores); value slots are gated by the mask and
/// never need clearing.
#[derive(Debug, Clone, Default)]
pub struct TermBuf {
    vals: Vec<f64>,
    mask: Vec<u64>,
}

impl TermBuf {
    /// Creates an empty buffer. Slots grow on first use per plane size and
    /// are then reused for every subsequent query.
    pub fn new() -> TermBuf {
        TermBuf::default()
    }

    /// Prepares the buffer for a plane of `n` buckets: grows the slots if
    /// needed and clears the mask words the fold will read. One spare
    /// value slot (id `n`) and one spare mask word absorb the branchless
    /// vector scatter's writes for pad and dead lanes; the fold never
    /// reads either.
    #[inline]
    fn reset(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.vals.len() < n + 1 {
            self.vals.resize(n + 1, 0.0);
            self.mask.resize(words + 1, 0);
        }
        for w in &mut self.mask[..words] {
            *w = 0;
        }
    }

    /// Records bucket `id`'s non-zero term.
    #[inline(always)]
    fn set(&mut self, id: usize, t: f64) {
        self.vals[id] = t;
        self.mask[id >> 6] |= 1u64 << (id & 63);
    }
}

/// One live bucket's contribution in a [`KernelExplain`] breakdown, in
/// ascending bucket-id order — the exact order the fold added it in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainTerm {
    /// Bucket id (index into the histogram's bucket array).
    pub bucket: u32,
    /// The bucket's (possibly fractional) rectangle count.
    pub count: f64,
    /// Extension amounts the rule added to the query half-extents for this
    /// bucket (`ExtensionRule::amounts`).
    pub ex: f64,
    /// See [`ExplainTerm::ex`].
    pub ey: f64,
    /// Diagnostic clipped fraction `fx * fy` — the share of the bucket's
    /// MBR the extended query covers. Recomputed with the kernel's exact
    /// arithmetic for reporting; the headline estimate never reads it.
    pub fraction: f64,
    /// The term value from `classify`, bit for bit. The headline estimate
    /// is the ordered fold of exactly these values (plus the zero-sign
    /// repair) and nothing else.
    pub term: f64,
}

/// Pruning statistics from one explained scan: how much of the two-level
/// Morton-mirror hierarchy the query actually visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Total 16-bucket blocks in the mirror.
    pub blocks: usize,
    /// Blocks rejected by the coarse union-MBR test (members never
    /// classified).
    pub blocks_pruned: usize,
    /// 4-bucket quads tested inside surviving blocks.
    pub quads_tested: usize,
    /// Quads rejected by the mid-level union-MBR test.
    pub quads_pruned: usize,
    /// Buckets that reached the scalar `classify` step.
    pub buckets_classified: usize,
}

/// The structured result of [`BucketPlane::accumulate_pruned_explained`]:
/// the estimate plus the evidence that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExplain {
    /// The headline estimate — bit-identical to
    /// [`BucketPlane::accumulate_pruned`] for the same plane and query.
    pub estimate: f64,
    /// Live contributions in ascending bucket-id order (fold order).
    pub terms: Vec<ExplainTerm>,
    /// Whether any proven-`+0.0` term was skipped (the fold's zero-sign
    /// repair flag); exposed so [`KernelExplain::term_sum`] can replay the
    /// fold exactly.
    pub saw_pos_zero: bool,
    /// Block/quad pruning counters for this scan.
    pub prune: PruneStats,
}

impl KernelExplain {
    /// Re-folds the recorded terms exactly as the kernel did: ascending
    /// bucket-id order from a `-0.0` accumulator, then the `+0.0` repair
    /// iff a positive-zero term was skipped. Bit-identical to
    /// [`KernelExplain::estimate`] by construction — the differential suite
    /// pins it — so the breakdown provably *is* the estimate.
    pub fn term_sum(&self) -> f64 {
        let mut acc = -0.0f64;
        for t in &self.terms {
            acc += t.term;
        }
        if self.saw_pos_zero {
            acc + 0.0
        } else {
            acc
        }
    }
}

impl BucketPlane {
    /// Builds the plane for `buckets` under `rule`.
    pub fn build(buckets: &[Bucket], rule: ExtensionRule) -> BucketPlane {
        let n = buckets.len();
        // Padded column lengths: the mirror is padded to a whole quad, the
        // quad columns to a whole block's worth of quads, and the block
        // columns to a whole coarse vector, so the vector scan never needs
        // a scalar tail. Pads are sentinels (empty MBR, zero count) that
        // can never intersect a query; the scan masks them out of the
        // zero-sign flag with validity masks.
        let n4 = if n == 0 { 0 } else { n.next_multiple_of(QUAD) };
        let nb = n.div_ceil(BLOCK);
        let nbp = if nb == 0 { 0 } else { nb.next_multiple_of(4) };
        let nqp = nb * (BLOCK / QUAD);
        let mut plane = BucketPlane {
            x1: Vec::with_capacity(n),
            y1: Vec::with_capacity(n),
            x2: Vec::with_capacity(n),
            y2: Vec::with_capacity(n),
            count: Vec::with_capacity(n),
            avg_w: Vec::with_capacity(n),
            avg_h: Vec::with_capacity(n),
            ex: Vec::with_capacity(n),
            ey: Vec::with_capacity(n),
            morder: Vec::new(),
            mx1: Vec::with_capacity(n4),
            my1: Vec::with_capacity(n4),
            mx2: Vec::with_capacity(n4),
            my2: Vec::with_capacity(n4),
            mcount: Vec::with_capacity(n4),
            mex: Vec::with_capacity(n4),
            mey: Vec::with_capacity(n4),
            bx1: Vec::with_capacity(nbp),
            by1: Vec::with_capacity(nbp),
            bx2: Vec::with_capacity(nbp),
            by2: Vec::with_capacity(nbp),
            bex: Vec::with_capacity(nbp),
            bey: Vec::with_capacity(nbp),
            qx1: Vec::with_capacity(nqp),
            qy1: Vec::with_capacity(nqp),
            qx2: Vec::with_capacity(nqp),
            qy2: Vec::with_capacity(nqp),
            qex: Vec::with_capacity(nqp),
            qey: Vec::with_capacity(nqp),
        };
        for b in buckets {
            plane.x1.push(b.mbr.lo.x);
            plane.y1.push(b.mbr.lo.y);
            plane.x2.push(b.mbr.hi.x);
            plane.y2.push(b.mbr.hi.y);
            plane.count.push(b.count);
            plane.avg_w.push(b.avg_width);
            plane.avg_h.push(b.avg_height);
            let (ex, ey) = rule.amounts(b.avg_width, b.avg_height);
            plane.ex.push(ex);
            plane.ey.push(ey);
        }

        // Morton mirror: gather the fold inputs in Z-order of the bucket
        // centres. The schedule over the MBRs keys on exactly those
        // centres; ties keep id order, so the mirror is deterministic.
        let mbrs: Vec<Rect> = buckets.iter().map(|b| b.mbr).collect();
        let order = crate::morton_schedule(&mbrs);
        plane.morder = Vec::with_capacity(n4);
        plane.morder.extend_from_slice(&order);
        for &id in &plane.morder {
            let i = id as usize;
            plane.mx1.push(plane.x1[i]);
            plane.my1.push(plane.y1[i]);
            plane.mx2.push(plane.x2[i]);
            plane.my2.push(plane.y2[i]);
            plane.mcount.push(plane.count[i]);
            plane.mex.push(plane.ex[i]);
            plane.mey.push(plane.ey[i]);
        }
        // Mirror pads: the empty rectangle with a zero count. Their
        // intersection test is false against any (finite) query, so they
        // classify as dead lanes. Pad `morder` entries map to the term
        // buffer's spare slot `n`, which the fold never reads — the
        // branchless scatter can then store every lane unconditionally.
        for _ in n..n4 {
            plane.morder.push(n as u32);
            plane.mx1.push(f64::INFINITY);
            plane.my1.push(f64::INFINITY);
            plane.mx2.push(f64::NEG_INFINITY);
            plane.my2.push(f64::NEG_INFINITY);
            plane.mcount.push(0.0);
            plane.mex.push(0.0);
            plane.mey.push(0.0);
        }

        // Block summaries over the mirror: union MBR plus extension maxima
        // per BLOCK members. The unions use `f64::min`/`max`, which drop a
        // NaN operand — consistent with the member-level arithmetic, where
        // a NaN coordinate can never satisfy an intersection test and a
        // NaN extension collapses to a zero half-extent.
        for b in 0..nb {
            let range = b * BLOCK..((b + 1) * BLOCK).min(n);
            let mut x1 = f64::INFINITY;
            let mut y1 = f64::INFINITY;
            let mut x2 = f64::NEG_INFINITY;
            let mut y2 = f64::NEG_INFINITY;
            let mut ex = f64::NEG_INFINITY;
            let mut ey = f64::NEG_INFINITY;
            for j in range {
                x1 = x1.min(plane.mx1[j]);
                y1 = y1.min(plane.my1[j]);
                x2 = x2.max(plane.mx2[j]);
                y2 = y2.max(plane.my2[j]);
                ex = ex.max(plane.mex[j]);
                ey = ey.max(plane.mey[j]);
            }
            plane.bx1.push(x1);
            plane.by1.push(y1);
            plane.bx2.push(x2);
            plane.by2.push(y2);
            plane.bex.push(ex);
            plane.bey.push(ey);
        }
        // Block pads: empty-rectangle sentinels, masked out of the coarse
        // vector loop's results by its validity mask.
        for _ in nb..nbp {
            plane.bx1.push(f64::INFINITY);
            plane.by1.push(f64::INFINITY);
            plane.bx2.push(f64::NEG_INFINITY);
            plane.by2.push(f64::NEG_INFINITY);
            plane.bex.push(0.0);
            plane.bey.push(0.0);
        }

        // Quad summaries: the same unions at per-QUAD granularity. The
        // containment argument is level-agnostic — a quad's union contains
        // its members exactly as a block's contains its quads.
        let nq = n.div_ceil(QUAD);
        for q in 0..nq {
            let range = q * QUAD..((q + 1) * QUAD).min(n);
            let mut x1 = f64::INFINITY;
            let mut y1 = f64::INFINITY;
            let mut x2 = f64::NEG_INFINITY;
            let mut y2 = f64::NEG_INFINITY;
            let mut ex = f64::NEG_INFINITY;
            let mut ey = f64::NEG_INFINITY;
            for j in range {
                x1 = x1.min(plane.mx1[j]);
                y1 = y1.min(plane.my1[j]);
                x2 = x2.max(plane.mx2[j]);
                y2 = y2.max(plane.my2[j]);
                ex = ex.max(plane.mex[j]);
                ey = ey.max(plane.mey[j]);
            }
            plane.qx1.push(x1);
            plane.qy1.push(y1);
            plane.qx2.push(x2);
            plane.qy2.push(y2);
            plane.qex.push(ex);
            plane.qey.push(ey);
        }
        // Quad pads out to a whole block's window of quads, so the quad
        // gate of the last (ragged) block can load a full vector.
        for _ in nq..nqp {
            plane.qx1.push(f64::INFINITY);
            plane.qy1.push(f64::INFINITY);
            plane.qx2.push(f64::NEG_INFINITY);
            plane.qy2.push(f64::NEG_INFINITY);
            plane.qex.push(0.0);
            plane.qey.push(0.0);
        }
        plane
    }

    /// Number of buckets in the plane.
    #[inline]
    pub fn len(&self) -> usize {
        self.count.len()
    }

    /// `true` when the plane holds no buckets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }

    /// Heap bytes held by the plane's columns (capacity, not length —
    /// columns are built exactly-sized so the two coincide in practice),
    /// including the Morton mirror and its block summaries.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
            * (self.x1.capacity()
                + self.y1.capacity()
                + self.x2.capacity()
                + self.y2.capacity()
                + self.count.capacity()
                + self.avg_w.capacity()
                + self.avg_h.capacity()
                + self.ex.capacity()
                + self.ey.capacity()
                + self.mx1.capacity()
                + self.my1.capacity()
                + self.mx2.capacity()
                + self.my2.capacity()
                + self.mcount.capacity()
                + self.mex.capacity()
                + self.mey.capacity()
                + self.bx1.capacity()
                + self.by1.capacity()
                + self.bx2.capacity()
                + self.by2.capacity()
                + self.bex.capacity()
                + self.bey.capacity()
                + self.qx1.capacity()
                + self.qy1.capacity()
                + self.qx2.capacity()
                + self.qy2.capacity()
                + self.qex.capacity()
                + self.qey.capacity())
            + std::mem::size_of::<u32>() * self.morder.capacity()
    }

    /// One bucket's step of the skip-zero fold: adds the bucket's term to
    /// `acc` when it is non-zero, otherwise records the skipped term's sign
    /// in `saw_pos_zero`. See the module docs for why the overall fold is
    /// bit-identical to the strict in-order reference fold.
    #[inline(always)]
    fn fold_one(&self, i: usize, p: &QueryPrep, acc: &mut f64, saw_pos_zero: &mut bool) {
        let term = classify(
            self.x1[i],
            self.y1[i],
            self.x2[i],
            self.y2[i],
            self.count[i],
            self.ex[i],
            self.ey[i],
            p,
        );
        match term {
            Term::Live(t) => *acc += t,
            Term::PosZero => *saw_pos_zero = true,
            Term::NegZero => {}
        }
    }

    /// Fold tail shared by every accumulation: the `-0.0`-identity
    /// correction for skipped `+0.0` terms.
    #[inline(always)]
    fn finish(acc: f64, saw_pos_zero: bool) -> f64 {
        if saw_pos_zero {
            acc + 0.0
        } else {
            acc
        }
    }

    /// Strict-fold-equivalent estimate over **all** buckets: bit-identical
    /// to `buckets.iter().map(estimate_with_extension).sum::<f64>()`.
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    pub fn accumulate(&self, p: &QueryPrep) -> f64 {
        self.accumulate_scalar(p)
    }

    /// Strict-fold-equivalent estimate over **all** buckets: bit-identical
    /// to `buckets.iter().map(estimate_with_extension).sum::<f64>()`.
    ///
    /// Dispatches to the AVX2 filter when the host supports it (detected
    /// once, cached by `std`), else to the SSE2 baseline. Both re-run
    /// surviving lanes through the scalar step in lane order, so the result
    /// is the scalar result bit for bit.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)] // sanctioned: runtime-feature-guarded dispatch
    pub fn accumulate(&self, p: &QueryPrep) -> f64 {
        // Vector setup isn't worth it for a handful of buckets; the scalar
        // fold is also the bit-reference the filters are pinned against.
        if self.len() < 8 {
            return self.accumulate_scalar(p);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 code path is only entered when the running
            // CPU reports AVX2 support.
            unsafe { simd::accumulate_avx2(self, p) }
        } else {
            simd::accumulate_sse2(self, p)
        }
    }

    /// The portable skip-zero fold (always compiled; the bit-reference for
    /// the SIMD filters and the only body on non-x86_64 or default builds).
    fn accumulate_scalar(&self, p: &QueryPrep) -> f64 {
        let mut acc = -0.0f64;
        let mut saw_pos_zero = false;
        for i in 0..self.len() {
            self.fold_one(i, p, &mut acc, &mut saw_pos_zero);
        }
        Self::finish(acc, saw_pos_zero)
    }

    /// Strict-fold-equivalent estimate over the candidate subset `ids`
    /// (ascending bucket ids from [`crate::BucketIndex`]): bit-identical to
    /// `ids.iter().map(|&i| buckets[i].estimate_with_extension(..)).sum()`.
    ///
    /// Candidate lists are short, so this stays scalar even under `simd`.
    pub fn accumulate_ids(&self, p: &QueryPrep, ids: &[u32]) -> f64 {
        let mut acc = -0.0f64;
        let mut saw_pos_zero = false;
        for &i in ids {
            self.fold_one(i as usize, p, &mut acc, &mut saw_pos_zero);
        }
        Self::finish(acc, saw_pos_zero)
    }

    /// `true` when the coarse block test proves every member of block `b`
    /// of the Morton mirror misses the query: the query extended by the
    /// block's extension maxima does not intersect the block's union MBR.
    /// By IEEE-754 monotonicity of add/sub/max, a member's extended query
    /// is contained in the block's, so a pruned block's members all have
    /// `inter == false` — their terms are all exactly `+0.0`.
    #[inline(always)]
    fn block_pruned(&self, b: usize, p: &QueryPrep) -> bool {
        let hw = (p.hw + self.bex[b]).max(0.0);
        let hh = (p.hh + self.bey[b]).max(0.0);
        !((p.cx - hw <= self.bx2[b])
            & (self.bx1[b] <= p.cx + hw)
            & (p.cy - hh <= self.by2[b])
            & (self.by1[b] <= p.cy + hh))
    }

    /// The same coarse test as [`BucketPlane::block_pruned`] one level
    /// down, over quad `q`'s union MBR and extension maxima.
    #[inline(always)]
    fn quad_pruned(&self, q: usize, p: &QueryPrep) -> bool {
        let hw = (p.hw + self.qex[q]).max(0.0);
        let hh = (p.hh + self.qey[q]).max(0.0);
        !((p.cx - hw <= self.qx2[q])
            & (self.qx1[q] <= p.cx + hw)
            & (p.cy - hh <= self.qy2[q])
            & (self.qy1[q] <= p.cy + hh))
    }

    /// Quad-gated scalar scan of one surviving block: each quad's union
    /// rectangle is tested before its members classify, so a block clipped
    /// by the query edge only pays for the quads the query reaches.
    #[inline(always)]
    fn scan_block_scalar(&self, b: usize, p: &QueryPrep, buf: &mut TermBuf, saw: &mut bool) {
        let n = self.len();
        let nq = n.div_ceil(QUAD);
        for q in b * (BLOCK / QUAD)..((b + 1) * (BLOCK / QUAD)).min(nq) {
            if self.quad_pruned(q, p) {
                // A pruned quad skips only proven `+0.0` terms (quads are
                // never empty).
                *saw = true;
                continue;
            }
            for j in q * QUAD..((q + 1) * QUAD).min(n) {
                self.scan_one(j, p, buf, saw);
            }
        }
    }

    /// One Morton-mirror member's step of the pruned scan: a non-zero term
    /// is scattered into its bucket's slot of the term buffer (the fold
    /// later replays the slots in ascending id order straight off the
    /// bitmask), zero terms only touch the flag.
    #[inline(always)]
    fn scan_one(&self, j: usize, p: &QueryPrep, buf: &mut TermBuf, saw: &mut bool) {
        let term = classify(
            self.mx1[j],
            self.my1[j],
            self.mx2[j],
            self.my2[j],
            self.mcount[j],
            self.mex[j],
            self.mey[j],
            p,
        );
        match term {
            Term::Live(t) => buf.set(self.morder[j] as usize, t),
            Term::PosZero => *saw = true,
            Term::NegZero => {}
        }
    }

    /// Fold tail of the pruned scan: replays the collected non-zero terms
    /// in ascending bucket-id order — the order the strict reference fold
    /// adds them in — by walking the term buffer's bitmask words in
    /// ascending order and extracting set bits low-to-high. The mask *is*
    /// the order, so no sort happens on any path; cost is
    /// `ceil(buckets / 64)` word loads plus one add per surviving term.
    fn fold_masked(&self, buf: &TermBuf, saw_pos_zero: bool) -> f64 {
        let words = self.len().div_ceil(64);
        let mut acc = -0.0f64;
        for w in 0..words {
            let mut m = buf.mask[w];
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                m &= m - 1;
                acc += buf.vals[(w << 6) | bit];
            }
        }
        Self::finish(acc, saw_pos_zero)
    }

    /// Block-pruned estimate over **all** buckets via the Morton mirror:
    /// bit-identical to [`BucketPlane::accumulate`] (and therefore to the
    /// strict reference fold), sub-linear in the bucket count for
    /// selective queries, allocation-free once `terms` is warm.
    ///
    /// The scan visits members of surviving blocks in mirror order,
    /// scattering non-zero terms into the term buffer's per-bucket slots;
    /// [`BucketPlane::fold_masked`] then replays them in ascending id
    /// order straight off the buffer's bitmask. The term *values* are
    /// order-independent (each is a pure function of one bucket and the
    /// query), the zero-sign flag is a commutative OR, and the non-zero
    /// terms are added in exactly the reference order — so the scan order
    /// is free to follow the mirror while the result stays bit-identical.
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    pub fn accumulate_pruned(&self, p: &QueryPrep, buf: &mut TermBuf) -> f64 {
        self.accumulate_pruned_scalar(p, buf)
    }

    /// Block-pruned estimate over **all** buckets via the Morton mirror:
    /// bit-identical to [`BucketPlane::accumulate`] (and therefore to the
    /// strict reference fold), sub-linear in the bucket count for
    /// selective queries, allocation-free once `terms` is warm.
    ///
    /// Under `simd`, the coarse block tests run four (AVX2) or two (SSE2)
    /// blocks per compare and surviving blocks run the vector zero-filter;
    /// surviving members still classify through the scalar step, so the
    /// collected terms are the scalar terms bit for bit.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)] // sanctioned: runtime-feature-guarded dispatch
    pub fn accumulate_pruned(&self, p: &QueryPrep, buf: &mut TermBuf) -> f64 {
        if self.len() < 2 * BLOCK {
            return self.accumulate_pruned_scalar(p, buf);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 code path is only entered when the running
            // CPU reports AVX2 support.
            unsafe { simd::accumulate_pruned_avx2(self, p, buf) }
        } else {
            simd::accumulate_pruned_sse2(self, p, buf)
        }
    }

    /// The portable block-pruned scan (always compiled; the bit-reference
    /// for the SIMD variants and the only body on default builds).
    fn accumulate_pruned_scalar(&self, p: &QueryPrep, buf: &mut TermBuf) -> f64 {
        buf.reset(self.len());
        let mut saw_pos_zero = false;
        for b in 0..self.len().div_ceil(BLOCK) {
            if self.block_pruned(b, p) {
                // Every member's term is a proven `+0.0` (blocks are never
                // empty, so at least one `+0.0` was skipped).
                saw_pos_zero = true;
                continue;
            }
            self.scan_block_scalar(b, p, buf, &mut saw_pos_zero);
        }
        self.fold_masked(buf, saw_pos_zero)
    }

    /// Diagnostic clipped fraction `fx * fy` for mirror member `j`: the
    /// kernel's exact per-axis arithmetic, re-run purely for reporting.
    /// Never feeds the estimate — the term value always comes from
    /// `classify`.
    fn clip_fraction(&self, j: usize, p: &QueryPrep) -> f64 {
        let (x1, y1, x2, y2) = (self.mx1[j], self.my1[j], self.mx2[j], self.my2[j]);
        let hw = (p.hw + self.mex[j]).max(0.0);
        let hh = (p.hh + self.mey[j]).max(0.0);
        let ox = ((p.cx + hw).min(x2) - (p.cx - hw).max(x1)).max(0.0);
        let oy = ((p.cy + hh).min(y2) - (p.cy - hh).max(y1)).max(0.0);
        let w = x2 - x1;
        let h = y2 - y1;
        let fx = if w > 0.0 {
            (ox / w).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let fy = if h > 0.0 {
            (oy / h).clamp(0.0, 1.0)
        } else {
            1.0
        };
        fx * fy
    }

    /// The explained twin of [`BucketPlane::accumulate_pruned`]: the same
    /// block-pruned scan — every term from `classify`, scattered through
    /// the same term buffer, folded by the same ascending-id mask walk —
    /// with the evidence recorded on the side. The headline estimate is
    /// therefore bit-identical to the serving path by construction, not by
    /// re-derivation.
    ///
    /// Always scalar, even under `simd`: the SIMD paths replay surviving
    /// lanes through the scalar step, so the scalar scan *is* the bit
    /// reference they are pinned against.
    pub fn accumulate_pruned_explained(&self, p: &QueryPrep, buf: &mut TermBuf) -> KernelExplain {
        buf.reset(self.len());
        let n = self.len();
        let nq = n.div_ceil(QUAD);
        let mut saw_pos_zero = false;
        let mut prune = PruneStats {
            blocks: n.div_ceil(BLOCK),
            ..PruneStats::default()
        };
        let mut terms = Vec::new();
        for b in 0..n.div_ceil(BLOCK) {
            if self.block_pruned(b, p) {
                saw_pos_zero = true;
                prune.blocks_pruned += 1;
                continue;
            }
            for q in b * (BLOCK / QUAD)..((b + 1) * (BLOCK / QUAD)).min(nq) {
                prune.quads_tested += 1;
                if self.quad_pruned(q, p) {
                    saw_pos_zero = true;
                    prune.quads_pruned += 1;
                    continue;
                }
                for j in q * QUAD..((q + 1) * QUAD).min(n) {
                    prune.buckets_classified += 1;
                    let term = classify(
                        self.mx1[j],
                        self.my1[j],
                        self.mx2[j],
                        self.my2[j],
                        self.mcount[j],
                        self.mex[j],
                        self.mey[j],
                        p,
                    );
                    match term {
                        Term::Live(t) => {
                            buf.set(self.morder[j] as usize, t);
                            terms.push(ExplainTerm {
                                bucket: self.morder[j],
                                count: self.mcount[j],
                                ex: self.mex[j],
                                ey: self.mey[j],
                                fraction: self.clip_fraction(j, p),
                                term: t,
                            });
                        }
                        Term::PosZero => saw_pos_zero = true,
                        Term::NegZero => {}
                    }
                }
            }
        }
        // The scan visits mirror order; report fold order.
        terms.sort_unstable_by_key(|t| t.bucket);
        let estimate = self.fold_masked(buf, saw_pos_zero);
        KernelExplain {
            estimate,
            terms,
            saw_pos_zero,
            prune,
        }
    }

    /// Reassociated estimate over all buckets: same terms as
    /// [`BucketPlane::accumulate`] but folded into two interleaved
    /// accumulators to halve the addition dependency chain. **Not**
    /// bit-identical to the reference — relative error is bounded by the
    /// reassociation of at most `len()` non-negative terms and pinned at
    /// `<= 1e-12` by the kernel differential suite. Opt-in only; no serving
    /// path calls this.
    #[cfg(feature = "fast-math")]
    pub fn accumulate_fast(&self, p: &QueryPrep) -> f64 {
        let mut acc = [0.0f64; 2];
        let mut lane = 0usize;
        let mut saw_pos_zero = false;
        for i in 0..self.len() {
            let before = acc[lane & 1];
            self.fold_one(i, p, &mut acc[lane & 1], &mut saw_pos_zero);
            // Rotate accumulators only on a real addition so dead buckets
            // do not serialise the rotation.
            if acc[lane & 1].to_bits() != before.to_bits() {
                lane += 1;
            }
        }
        acc[0] + acc[1]
    }
}

/// Which kernel code path serves `BucketPlane::accumulate` on this host —
/// `"avx2"` / `"sse2"` under the `simd` feature on x86_64, otherwise
/// `"scalar-autovec"`. Recorded in BENCH_estimate.json so committed numbers
/// say what actually ran.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn simd_level() -> &'static str {
    if std::arch::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "sse2"
    }
}

/// Which kernel code path serves `BucketPlane::accumulate` on this host —
/// `"avx2"` / `"sse2"` under the `simd` feature on x86_64, otherwise
/// `"scalar-autovec"`. Recorded in BENCH_estimate.json so committed numbers
/// say what actually ran.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub fn simd_level() -> &'static str {
    "scalar-autovec"
}

/// Vectorised zero-filters over the plane columns. The vectors only decide
/// *which* buckets can contribute; every surviving bucket re-runs the
/// scalar [`BucketPlane::fold_one`] step in lane order, so bit-identity
/// with the scalar fold is structural, not numerical luck. The per-lane
/// compare semantics agree with the scalar filter on every input the plane
/// can hold (finite MBRs; NaN counts and extension amounts behave
/// identically — see the module docs).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use core::arch::x86_64::*;

    use super::{BucketPlane, QueryPrep, TermBuf};

    /// AVX2 filter, four buckets per iteration.
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_avx2(plane: &BucketPlane, p: &QueryPrep) -> f64 {
        let n = plane.len();
        let mut acc = -0.0f64;
        let mut saw_pos_zero = false;
        let zero = _mm256_setzero_pd();
        let cx = _mm256_set1_pd(p.cx);
        let cy = _mm256_set1_pd(p.cy);
        let qhw = _mm256_set1_pd(p.hw);
        let qhh = _mm256_set1_pd(p.hh);
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: all columns have length `n` and `i + 4 <= n`.
            let (live_bits, neg_bits) = unsafe {
                let ex = _mm256_loadu_pd(plane.ex.as_ptr().add(i));
                let ey = _mm256_loadu_pd(plane.ey.as_ptr().add(i));
                let x1 = _mm256_loadu_pd(plane.x1.as_ptr().add(i));
                let x2 = _mm256_loadu_pd(plane.x2.as_ptr().add(i));
                let y1 = _mm256_loadu_pd(plane.y1.as_ptr().add(i));
                let y2 = _mm256_loadu_pd(plane.y2.as_ptr().add(i));
                let c = _mm256_loadu_pd(plane.count.as_ptr().add(i));
                // (qhw + ex).max(0.0): max(sum, +0.0) returns +0.0 for a
                // NaN sum, matching scalar `f64::max`.
                let hw = _mm256_max_pd(_mm256_add_pd(qhw, ex), zero);
                let hh = _mm256_max_pd(_mm256_add_pd(qhh, ey), zero);
                let elx = _mm256_sub_pd(cx, hw);
                let ehx = _mm256_add_pd(cx, hw);
                let ely = _mm256_sub_pd(cy, hh);
                let ehy = _mm256_add_pd(cy, hh);
                let inter = _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(elx, x2),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(x1, ehx),
                    ),
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(ely, y2),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(y1, ehy),
                    ),
                );
                let ox = _mm256_max_pd(
                    _mm256_sub_pd(_mm256_min_pd(ehx, x2), _mm256_max_pd(elx, x1)),
                    zero,
                );
                let oy = _mm256_max_pd(
                    _mm256_sub_pd(_mm256_min_pd(ehy, y2), _mm256_max_pd(ely, y1)),
                    zero,
                );
                let w = _mm256_sub_pd(x2, x1);
                let h = _mm256_sub_pd(y2, y1);
                // NEQ is unordered (NaN counts stay live, like the scalar
                // `c != 0.0`); GT/LE are ordered (overlaps are never NaN).
                let live = _mm256_and_pd(
                    _mm256_and_pd(inter, _mm256_cmp_pd::<_CMP_NEQ_UQ>(c, zero)),
                    _mm256_and_pd(
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LE_OQ>(w, zero),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(ox, zero),
                        ),
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LE_OQ>(h, zero),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(oy, zero),
                        ),
                    ),
                );
                let neg = _mm256_and_pd(inter, _mm256_cmp_pd::<_CMP_LT_OQ>(c, zero));
                (_mm256_movemask_pd(live), _mm256_movemask_pd(neg))
            };
            if live_bits == 0 {
                // All four terms are proven zeros; a skipped term is
                // `-0.0` only for intersecting negative-count buckets.
                saw_pos_zero |= neg_bits != 0b1111;
            } else {
                // Rare mixed/occupied vector: replay all four lanes
                // through the scalar step, preserving fold order exactly.
                for lane in 0..4 {
                    plane.fold_one(i + lane, p, &mut acc, &mut saw_pos_zero);
                }
            }
            i += 4;
        }
        while i < n {
            plane.fold_one(i, p, &mut acc, &mut saw_pos_zero);
            i += 1;
        }
        BucketPlane::finish(acc, saw_pos_zero)
    }

    /// AVX2 block-pruned scan: four coarse block tests per compare, and
    /// the four-lane zero-filter inside surviving blocks. Every surviving
    /// member classifies through the scalar step, so the collected terms
    /// equal the scalar scan's bit for bit.
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports AVX2.
    /// Per-query vector broadcasts shared by every AVX2 scan level, built
    /// once per [`accumulate_pruned_avx2`] call.
    #[derive(Clone, Copy)]
    struct QBcast {
        zero: __m256d,
        one: __m256d,
        cx: __m256d,
        cy: __m256d,
        hw: __m256d,
        hh: __m256d,
    }

    /// `extended.intersects(union)` over four summary rectangles at once —
    /// the shared block- and quad-level gate.
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports AVX2 and that
    /// `i + 4` is within all six parallel summary columns.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn inter4_avx2(
        x1c: &[f64],
        y1c: &[f64],
        x2c: &[f64],
        y2c: &[f64],
        exc: &[f64],
        eyc: &[f64],
        i: usize,
        bc: &QBcast,
    ) -> i32 {
        // SAFETY: bounds guaranteed by the caller.
        unsafe {
            let ex = _mm256_loadu_pd(exc.as_ptr().add(i));
            let ey = _mm256_loadu_pd(eyc.as_ptr().add(i));
            let x1 = _mm256_loadu_pd(x1c.as_ptr().add(i));
            let x2 = _mm256_loadu_pd(x2c.as_ptr().add(i));
            let y1 = _mm256_loadu_pd(y1c.as_ptr().add(i));
            let y2 = _mm256_loadu_pd(y2c.as_ptr().add(i));
            let hw = _mm256_max_pd(_mm256_add_pd(bc.hw, ex), bc.zero);
            let hh = _mm256_max_pd(_mm256_add_pd(bc.hh, ey), bc.zero);
            let inter = _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_sub_pd(bc.cx, hw), x2),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(x1, _mm256_add_pd(bc.cx, hw)),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_sub_pd(bc.cy, hh), y2),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(y1, _mm256_add_pd(bc.cy, hh)),
                ),
            );
            _mm256_movemask_pd(inter)
        }
    }

    /// Scan of one surviving block: a quad-level [`inter4_avx2`] gate
    /// drops the members of quads the query provably misses, then each
    /// surviving quad computes all four member *terms* at vector width.
    /// Quad and mirror columns are padded, so every load is full-width;
    /// validity masks keep pad lanes (which are dead by construction) out
    /// of the zero-sign flag.
    ///
    /// The per-lane operations mirror the scalar classification exactly:
    /// same operand order for every add/sub/min/max (the packed
    /// instructions return the second operand on ties and NaNs, just like
    /// their scalar twins here, and for a *live* lane every ordered
    /// compare that passed proves its operands non-NaN), divisions are
    /// true IEEE `divpd`, the clamp is blend-based so a NaN quotient
    /// survives like `f64::clamp`'s, and the `w > 0` / `h > 0` selects
    /// blend exactly where the scalar branches. A `±0.0` ambiguity cannot
    /// reach a computed term: a live lane with `w > 0` has strictly
    /// positive overlap, so the clamp input is never a signed zero. Live
    /// lanes are extracted in ascending lane order, preserving the mirror
    /// scan order; zero terms and dead lanes fold into the flag straight
    /// from the compare masks.
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn scan_block_avx2(
        plane: &BucketPlane,
        blk: usize,
        bc: &QBcast,
        buf: &mut TermBuf,
        saw_pos_zero: &mut bool,
    ) {
        let n = plane.len();
        let nq = n.div_ceil(super::QUAD);
        let q0 = blk * (super::BLOCK / super::QUAD);
        // Validity mask over the block's quad window: the last real block
        // may own fewer than four quads; the padded columns make the load
        // safe and the mask keeps pad quads out of the flag.
        let qvm = if q0 + 4 <= nq {
            0b1111
        } else {
            (1i32 << (nq - q0)) - 1
        };
        // SAFETY: quad columns are padded to a whole block window
        // (`nblocks * 4` summaries), so `q0 + 4` is in bounds.
        let qb = unsafe {
            inter4_avx2(
                &plane.qx1, &plane.qy1, &plane.qx2, &plane.qy2, &plane.qex, &plane.qey, q0, bc,
            )
        } & qvm;
        // A pruned quad skips only proven `+0.0` terms (quads are never
        // empty).
        *saw_pos_zero |= qb != qvm;
        let mut qbits = qb as u32;
        let mut tbuf = [0.0f64; 4];
        while qbits != 0 {
            let lane = qbits.trailing_zeros() as usize;
            qbits &= qbits - 1;
            let j = (q0 + lane) * super::QUAD;
            // Validity mask over the quad's members (the last real quad
            // may be ragged); pad lanes classify dead and are masked out
            // of the flag below.
            let vm = if j + 4 <= n {
                0b1111
            } else {
                (1i32 << (n - j)) - 1
            };
            // SAFETY: mirror columns are padded to a multiple of QUAD, so
            // `j + 4` is within them even on the ragged tail.
            let (live_bits, neg_bits, push_bits, posz_bits) = unsafe {
                let ex = _mm256_loadu_pd(plane.mex.as_ptr().add(j));
                let ey = _mm256_loadu_pd(plane.mey.as_ptr().add(j));
                let x1 = _mm256_loadu_pd(plane.mx1.as_ptr().add(j));
                let x2 = _mm256_loadu_pd(plane.mx2.as_ptr().add(j));
                let y1 = _mm256_loadu_pd(plane.my1.as_ptr().add(j));
                let y2 = _mm256_loadu_pd(plane.my2.as_ptr().add(j));
                let c = _mm256_loadu_pd(plane.mcount.as_ptr().add(j));
                let hw = _mm256_max_pd(_mm256_add_pd(bc.hw, ex), bc.zero);
                let hh = _mm256_max_pd(_mm256_add_pd(bc.hh, ey), bc.zero);
                let elx = _mm256_sub_pd(bc.cx, hw);
                let ehx = _mm256_add_pd(bc.cx, hw);
                let ely = _mm256_sub_pd(bc.cy, hh);
                let ehy = _mm256_add_pd(bc.cy, hh);
                let inter = _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(elx, x2),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(x1, ehx),
                    ),
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(ely, y2),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(y1, ehy),
                    ),
                );
                let ox = _mm256_max_pd(
                    _mm256_sub_pd(_mm256_min_pd(ehx, x2), _mm256_max_pd(elx, x1)),
                    bc.zero,
                );
                let oy = _mm256_max_pd(
                    _mm256_sub_pd(_mm256_min_pd(ehy, y2), _mm256_max_pd(ely, y1)),
                    bc.zero,
                );
                let w = _mm256_sub_pd(x2, x1);
                let h = _mm256_sub_pd(y2, y1);
                let wpos = _mm256_cmp_pd::<_CMP_GT_OQ>(w, bc.zero);
                let hpos = _mm256_cmp_pd::<_CMP_GT_OQ>(h, bc.zero);
                let live = _mm256_and_pd(
                    _mm256_and_pd(inter, _mm256_cmp_pd::<_CMP_NEQ_UQ>(c, bc.zero)),
                    _mm256_and_pd(
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LE_OQ>(w, bc.zero),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(ox, bc.zero),
                        ),
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LE_OQ>(h, bc.zero),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(oy, bc.zero),
                        ),
                    ),
                );
                let neg = _mm256_and_pd(inter, _mm256_cmp_pd::<_CMP_LT_OQ>(c, bc.zero));
                let live_bits = _mm256_movemask_pd(live);
                let (mut push_bits, mut posz_bits) = (0, 0);
                if live_bits != 0 {
                    // `(ox / w).clamp(0.0, 1.0)` with the scalar's exact
                    // semantics: compare-and-blend keeps a NaN quotient,
                    // and `w > 0` selects the division only where the
                    // scalar would take that branch.
                    let qx = _mm256_div_pd(ox, w);
                    let qx =
                        _mm256_blendv_pd(qx, bc.zero, _mm256_cmp_pd::<_CMP_LT_OQ>(qx, bc.zero));
                    let qx = _mm256_blendv_pd(qx, bc.one, _mm256_cmp_pd::<_CMP_GT_OQ>(qx, bc.one));
                    let fx = _mm256_blendv_pd(bc.one, qx, wpos);
                    let qy = _mm256_div_pd(oy, h);
                    let qy =
                        _mm256_blendv_pd(qy, bc.zero, _mm256_cmp_pd::<_CMP_LT_OQ>(qy, bc.zero));
                    let qy = _mm256_blendv_pd(qy, bc.one, _mm256_cmp_pd::<_CMP_GT_OQ>(qy, bc.one));
                    let fy = _mm256_blendv_pd(bc.one, qy, hpos);
                    // The reference's product order: `(c * fx) * fy`.
                    let t = _mm256_mul_pd(_mm256_mul_pd(c, fx), fy);
                    _mm256_storeu_pd(tbuf.as_mut_ptr(), t);
                    // `t != 0.0` is unordered-NEQ: a NaN term is pushed
                    // (EQ_OQ is false for NaN), matching the scalar. A
                    // live zero term was a `+0.0` iff its sign bit is
                    // clear — `movemask` reads exactly those bits.
                    let tz_bits = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(t, bc.zero));
                    push_bits = live_bits & !tz_bits;
                    posz_bits = live_bits & tz_bits & !_mm256_movemask_pd(t);
                }
                (live_bits, _mm256_movemask_pd(neg), push_bits, posz_bits)
            };
            // Dead lanes skip a `+0.0` term unless they are intersecting
            // negative-count buckets (module docs, step 3); live zero
            // terms contribute their computed sign. Pad lanes are masked
            // out — their skipped "terms" do not exist.
            *saw_pos_zero |= (((!live_bits & !neg_bits) | posz_bits) & vm) != 0;
            // Branchless scatter: every lane stores its term and ORs its
            // push bit into the mask, so the unpredictable push pattern
            // never feeds a branch. Non-push lanes OR a zero bit (a
            // no-op) and store to a slot the mask does not expose — each
            // bucket id is visited exactly once per query (the mirror is
            // a permutation), so the store cannot clobber a real term,
            // and pad lanes map to the buffer's spare slot.
            let pb = push_bits as u64;
            for (lane, &t) in tbuf.iter().enumerate() {
                // SAFETY: `morder` is padded to the mirror length, ids
                // are at most `n`, and the buffer holds `n + 1` value
                // slots plus a spare mask word (see `TermBuf::reset`).
                unsafe {
                    let id = *plane.morder.get_unchecked(j + lane) as usize;
                    *buf.vals.get_unchecked_mut(id) = t;
                    *buf.mask.get_unchecked_mut(id >> 6) |= ((pb >> lane) & 1) << (id & 63);
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_pruned_avx2(
        plane: &BucketPlane,
        p: &QueryPrep,
        buf: &mut TermBuf,
    ) -> f64 {
        buf.reset(plane.len());
        let nb = plane.len().div_ceil(super::BLOCK);
        let mut saw_pos_zero = false;
        let bc = QBcast {
            zero: _mm256_setzero_pd(),
            one: _mm256_set1_pd(1.0),
            cx: _mm256_set1_pd(p.cx),
            cy: _mm256_set1_pd(p.cy),
            hw: _mm256_set1_pd(p.hw),
            hh: _mm256_set1_pd(p.hh),
        };
        let mut b = 0usize;
        while b < nb {
            // Validity mask over real blocks in this coarse vector; the
            // padded block columns make the final load safe.
            let vm = if b + 4 <= nb {
                0b1111
            } else {
                (1i32 << (nb - b)) - 1
            };
            // SAFETY: block columns are padded to a multiple of four
            // summaries, so `b + 4` is in bounds even on the ragged tail.
            let bbits = unsafe {
                inter4_avx2(
                    &plane.bx1, &plane.by1, &plane.bx2, &plane.by2, &plane.bex, &plane.bey, b, &bc,
                )
            } & vm;
            // A pruned block skips only proven `+0.0` terms, and blocks
            // are never empty; pad blocks are masked out.
            saw_pos_zero |= bbits != vm;
            let mut ib = bbits as u32;
            while ib != 0 {
                let lane = ib.trailing_zeros() as usize;
                ib &= ib - 1;
                // SAFETY: same AVX2 witness as this function.
                unsafe {
                    scan_block_avx2(plane, b + lane, &bc, buf, &mut saw_pos_zero);
                }
            }
            b += 4;
        }
        plane.fold_masked(buf, saw_pos_zero)
    }

    /// SSE2 block-pruned scan, two blocks per coarse compare; the baseline
    /// twin of [`accumulate_pruned_avx2`].
    pub(super) fn accumulate_pruned_sse2(
        plane: &BucketPlane,
        p: &QueryPrep,
        buf: &mut TermBuf,
    ) -> f64 {
        buf.reset(plane.len());
        let nb = plane.len().div_ceil(super::BLOCK);
        let mut saw_pos_zero = false;
        // SAFETY: SSE2 is statically available on every x86_64 target.
        unsafe {
            let zero = _mm_setzero_pd();
            let cx = _mm_set1_pd(p.cx);
            let cy = _mm_set1_pd(p.cy);
            let qhw = _mm_set1_pd(p.hw);
            let qhh = _mm_set1_pd(p.hh);
            let mut b = 0usize;
            while b + 2 <= nb {
                // SAFETY: all block columns have length `nb`, `b + 2 <= nb`.
                let bex = _mm_loadu_pd(plane.bex.as_ptr().add(b));
                let bey = _mm_loadu_pd(plane.bey.as_ptr().add(b));
                let bx1 = _mm_loadu_pd(plane.bx1.as_ptr().add(b));
                let bx2 = _mm_loadu_pd(plane.bx2.as_ptr().add(b));
                let by1 = _mm_loadu_pd(plane.by1.as_ptr().add(b));
                let by2 = _mm_loadu_pd(plane.by2.as_ptr().add(b));
                let hw = _mm_max_pd(_mm_add_pd(qhw, bex), zero);
                let hh = _mm_max_pd(_mm_add_pd(qhh, bey), zero);
                let elx = _mm_sub_pd(cx, hw);
                let ehx = _mm_add_pd(cx, hw);
                let ely = _mm_sub_pd(cy, hh);
                let ehy = _mm_add_pd(cy, hh);
                let inter = _mm_and_pd(
                    _mm_and_pd(_mm_cmple_pd(elx, bx2), _mm_cmple_pd(bx1, ehx)),
                    _mm_and_pd(_mm_cmple_pd(ely, by2), _mm_cmple_pd(by1, ehy)),
                );
                let inter_bits = _mm_movemask_pd(inter);
                saw_pos_zero |= inter_bits != 0b11;
                for lane in 0..2 {
                    if inter_bits & (1 << lane) != 0 {
                        plane.scan_block_scalar(b + lane, p, buf, &mut saw_pos_zero);
                    }
                }
                b += 2;
            }
            while b < nb {
                if plane.block_pruned(b, p) {
                    saw_pos_zero = true;
                } else {
                    plane.scan_block_scalar(b, p, buf, &mut saw_pos_zero);
                }
                b += 1;
            }
        }
        plane.fold_masked(buf, saw_pos_zero)
    }

    /// SSE2 filter, two buckets per iteration. SSE2 is part of the x86_64
    /// baseline, so this needs no runtime detection.
    pub(super) fn accumulate_sse2(plane: &BucketPlane, p: &QueryPrep) -> f64 {
        let n = plane.len();
        let mut acc = -0.0f64;
        let mut saw_pos_zero = false;
        // SAFETY: SSE2 is statically available on every x86_64 target.
        unsafe {
            let zero = _mm_setzero_pd();
            let cx = _mm_set1_pd(p.cx);
            let cy = _mm_set1_pd(p.cy);
            let qhw = _mm_set1_pd(p.hw);
            let qhh = _mm_set1_pd(p.hh);
            let mut i = 0usize;
            while i + 2 <= n {
                // SAFETY: all columns have length `n` and `i + 2 <= n`.
                let ex = _mm_loadu_pd(plane.ex.as_ptr().add(i));
                let ey = _mm_loadu_pd(plane.ey.as_ptr().add(i));
                let x1 = _mm_loadu_pd(plane.x1.as_ptr().add(i));
                let x2 = _mm_loadu_pd(plane.x2.as_ptr().add(i));
                let y1 = _mm_loadu_pd(plane.y1.as_ptr().add(i));
                let y2 = _mm_loadu_pd(plane.y2.as_ptr().add(i));
                let c = _mm_loadu_pd(plane.count.as_ptr().add(i));
                let hw = _mm_max_pd(_mm_add_pd(qhw, ex), zero);
                let hh = _mm_max_pd(_mm_add_pd(qhh, ey), zero);
                let elx = _mm_sub_pd(cx, hw);
                let ehx = _mm_add_pd(cx, hw);
                let ely = _mm_sub_pd(cy, hh);
                let ehy = _mm_add_pd(cy, hh);
                let inter = _mm_and_pd(
                    _mm_and_pd(_mm_cmple_pd(elx, x2), _mm_cmple_pd(x1, ehx)),
                    _mm_and_pd(_mm_cmple_pd(ely, y2), _mm_cmple_pd(y1, ehy)),
                );
                let ox = _mm_max_pd(_mm_sub_pd(_mm_min_pd(ehx, x2), _mm_max_pd(elx, x1)), zero);
                let oy = _mm_max_pd(_mm_sub_pd(_mm_min_pd(ehy, y2), _mm_max_pd(ely, y1)), zero);
                let w = _mm_sub_pd(x2, x1);
                let h = _mm_sub_pd(y2, y1);
                // `_mm_cmpneq_pd` is unordered-true (NaN counts stay
                // live); gt/le are ordered, overlaps are never NaN.
                let live = _mm_and_pd(
                    _mm_and_pd(inter, _mm_cmpneq_pd(c, zero)),
                    _mm_and_pd(
                        _mm_or_pd(_mm_cmple_pd(w, zero), _mm_cmpgt_pd(ox, zero)),
                        _mm_or_pd(_mm_cmple_pd(h, zero), _mm_cmpgt_pd(oy, zero)),
                    ),
                );
                if _mm_movemask_pd(live) == 0 {
                    let neg = _mm_and_pd(inter, _mm_cmplt_pd(c, zero));
                    saw_pos_zero |= _mm_movemask_pd(neg) != 0b11;
                } else {
                    for lane in 0..2 {
                        plane.fold_one(i + lane, p, &mut acc, &mut saw_pos_zero);
                    }
                }
                i += 2;
            }
            while i < n {
                plane.fold_one(i, p, &mut acc, &mut saw_pos_zero);
                i += 1;
            }
        }
        BucketPlane::finish(acc, saw_pos_zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Point;

    fn reference(buckets: &[Bucket], rule: ExtensionRule, q: &Rect) -> f64 {
        let amounts: Vec<(f64, f64)> = buckets
            .iter()
            .map(|b| rule.amounts(b.avg_width, b.avg_height))
            .collect();
        buckets
            .iter()
            .zip(&amounts)
            .map(|(b, &(ex, ey))| b.estimate_with_extension(q, ex, ey))
            .sum()
    }

    fn bucket(x1: f64, y1: f64, x2: f64, y2: f64, count: f64, aw: f64, ah: f64) -> Bucket {
        Bucket {
            mbr: Rect::new(x1, y1, x2, y2),
            count,
            avg_width: aw,
            avg_height: ah,
        }
    }

    fn grid(side: usize) -> Vec<Bucket> {
        let mut out = Vec::new();
        for iy in 0..side {
            for ix in 0..side {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                out.push(bucket(
                    x,
                    y,
                    x + 10.0,
                    y + 10.0,
                    (ix * side + iy) as f64,
                    0.5,
                    1.5,
                ));
            }
        }
        out
    }

    fn queries() -> Vec<Rect> {
        vec![
            Rect::new(-500.0, -500.0, -400.0, -400.0),
            Rect::new(-10.0, -10.0, 200.0, 200.0),
            Rect::new(33.0, 41.0, 47.0, 55.0),
            Rect::new(9.9, 4.0, 10.1, 6.0),
            Rect::new(10.0, 0.0, 10.0, 80.0),
            Rect::from_point(Point::new(40.0, 40.0)),
            Rect::from_point(Point::new(-1.0, -1.0)),
            Rect::new(0.0, 0.0, 0.0, 80.0),
        ]
    }

    #[test]
    fn accumulate_matches_reference_bits() {
        for rule in [
            ExtensionRule::Minkowski,
            ExtensionRule::PaperLiteral,
            ExtensionRule::None,
        ] {
            for side in [1usize, 2, 3, 5, 8, 16] {
                let buckets = grid(side);
                let plane = BucketPlane::build(&buckets, rule);
                let mut terms = TermBuf::new();
                for q in queries() {
                    let p = QueryPrep::new(&q);
                    let want = reference(&buckets, rule, &q).to_bits();
                    assert_eq!(
                        plane.accumulate(&p).to_bits(),
                        want,
                        "rule={rule:?} side={side} q={q}"
                    );
                    assert_eq!(
                        plane.accumulate_pruned(&p, &mut terms).to_bits(),
                        want,
                        "pruned: rule={rule:?} side={side} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_matches_scalar_fold() {
        // Under `simd` this pins the vector filter against the scalar
        // fold; on default builds it is trivially true.
        let buckets = grid(9);
        let plane = BucketPlane::build(&buckets, ExtensionRule::Minkowski);
        for q in queries() {
            let p = QueryPrep::new(&q);
            assert_eq!(
                plane.accumulate(&p).to_bits(),
                plane.accumulate_scalar(&p).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn degenerate_and_adversarial_buckets_match_reference() {
        // Zero counts, a -0.0 count, point/segment MBRs, NaN extension
        // amounts, negative counts (unreachable via builders but handled),
        // and tiny counts that can underflow the product.
        let buckets = [
            bucket(0.0, 0.0, 10.0, 10.0, 0.0, 1.0, 1.0),
            Bucket {
                mbr: Rect::new(0.0, 0.0, 4.0, 4.0),
                count: -0.0,
                avg_width: 1.0,
                avg_height: 1.0,
            },
            bucket(5.0, 0.0, 5.0, 10.0, 40.0, 0.0, 0.0),
            Bucket {
                mbr: Rect::from_point(Point::new(1.0, 1.0)),
                count: 7.0,
                avg_width: 0.0,
                avg_height: 0.0,
            },
            Bucket {
                mbr: Rect::new(2.0, 2.0, 8.0, 8.0),
                count: 9.0,
                avg_width: f64::NAN,
                avg_height: 1.0,
            },
            Bucket {
                mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
                count: -3.0,
                avg_width: 0.1,
                avg_height: 0.1,
            },
            bucket(0.0, 0.0, 1e300, 1e300, 5e-324, 0.0, 0.0),
        ];
        // Duplicate the set so it exceeds the SIMD dispatch threshold and
        // the vector filters see the adversarial lanes too.
        let buckets: Vec<Bucket> = buckets.iter().chain(buckets.iter()).copied().collect();
        for rule in [
            ExtensionRule::Minkowski,
            ExtensionRule::PaperLiteral,
            ExtensionRule::None,
        ] {
            let plane = BucketPlane::build(&buckets, rule);
            for q in [
                Rect::new(0.0, 0.0, 10.0, 10.0),
                Rect::new(100.0, 100.0, 110.0, 110.0),
                Rect::new(4.0, 0.0, 6.0, 3.0),
                Rect::new(6.0, 0.0, 8.0, 10.0),
                Rect::from_point(Point::new(5.0, 5.0)),
                Rect::new(1.0, 1.0, 1.0, 1.0),
                Rect::new(10.0, 0.0, 12.0, 10.0),
            ] {
                let p = QueryPrep::new(&q);
                let got = plane.accumulate(&p);
                let want = reference(&buckets, rule, &q);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "rule={rule:?} q={q} got={got} want={want}"
                );
                let mut terms = TermBuf::new();
                let pruned = plane.accumulate_pruned(&p, &mut terms);
                assert_eq!(
                    pruned.to_bits(),
                    want.to_bits(),
                    "pruned: rule={rule:?} q={q} got={pruned} want={want}"
                );
            }
        }
    }

    #[test]
    fn subset_fold_matches_reference_subset() {
        let buckets = grid(6);
        let rule = ExtensionRule::Minkowski;
        let plane = BucketPlane::build(&buckets, rule);
        let ids: Vec<u32> = vec![0, 3, 7, 8, 20, 35];
        for q in queries() {
            let p = QueryPrep::new(&q);
            let want: f64 = ids
                .iter()
                .map(|&i| {
                    let b = &buckets[i as usize];
                    let (ex, ey) = rule.amounts(b.avg_width, b.avg_height);
                    b.estimate_with_extension(&q, ex, ey)
                })
                .sum();
            assert_eq!(
                plane.accumulate_ids(&p, &ids).to_bits(),
                want.to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn empty_plane_returns_fold_identity() {
        let plane = BucketPlane::build(&[], ExtensionRule::Minkowski);
        let p = QueryPrep::new(&Rect::new(0.0, 0.0, 1.0, 1.0));
        // The reference fold over zero terms is Rust's `-0.0` identity.
        assert_eq!(plane.accumulate(&p).to_bits(), (-0.0f64).to_bits());
        assert_eq!(plane.accumulate_ids(&p, &[]).to_bits(), (-0.0f64).to_bits());
        let mut terms = TermBuf::new();
        assert_eq!(
            plane.accumulate_pruned(&p, &mut terms).to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn morton_mirror_is_a_permutation_with_consistent_blocks() {
        let buckets = grid(7); // 49 buckets: a ragged final block and quad
        let n = buckets.len();
        let plane = BucketPlane::build(&buckets, ExtensionRule::Minkowski);
        let mut seen = vec![false; n];
        for &id in &plane.morder[..n] {
            assert!(!std::mem::replace(&mut seen[id as usize], true));
        }
        assert!(seen.iter().all(|&s| s));
        // Pads: sentinel ids out to a whole quad, block summaries out to
        // a whole coarse vector.
        assert_eq!(plane.morder.len(), n.next_multiple_of(4));
        assert!(plane.morder[n..].iter().all(|&id| id as usize == n));
        assert_eq!(plane.bx1.len(), n.div_ceil(16));
        for (j, &id) in plane.morder[..n].iter().enumerate() {
            let b = j / 16;
            let m = &buckets[id as usize].mbr;
            assert!(plane.bx1[b] <= m.lo.x && m.hi.x <= plane.bx2[b]);
            assert!(plane.by1[b] <= m.lo.y && m.hi.y <= plane.by2[b]);
            assert!(plane.bex[b] >= plane.mex[j] && plane.bey[b] >= plane.mey[j]);
        }
    }

    #[cfg(feature = "fast-math")]
    #[test]
    fn fast_math_within_relative_error_bound() {
        for side in [4usize, 10, 20] {
            let buckets = grid(side);
            let plane = BucketPlane::build(&buckets, ExtensionRule::Minkowski);
            for q in queries() {
                let p = QueryPrep::new(&q);
                let exact = plane.accumulate(&p);
                let fast = plane.accumulate_fast(&p);
                let err = (fast - exact).abs();
                assert!(
                    err <= 1e-12 * exact.abs().max(1.0),
                    "side={side} q={q} exact={exact} fast={fast}"
                );
            }
        }
    }

    #[test]
    fn size_bytes_counts_all_columns() {
        // 16 buckets: 9 fine + 7 mirror f64 columns, one u32 id column,
        // one block summary padded to a coarse vector of four, and four
        // quad summaries (6 f64 each).
        let plane = BucketPlane::build(&grid(4), ExtensionRule::Minkowski);
        assert_eq!(
            plane.size_bytes(),
            16 * 9 * 8 + 16 * 7 * 8 + 16 * 4 + 4 * 6 * 8 + 4 * 6 * 8
        );
    }
}
