//! Incremental histogram maintenance.
//!
//! A DBMS cannot rebuild statistics on every update; it patches them and
//! rebuilds when they drift too far. This module gives [`SpatialHistogram`]
//! that lifecycle:
//!
//! * [`SpatialHistogram::note_insert`] / [`SpatialHistogram::note_delete`]
//!   fold a single data change into the bucket counts (running averages for
//!   the width/height statistics included).
//! * A **staleness** measure tracks how much of the mutation stream the
//!   bucket grid could not absorb faithfully — inserts outside every bucket,
//!   deletes that no bucket could account for, and raw churn volume —
//!   so callers can trigger a rebuild once
//!   [`SpatialHistogram::staleness`] crosses their threshold (the usual
//!   "ANALYZE after X% churn" policy).
//!
//! Rebuilding is no longer the only remedy. The paper's construction is
//! cheap enough that a full rebuild is never painful (Table 1), but the
//! [`crate::refine`] module also offers a *bounded* middle path: repair the
//! histogram in place from observed (query, exact, estimate) feedback —
//! split the worst bucket, merge the lowest-skew pair, re-fit counts —
//! without touching the base data at all. The patched histogram stays
//! *approximately* correct between either kind of repair.
//!
//! Staleness is measured against a **stable mutation base**: the data size
//! at construction time (or the current size, whichever is larger).
//! Dividing by the live `input_len` would let delete-heavy churn inflate
//! staleness quadratically — every delete both grows the churn numerator
//! and shrinks the denominator — triggering spurious re-ANALYZE runs.

use minskew_geom::Rect;

use crate::SpatialHistogram;

impl SpatialHistogram {
    /// Records the insertion of `rect` into the underlying relation.
    ///
    /// The rectangle is credited to the bucket containing its centre; its
    /// dimensions update that bucket's running averages. Returns `true` if
    /// a bucket absorbed it; inserts that no bucket covers (outside the
    /// histogram's original data extent) only increase staleness — exactly
    /// the situation that requires a rebuild.
    pub fn note_insert(&mut self, rect: &Rect) -> bool {
        let center = rect.center();
        self.input_len_mut(1);
        let absorbed = {
            let Some(bucket) = self
                .buckets_mut()
                .iter_mut()
                .find(|b| b.mbr.contains_point(center))
            else {
                self.churn_mut(1.0);
                return false;
            };
            let n = bucket.count;
            bucket.avg_width = (bucket.avg_width * n + rect.width()) / (n + 1.0);
            bucket.avg_height = (bucket.avg_height * n + rect.height()) / (n + 1.0);
            bucket.count = n + 1.0;
            true
        };
        self.churn_mut(0.5);
        absorbed
    }

    /// Records the deletion of `rect` from the underlying relation.
    ///
    /// Decrements the covering bucket with a **saturating-at-zero**
    /// decrement: a fractional-count bucket (post-refit or post-churn)
    /// absorbs as much of the delete as it can and the shortfall is
    /// charged as unabsorbable churn. The average dimensions are left
    /// alone: without the full data we cannot un-average exactly, and the
    /// bias is part of what staleness accounts for. Returns `true` only
    /// when a bucket fully accounted for the delete.
    pub fn note_delete(&mut self, rect: &Rect) -> bool {
        let center = rect.center();
        self.input_len_mut(-1);
        let absorbed = {
            let Some(bucket) = self
                .buckets_mut()
                .iter_mut()
                .find(|b| b.mbr.contains_point(center))
            else {
                self.churn_mut(1.0);
                return false;
            };
            let dec = bucket.count.clamp(0.0, 1.0);
            bucket.count -= dec;
            dec
        };
        // The absorbed fraction carries half weight, the shortfall full
        // weight — a fully absorbable delete costs 0.5, an empty-bucket
        // delete the same 1.0 an uncovered delete costs.
        self.churn_mut(0.5 * absorbed + (1.0 - absorbed));
        absorbed >= 1.0
    }

    /// Fraction of the (weighted) mutation stream since construction that
    /// the histogram could not absorb faithfully, relative to its data
    /// size. `0.0` for a freshly built histogram; typical rebuild policies
    /// trigger around `0.1`–`0.3`.
    ///
    /// Every mutation contributes: absorbed changes half weight (counts
    /// stay right but the partition boundaries no longer minimise skew),
    /// unabsorbable changes full weight. The denominator is the **stable
    /// mutation base** — the data size at construction, or the current
    /// size if the relation has since grown — never the shrinking live
    /// size, so delete-heavy workloads cannot inflate the ratio from both
    /// ends.
    pub fn staleness(&self) -> f64 {
        use crate::SpatialEstimator;
        let base = self.mutation_base().max(self.input_len()).max(1) as f64;
        self.churn() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinSkewBuilder, SpatialEstimator};
    use minskew_datagen::charminar_with;
    use minskew_geom::Point;

    fn hist() -> (minskew_data::Dataset, SpatialHistogram) {
        let ds = charminar_with(5_000, 1);
        let h = MinSkewBuilder::new(40).regions(1_600).build(&ds);
        (ds, h)
    }

    #[test]
    fn insert_updates_count_and_estimates() {
        let (_, mut h) = hist();
        let before_n = h.input_len();
        let before_total = h.total_count();
        let r = Rect::from_center_size(Point::new(500.0, 500.0), 100.0, 100.0);
        assert!(h.note_insert(&r));
        assert_eq!(h.input_len(), before_n + 1);
        assert!((h.total_count() - before_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delete_reverses_insert() {
        let (_, mut h) = hist();
        let baseline = h.total_count();
        let r = Rect::from_center_size(Point::new(1_000.0, 1_000.0), 80.0, 80.0);
        assert!(h.note_insert(&r));
        assert!(h.note_delete(&r));
        assert!((h.total_count() - baseline).abs() < 1e-9);
        assert_eq!(h.input_len(), 5_000);
    }

    #[test]
    fn outside_inserts_raise_staleness_without_counting() {
        let (_, mut h) = hist();
        let far = Rect::from_center_size(Point::new(1e7, 1e7), 10.0, 10.0);
        assert!(!h.note_insert(&far));
        // input_len still tracks the relation truthfully.
        assert_eq!(h.input_len(), 5_001);
        // No bucket absorbed it.
        assert!((h.total_count() - 5_000.0).abs() < 1e-9);
        assert!(h.staleness() > 0.0);
    }

    #[test]
    fn staleness_grows_with_churn_and_guides_rebuild() {
        let (ds, mut h) = hist();
        assert_eq!(h.staleness(), 0.0);
        // Apply a heavy churn of inserts into a previously sparse corner.
        for i in 0..2_000 {
            let x = 4_000.0 + (i % 50) as f64 * 10.0;
            let y = 4_000.0 + (i / 50) as f64 * 10.0;
            h.note_insert(&Rect::from_center_size(Point::new(x, y), 100.0, 100.0));
        }
        assert!(
            h.staleness() > 0.1,
            "2000 mutations on 5000 rects must register: {}",
            h.staleness()
        );
        // The patched histogram still answers, and the rebuild policy
        // would kick in; a rebuilt histogram has zero staleness.
        let rebuilt = MinSkewBuilder::new(40).regions(1_600).build(&ds);
        assert_eq!(rebuilt.staleness(), 0.0);
    }

    #[test]
    fn patched_estimates_track_inserts() {
        let (_, mut h) = hist();
        // Insert a block of rects into the sparse centre region.
        let q = Rect::new(4_500.0, 4_500.0, 5_500.0, 5_500.0);
        let est_before = h.estimate_count(&q);
        let mass_before = h.total_count();
        for i in 0..500 {
            let x = 4_600.0 + (i % 25) as f64 * 30.0;
            let y = 4_600.0 + (i / 25) as f64 * 30.0;
            assert!(h.note_insert(&Rect::from_center_size(Point::new(x, y), 50.0, 50.0)));
        }
        // Global mass is exact; the local estimate moves in the right
        // direction but is *diluted* across the covering bucket — patching
        // preserves totals, not detail, which is why staleness exists.
        assert!((h.total_count() - mass_before - 500.0).abs() < 1e-9);
        let est_after = h.estimate_count(&q);
        assert!(
            est_after > est_before,
            "local estimate must increase ({est_before} -> {est_after})"
        );
        // A whole-space query reflects the inserts exactly.
        let whole = Rect::new(-1e6, -1e6, 1e6, 1e6);
        assert!((h.estimate_count(&whole) - mass_before - 500.0).abs() < 1e-6);
    }

    #[test]
    fn delete_heavy_staleness_uses_stable_base() {
        // Regression: staleness used to divide churn by the *current*
        // input_len, so deleting 4000 of 5000 rects reported
        // 2000/1000 = 2.0 — every delete grew the numerator and shrank
        // the denominator. Against the stable construction base the same
        // stream stays bounded by churn/5000 <= 0.8.
        let (ds, mut h) = hist();
        use minskew_data::RectSource;
        let rects = ds.as_slice().expect("dataset is materialised");
        for r in rects.iter().take(4_000) {
            h.note_delete(r);
        }
        assert_eq!(h.input_len(), 1_000);
        let s = h.staleness();
        assert!(
            s <= 0.85,
            "delete-heavy staleness must stay bounded by the stable base: {s}"
        );
        assert!(
            s >= 0.35,
            "4000 absorbed deletes on a 5000-rect base must still register: {s}"
        );
    }

    #[test]
    fn staleness_base_follows_growth() {
        // Inserts beyond the construction size raise the base, so a
        // histogram that doubled its relation is not judged against the
        // original (smaller) denominator.
        let (_, mut h) = hist();
        for i in 0..5_000 {
            let x = 100.0 + (i % 70) as f64 * 30.0;
            let y = 100.0 + (i / 70) as f64 * 30.0;
            h.note_insert(&Rect::from_center_size(Point::new(x, y), 20.0, 20.0));
        }
        // 5000 absorbed inserts at half weight = 2500 churn over a base
        // of max(5000, 10000) = 10000.
        assert!((h.staleness() - 0.25).abs() < 1e-9, "{}", h.staleness());
    }

    #[test]
    fn fractional_bucket_absorbs_delete_saturating_at_zero() {
        // Regression: note_delete skipped buckets with count < 1.0, so a
        // fractional-count bucket (post-refit or post-churn) could never
        // absorb a delete and the mutation was charged as fully
        // unabsorbable even though the centre was covered.
        let mut h = SpatialHistogram::from_parts(
            "frac",
            vec![
                crate::Bucket {
                    mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                    count: 0.6,
                    avg_width: 1.0,
                    avg_height: 1.0,
                },
                crate::Bucket {
                    mbr: Rect::new(10.0, 0.0, 20.0, 10.0),
                    count: 5.0,
                    avg_width: 1.0,
                    avg_height: 1.0,
                },
            ],
            6,
            crate::ExtensionRule::Minkowski,
        );
        let in_frac = Rect::from_center_size(Point::new(5.0, 5.0), 1.0, 1.0);
        // Partially absorbed: the 0.6 drains to exactly zero, the
        // neighbour is untouched, and the 0.4 shortfall is charged at
        // full weight (0.5 * 0.6 + 0.4 = 0.7 churn).
        assert!(!h.note_delete(&in_frac));
        assert_eq!(h.buckets()[0].count, 0.0);
        assert_eq!(h.buckets()[1].count, 5.0);
        assert!((h.churn() - 0.7).abs() < 1e-9, "churn = {}", h.churn());
        // A second delete at the same spot finds an empty bucket: nothing
        // to absorb, full churn weight, count stays at zero.
        assert!(!h.note_delete(&in_frac));
        assert_eq!(h.buckets()[0].count, 0.0);
        assert!((h.churn() - 1.7).abs() < 1e-9, "churn = {}", h.churn());
        // A fully absorbable delete still costs only half weight.
        let in_whole = Rect::from_center_size(Point::new(15.0, 5.0), 1.0, 1.0);
        assert!(h.note_delete(&in_whole));
        assert_eq!(h.buckets()[1].count, 4.0);
        assert!((h.churn() - 2.2).abs() < 1e-9, "churn = {}", h.churn());
    }

    #[test]
    fn delete_never_goes_negative() {
        let (_, mut h) = hist();
        // Hammer deletes at one spot until its bucket is empty.
        let r = Rect::from_center_size(Point::new(200.0, 200.0), 100.0, 100.0);
        for _ in 0..10_000 {
            h.note_delete(&r);
        }
        assert!(h.buckets().iter().all(|b| b.count >= 0.0));
    }
}
