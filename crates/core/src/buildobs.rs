//! Build-time observability hooks shared by every histogram builder.

use crate::{SpatialEstimator, SpatialHistogram};

/// Records one histogram construction into the global metrics registry:
/// `core.build.<technique>.ns` (latency histogram) and
/// `core.build.<technique>.bytes` (summary-size gauge).
///
/// Recording is write-only and touches nothing the build result depends on,
/// so instrumented and uninstrumented builds are byte-identical; under
/// `minskew-obs`'s `noop` feature the whole call compiles to nothing.
pub(crate) fn record_build(hist: &SpatialHistogram, build_ns: u64) {
    let technique = minskew_obs::name_component(hist.name());
    let registry = minskew_obs::Registry::global();
    registry
        .histogram(&format!("core.build.{technique}.ns"))
        .record(build_ns);
    registry
        .gauge(&format!("core.build.{technique}.bytes"))
        .set(hist.summary_bytes() as f64);
}
