//! Sampling-based estimation (§5.3).
//!
//! A reservoir sample of the input rectangles answers queries by counting
//! matching sample rectangles and scaling by `N / n`. The paper's space
//! accounting charges a sample rectangle half a bucket (it stores only the
//! bounding box, four words) *and additionally grants Sample twice the fair
//! space*, so a budget of `β` buckets corresponds to `4β` sample rectangles
//! — the default multiplier here. The paper shows the technique performing
//! poorly despite the generous budget, because a sample rectangle implicitly
//! stands in for the placement *and size* of its whole neighbourhood.

use minskew_data::Dataset;
use minskew_geom::Rect;
use rand::{Rng, SeedableRng};

use crate::error::BuildError;
use crate::SpatialEstimator;

/// The *Sample* estimator.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    sample: Vec<Rect>,
    input_len: usize,
}

impl SamplingEstimator {
    /// Sample rectangles granted per bucket of budget (the paper's
    /// double-generous accounting: 2 rects per bucket of space × 2).
    pub const RECTS_PER_BUCKET: usize = 4;

    /// Draws a uniform reservoir sample equivalent in (doubled) space to
    /// `buckets` buckets, i.e. `4 × buckets` rectangles.
    pub fn build(data: &Dataset, buckets: usize, seed: u64) -> SamplingEstimator {
        Self::with_sample_size(data, buckets * Self::RECTS_PER_BUCKET, seed)
    }

    /// Draws a uniform reservoir sample of exactly `sample_size` rectangles
    /// (capped at the dataset size).
    pub fn with_sample_size(data: &Dataset, sample_size: usize, seed: u64) -> SamplingEstimator {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rects = data.rects();
        let k = sample_size.min(rects.len());
        // Algorithm R reservoir sampling: one pass, O(N), uniform without
        // knowing N in advance (mirrors how a DBMS samples a scan).
        let mut sample: Vec<Rect> = rects.iter().take(k).copied().collect();
        for (i, &r) in rects.iter().enumerate().skip(k) {
            let j = rng.gen_range(0..=i);
            if j < k {
                sample[j] = r;
            }
        }
        SamplingEstimator {
            sample,
            input_len: rects.len(),
        }
    }

    /// Fallible counterpart of [`SamplingEstimator::build`].
    pub fn try_build(
        data: &Dataset,
        buckets: usize,
        seed: u64,
    ) -> Result<SamplingEstimator, BuildError> {
        if buckets == 0 {
            return Err(BuildError::ZeroBucketBudget);
        }
        Self::try_with_sample_size(data, buckets * Self::RECTS_PER_BUCKET, seed)
    }

    /// Fallible counterpart of [`SamplingEstimator::with_sample_size`].
    pub fn try_with_sample_size(
        data: &Dataset,
        sample_size: usize,
        seed: u64,
    ) -> Result<SamplingEstimator, BuildError> {
        if sample_size == 0 {
            return Err(BuildError::InvalidConfig(
                "sample size must be at least 1".into(),
            ));
        }
        if data.is_empty() {
            return Err(BuildError::EmptyDataset);
        }
        Ok(Self::with_sample_size(data, sample_size, seed))
    }

    /// Number of sampled rectangles.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }
}

impl SpatialEstimator for SamplingEstimator {
    fn estimate_count(&self, query: &Rect) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let m = self.sample.iter().filter(|r| r.intersects(query)).count();
        m as f64 * self.input_len as f64 / self.sample.len() as f64
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn name(&self) -> &str {
        "Sample"
    }

    fn size_bytes(&self) -> usize {
        // Four words (the bounding box) per sample rectangle.
        self.sample.len() * 4 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::uniform_rects;

    #[test]
    fn full_sample_is_exact() {
        let ds = uniform_rects(500, Rect::new(0.0, 0.0, 100.0, 100.0), 2.0, 2.0, 1);
        // Budget big enough to sample everything.
        let s = SamplingEstimator::build(&ds, 1_000, 7);
        assert_eq!(s.sample_size(), 500);
        let q = Rect::new(10.0, 10.0, 60.0, 60.0);
        assert_eq!(s.estimate_count(&q), ds.count_intersecting(&q) as f64);
    }

    #[test]
    fn scaled_estimates_are_unbiased_ballpark() {
        let ds = uniform_rects(50_000, Rect::new(0.0, 0.0, 1000.0, 1000.0), 4.0, 4.0, 2);
        let s = SamplingEstimator::build(&ds, 100, 3);
        assert_eq!(s.sample_size(), 400);
        let q = Rect::new(0.0, 0.0, 500.0, 500.0); // ~ quarter of the data
        let actual = ds.count_intersecting(&q) as f64;
        let est = s.estimate_count(&q);
        assert!(
            (est - actual).abs() / actual < 0.25,
            "est {est} vs actual {actual}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = uniform_rects(2_000, Rect::new(0.0, 0.0, 100.0, 100.0), 1.0, 1.0, 4);
        let a = SamplingEstimator::build(&ds, 10, 5);
        let b = SamplingEstimator::build(&ds, 10, 5);
        let q = Rect::new(0.0, 0.0, 30.0, 30.0);
        assert_eq!(a.estimate_count(&q), b.estimate_count(&q));
    }

    #[test]
    fn space_accounting() {
        let ds = uniform_rects(10_000, Rect::new(0.0, 0.0, 100.0, 100.0), 1.0, 1.0, 6);
        let s = SamplingEstimator::build(&ds, 50, 0);
        assert_eq!(s.sample_size(), 200);
        assert_eq!(s.size_bytes(), 200 * 32);
        assert_eq!(s.name(), "Sample");
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(vec![]);
        let s = SamplingEstimator::build(&ds, 10, 0);
        assert_eq!(s.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }

    use minskew_data::Dataset;
}
