//! Exact minimum-spatial-skew BSP by dynamic programming — the infeasible
//! baseline that motivates greedy Min-Skew.
//!
//! The paper (§4): "The best known algorithms for constructing BSPs use
//! dynamic programming and have a complexity of at least O(N^2.5) [MPS99]
//! and also require the input to be in memory. Clearly this is infeasible
//! for large GIS data." This module implements that exact algorithm over
//! the density grid, so the repository can *measure* the claim: how much
//! skew (and estimation accuracy) does the greedy heuristic give up, and at
//! what cost does optimality come?
//!
//! The DP is over rectangular cell blocks: `best(B, k)` is the minimum
//! total SSE achievable by partitioning block `B` into at most `k` buckets
//! with guillotine (BSP) cuts:
//!
//! ```text
//! best(B, 1) = SSE(B)
//! best(B, k) = min( SSE(B),
//!                   min over axis, position, k₁+k₂=k of
//!                       best(B₁, k₁) + best(B₂, k₂) )
//! ```
//!
//! A `g × g` grid has `O(g⁴)` blocks and each state scans `O(g·k)`
//! transitions, so the whole table costs `O(g⁵·β²)` — perfectly fine for
//! the small grids this baseline exists to be compared on (`g ≲ 16`), and
//! exactly why it cannot replace the greedy algorithm at the paper's
//! 10,000-region operating point.

use minskew_data::{CellBlock, Dataset, DensityGrid, GridPrefixSums};
use minskew_geom::Axis;

use crate::error::BuildError;
use crate::minskew::blocks_to_histogram;
use crate::{ExtensionRule, SpatialHistogram};

/// Upper bound on the DP state space (`side⁴ × (buckets + 1)`); beyond this
/// the exact baseline is infeasible and callers should use the greedy
/// algorithm instead.
const MAX_DP_STATES: usize = 64_000_000;

/// Result of an optimal-BSP construction.
#[derive(Debug)]
pub struct OptimalBsp {
    /// The histogram built from the optimal partitioning.
    pub histogram: SpatialHistogram,
    /// The partitioning's total spatial skew (Definition 4.1) — the DP's
    /// objective value, directly comparable to
    /// [`crate::MinSkewDetail::spatial_skew`].
    pub spatial_skew: f64,
}

/// Builds the *optimal* BSP histogram over a `side × side` density grid.
///
/// # Panics
///
/// Panics if `buckets == 0`, or if the state space
/// (`side⁴ × (buckets + 1)`) would exceed ~64 M entries — this algorithm is
/// a measurement baseline for small grids, not a production path; use
/// [`crate::MinSkewBuilder`] for real workloads.
pub fn build_optimal_bsp(data: &Dataset, buckets: usize, side: usize) -> OptimalBsp {
    assert!(buckets >= 1, "need at least one bucket");
    assert!(side >= 1, "need at least one grid cell per axis");
    if data.is_empty() {
        return OptimalBsp {
            histogram: SpatialHistogram::from_parts(
                "Optimal-BSP",
                vec![],
                0,
                ExtensionRule::default(),
            ),
            spatial_skew: 0.0,
        };
    }
    build_optimal_bsp_inner(data, buckets, side)
}

/// Fallible counterpart of [`build_optimal_bsp`].
///
/// # Errors
///
/// * [`BuildError::ZeroBucketBudget`] — `buckets == 0`.
/// * [`BuildError::EmptyDataset`] — no input rectangles.
/// * [`BuildError::InvalidConfig`] — `side == 0` or a state space beyond
///   the feasibility bound of this exact baseline.
pub fn try_build_optimal_bsp(
    data: &Dataset,
    buckets: usize,
    side: usize,
) -> Result<OptimalBsp, BuildError> {
    if buckets == 0 {
        return Err(BuildError::ZeroBucketBudget);
    }
    if side == 0 {
        return Err(BuildError::InvalidConfig(
            "need at least one grid cell per axis".into(),
        ));
    }
    if data.is_empty() {
        return Err(BuildError::EmptyDataset);
    }
    if !data.stats().mbr.is_finite() {
        return Err(BuildError::NonFiniteMbr);
    }
    let states = side
        .checked_pow(4)
        .and_then(|s4| s4.checked_mul(buckets + 1))
        .unwrap_or(usize::MAX);
    if states > MAX_DP_STATES {
        return Err(BuildError::InvalidConfig(format!(
            "optimal BSP state space too large ({states}); use MinSkewBuilder instead"
        )));
    }
    Ok(build_optimal_bsp_inner(data, buckets, side))
}

fn build_optimal_bsp_inner(data: &Dataset, buckets: usize, side: usize) -> OptimalBsp {
    let mbr = data.stats().mbr;
    let grid = DensityGrid::build(data.rects().iter(), mbr, side, side);
    let prefix = GridPrefixSums::from_grid(&grid);
    let solver = Solver::new(&grid, &prefix, buckets);
    let (skew, blocks) = solver.solve(grid.full_block());
    let histogram = blocks_to_histogram(
        "Optimal-BSP",
        data,
        &grid,
        &blocks,
        ExtensionRule::default(),
    );
    OptimalBsp {
        histogram,
        spatial_skew: skew,
    }
}

/// Computes only the optimal achievable spatial skew (no data pass),
/// useful for optimality-gap studies against
/// [`crate::MinSkewDetail::spatial_skew`].
pub fn optimal_bsp_skew(grid: &DensityGrid, buckets: usize) -> f64 {
    assert!(buckets >= 1, "need at least one bucket");
    let prefix = GridPrefixSums::from_grid(grid);
    let solver = Solver::new(grid, &prefix, buckets);
    solver.best(grid.full_block(), buckets)
}

struct Solver<'a> {
    prefix: &'a GridPrefixSums,
    nx: usize,
    ny: usize,
    max_k: usize,
    /// `memo[block_id * (max_k + 1) + k]`; NaN = not yet computed.
    memo: std::cell::RefCell<Vec<f64>>,
}

impl<'a> Solver<'a> {
    fn new(grid: &DensityGrid, prefix: &'a GridPrefixSums, max_k: usize) -> Solver<'a> {
        let (nx, ny) = (grid.nx(), grid.ny());
        let states = nx * nx * ny * ny * (max_k + 1);
        assert!(
            states <= MAX_DP_STATES,
            "optimal BSP state space too large ({states}); this exact \
             baseline is for small grids — use MinSkewBuilder instead"
        );
        Solver {
            prefix,
            nx,
            ny,
            max_k,
            memo: std::cell::RefCell::new(vec![f64::NAN; states]),
        }
    }

    #[inline]
    fn state_id(&self, b: CellBlock, k: usize) -> usize {
        (((b.x0 * self.nx + b.x1) * self.ny + b.y0) * self.ny + b.y1) * (self.max_k + 1) + k
    }

    /// Minimum SSE for partitioning `b` into at most `k` buckets.
    fn best(&self, b: CellBlock, k: usize) -> f64 {
        debug_assert!(k >= 1);
        let id = self.state_id(b, k);
        {
            let memo = self.memo.borrow();
            if !memo[id].is_nan() {
                return memo[id];
            }
        }
        let unsplit = self.prefix.block_sse(&b);
        let mut result = unsplit;
        if k > 1 && !b.is_unit() && unsplit > 0.0 {
            for axis in Axis::BOTH {
                let (lo, hi) = match axis {
                    Axis::X => (b.x0, b.x1),
                    Axis::Y => (b.y0, b.y1),
                };
                for i in lo..hi {
                    let (l, r) = b.split_after(axis, i);
                    // Allocate buckets between the halves; `best` is
                    // non-increasing in k, so scanning all splits of k is
                    // required for optimality.
                    for k1 in 1..k {
                        let v = self.best(l, k1) + self.best(r, k - k1);
                        if v < result {
                            result = v;
                        }
                    }
                }
            }
        }
        self.memo.borrow_mut()[id] = result;
        result
    }

    /// Solves and reconstructs the optimal block set for the full budget.
    fn solve(&self, root: CellBlock) -> (f64, Vec<CellBlock>) {
        let total = self.best(root, self.max_k);
        let mut blocks = Vec::new();
        self.reconstruct(root, self.max_k, total, &mut blocks);
        (total, blocks)
    }

    /// Re-derives the argmin decisions (cheap: every sub-result is memoised).
    fn reconstruct(&self, b: CellBlock, k: usize, value: f64, out: &mut Vec<CellBlock>) {
        const EPS: f64 = 1e-7;
        if k > 1 && !b.is_unit() {
            for axis in Axis::BOTH {
                let (lo, hi) = match axis {
                    Axis::X => (b.x0, b.x1),
                    Axis::Y => (b.y0, b.y1),
                };
                for i in lo..hi {
                    let (l, r) = b.split_after(axis, i);
                    for k1 in 1..k {
                        let lv = self.best(l, k1);
                        let rv = self.best(r, k - k1);
                        if (lv + rv - value).abs() <= EPS * value.max(1.0)
                            && lv + rv < self.prefix.block_sse(&b) - EPS
                        {
                            self.reconstruct(l, k1, lv, out);
                            self.reconstruct(r, k - k1, rv, out);
                            return;
                        }
                    }
                }
            }
        }
        out.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinSkewBuilder, SpatialEstimator};
    use minskew_datagen::charminar_with;
    use minskew_geom::Rect;

    #[test]
    fn optimal_never_worse_than_greedy_skew() {
        let ds = charminar_with(3_000, 1);
        for buckets in [2usize, 5, 10, 16] {
            let side = 10;
            let grid = DensityGrid::build(ds.rects().iter(), ds.stats().mbr, side, side);
            let optimal = optimal_bsp_skew(&grid, buckets);
            let (_, detail) = MinSkewBuilder::new(buckets)
                .regions(side * side)
                .build_detailed(&ds);
            assert!(
                optimal <= detail.spatial_skew + 1e-6,
                "buckets {buckets}: optimal {optimal} vs greedy {}",
                detail.spatial_skew
            );
        }
    }

    #[test]
    fn skew_non_increasing_in_buckets_and_zero_at_saturation() {
        let ds = charminar_with(2_000, 2);
        let side = 6;
        let grid = DensityGrid::build(ds.rects().iter(), ds.stats().mbr, side, side);
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 36] {
            let v = optimal_bsp_skew(&grid, k);
            assert!(v <= last + 1e-9, "k = {k}");
            last = v;
        }
        // Guillotine cuts reach every unit cell, so skew hits exactly zero
        // once k >= cells.
        assert_eq!(optimal_bsp_skew(&grid, side * side), 0.0);
    }

    #[test]
    fn reconstruction_matches_objective_and_tiles_grid() {
        let ds = charminar_with(2_500, 3);
        let result = build_optimal_bsp(&ds, 8, 8);
        // Recompute the skew from the emitted partition blocks: rebuild the
        // grid and sum SSEs via bucket MBRs? Instead verify the histogram's
        // mass and bounds, and the skew's consistency bound.
        assert!((result.histogram.total_count() - 2_500.0).abs() < 1e-9);
        assert!(result.spatial_skew >= 0.0);
        assert!(result.histogram.num_buckets() <= 8);
        // Buckets are disjoint (BSP) and lie within the data MBR.
        let bs = result.histogram.buckets();
        for (i, a) in bs.iter().enumerate() {
            assert!(ds.stats().mbr.contains_rect(&a.mbr));
            for b in &bs[i + 1..] {
                assert!(a.mbr.intersection_area(&b.mbr) < 1e-9);
            }
        }
    }

    #[test]
    fn hand_checkable_instance() {
        // 2x2 grid with cell densities [10, 0 / 0, 1] (10 rects of 0.2x0.2
        // at the bottom-left, one at the top-right).
        let mut rects = Vec::new();
        for i in 0..10 {
            let x = 1.0 + 0.01 * i as f64;
            rects.push(Rect::new(x, 1.0, x + 0.2, 1.2));
        }
        rects.push(Rect::new(9.0, 9.0, 9.2, 9.2));
        let ds = Dataset::new(rects);
        // k = 2: a single guillotine cut. Column split gives groups
        // {10, 0} and {0, 1}: SSE = 50 + 0.5 (row split is symmetric; the
        // unsplit grid has SSE = 10² + 1² − 11²/4 = 70.75). Optimal = 50.5.
        let result = build_optimal_bsp(&ds, 2, 2);
        assert!((result.spatial_skew - 50.5).abs() < 1e-9);
        // k = 3: isolate the dense cell entirely: 0 + 0 + SSE({0,1}) = 0.5.
        let grid = DensityGrid::build(ds.rects().iter(), ds.stats().mbr, 2, 2);
        assert!((optimal_bsp_skew(&grid, 3) - 0.5).abs() < 1e-9);
        // k = 4: every cell its own bucket: skew 0.
        assert_eq!(optimal_bsp_skew(&grid, 4), 0.0);
        // With 4 buckets the dense cluster's cell is its own bucket, so a
        // query covering that whole cell (and none of the top-right cell)
        // estimates exactly 10.
        let result4 = build_optimal_bsp(&ds, 4, 2);
        // Query reaching exactly the cell boundary (5.1) after Minkowski
        // extension (+0.1 from the 0.2-wide rects): covers the dense bucket
        // fully and overlaps the top-right bucket with zero area.
        let q = Rect::new(0.0, 0.0, 5.0, 5.0);
        assert!((result4.histogram.estimate_count(&q) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_close_to_greedy_on_small_grids() {
        let ds = charminar_with(6_000, 4);
        let buckets = 12;
        let side = 12;
        let optimal = build_optimal_bsp(&ds, buckets, side);
        let greedy = MinSkewBuilder::new(buckets).regions(side * side).build(&ds);
        let queries: Vec<Rect> = (0..20)
            .map(|i| {
                let t = i as f64 * 450.0;
                Rect::new(t, t, t + 1_200.0, t + 1_200.0)
            })
            .collect();
        let err = |h: &SpatialHistogram| {
            let mut num = 0.0;
            let mut den = 0.0;
            for q in &queries {
                let actual = ds.count_intersecting(q) as f64;
                num += (h.estimate_count(q) - actual).abs();
                den += actual;
            }
            num / den
        };
        let eo = err(&optimal.histogram);
        let eg = err(&greedy);
        // Optimality in skew does not guarantee lower error on any one
        // workload, but the two must be in the same league.
        assert!(
            eo < eg * 2.0 + 0.05,
            "optimal {eo} should not be far worse than greedy {eg}"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_state_space_rejected() {
        let ds = charminar_with(100, 5);
        build_optimal_bsp(&ds, 500, 64);
    }

    use minskew_data::Dataset;
}
