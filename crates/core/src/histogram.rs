//! The shared bucket-set estimator used by every partitioning technique.

use std::sync::OnceLock;

use minskew_geom::Rect;

use crate::index::CandidateSet;
use crate::kernel::{BucketPlane, KernelExplain, QueryPrep};
use crate::{Bucket, BucketIndex, ExtensionRule, IndexScratch, SpatialEstimator};

/// The structured result of
/// [`SpatialHistogram::estimate_count_explained`]: the kernel's breakdown
/// plus the histogram-level context an operator needs to read it.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateExplain {
    /// Technique label of the histogram that served the estimate
    /// (e.g. `"min_skew"`).
    pub technique: String,
    /// The extension rule the per-bucket amounts were derived under.
    pub rule: ExtensionRule,
    /// Bucket count of the histogram.
    pub num_buckets: usize,
    /// Total (possibly fractional) count across all buckets.
    pub total_count: f64,
    /// The kernel scan's evidence: per-bucket terms, pruning counters, and
    /// the headline estimate (bit-identical to
    /// [`SpatialHistogram::estimate_count_indexed`]).
    pub kernel: KernelExplain,
}

impl EstimateExplain {
    /// The headline estimate — bit-identical to
    /// [`SpatialHistogram::estimate_count_indexed`] for the same query.
    pub fn estimate(&self) -> f64 {
        self.kernel.estimate
    }
}

/// A spatial histogram: a flat set of disjoint-by-construction buckets, each
/// approximated under the uniformity assumption.
///
/// The buckets are produced by one of the partitioning techniques
/// ([`crate::build_equi_area`], [`crate::build_equi_count`],
/// [`crate::build_rtree_partitioning`], [`crate::MinSkewBuilder`], or the
/// trivial [`crate::build_uniform`]); the estimation logic is identical for
/// all of them, per §3.2 of the paper: "once the buckets are identified, the
/// problem of selectivity estimation reduces to solving selectivity
/// estimation over the individual buckets".
#[derive(Debug, Clone)]
pub struct SpatialHistogram {
    name: String,
    buckets: Vec<Bucket>,
    input_len: usize,
    rule: ExtensionRule,
    /// Weighted volume of mutations applied since construction; see the
    /// `maintenance` module. Not persisted and excluded from equality so
    /// that codec round-trips compare cleanly.
    churn: f64,
    /// Data size at construction time: the stable base that `staleness()`
    /// measures churn against. Dividing by the *current* `input_len` would
    /// overstate staleness under delete-heavy churn (the denominator
    /// shrinks as the numerator grows); see the `maintenance` module.
    /// Reconstructed on deserialisation (codecs rebuild via `from_parts`,
    /// where it equals the decoded `input_len`) and excluded from equality.
    base_len: usize,
    /// Per-bucket `(ex, ey)` extension amounts under `rule`
    /// (`rule.amounts(avg_width, avg_height)` per bucket), computed once per
    /// histogram so the per-query scan does not re-derive them. Invalidated
    /// (with [`SpatialHistogram::total`] and [`SpatialHistogram::index`])
    /// whenever the buckets or the rule change; excluded from equality.
    ext: OnceLock<Vec<(f64, f64)>>,
    /// Cached [`SpatialHistogram::total_count`].
    total: OnceLock<f64>,
    /// Lazily built serving-path directory; see [`BucketIndex`].
    index: OnceLock<BucketIndex>,
    /// Lazily built SoA mirror of the buckets for the vectorised
    /// clip-and-accumulate kernel; see [`BucketPlane`]. Invalidated with
    /// the other caches whenever the buckets or the rule change.
    plane: OnceLock<BucketPlane>,
}

impl PartialEq for SpatialHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.buckets == other.buckets
            && self.input_len == other.input_len
            && self.rule == other.rule
    }
}

impl SpatialHistogram {
    /// Assembles a histogram from parts. Intended for the partitioning
    /// builders in this crate and for deserialisation; typical callers use
    /// the technique constructors instead.
    pub fn from_parts(
        name: impl Into<String>,
        buckets: Vec<Bucket>,
        input_len: usize,
        rule: ExtensionRule,
    ) -> SpatialHistogram {
        let hist = SpatialHistogram {
            name: name.into(),
            buckets,
            input_len,
            rule,
            churn: 0.0,
            base_len: input_len,
            ext: OnceLock::new(),
            total: OnceLock::new(),
            index: OnceLock::new(),
            plane: OnceLock::new(),
        };
        // Seed the cheap O(B) caches eagerly (the index stays lazy — only
        // serving paths pay for it, via `bucket_index`).
        hist.ext_amounts();
        hist.total_count();
        hist
    }

    /// Mutable bucket access for maintenance. Invalidates every derived
    /// cache: the extension constants, the cached total, and the serving
    /// index are all functions of the bucket array.
    pub(crate) fn buckets_mut(&mut self) -> &mut [Bucket] {
        self.ext.take();
        self.total.take();
        self.index.take();
        self.plane.take();
        &mut self.buckets
    }

    /// Per-bucket extension amounts under the active rule, computed once.
    /// Crate-visible so the shard router folds with the exact same amounts.
    pub(crate) fn ext_amounts(&self) -> &[(f64, f64)] {
        self.ext.get_or_init(|| {
            self.buckets
                .iter()
                .map(|b| self.rule.amounts(b.avg_width, b.avg_height))
                .collect()
        })
    }

    pub(crate) fn input_len_mut(&mut self, delta: isize) {
        self.input_len = self.input_len.saturating_add_signed(delta);
    }

    pub(crate) fn churn_mut(&mut self, weight: f64) {
        self.churn += weight;
    }

    pub(crate) fn churn(&self) -> f64 {
        self.churn
    }

    /// The data size this histogram was built from — the stable
    /// denominator for staleness accounting (see the `maintenance`
    /// module).
    pub(crate) fn mutation_base(&self) -> usize {
        self.base_len
    }

    /// The histogram's buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The query-extension rule used at estimation time.
    pub fn extension_rule(&self) -> ExtensionRule {
        self.rule
    }

    /// Returns the histogram with a different extension rule (for
    /// ablation experiments). Rule-dependent caches (extension constants,
    /// serving index) are invalidated and rebuilt on next use.
    pub fn with_extension_rule(mut self, rule: ExtensionRule) -> SpatialHistogram {
        if rule != self.rule {
            self.rule = rule;
            self.ext.take();
            self.index.take();
            self.plane.take();
        }
        self
    }

    /// Sum of bucket counts; equals the number of input rectangles whose
    /// centre fell inside some bucket (normally all of them). Cached after
    /// the first call; invalidated by maintenance.
    pub fn total_count(&self) -> f64 {
        *self
            .total
            .get_or_init(|| self.buckets.iter().map(|b| b.count).sum())
    }

    /// The serving-path directory over this histogram's buckets, built
    /// lazily on first use and cached until the buckets or the extension
    /// rule change. See [`BucketIndex`] for the bit-identical pruning
    /// contract.
    pub fn bucket_index(&self) -> &BucketIndex {
        self.index
            .get_or_init(|| BucketIndex::build(&self.buckets, self.rule))
    }

    /// Forces the serving index to be built now (useful before sharing the
    /// histogram across query threads, so no thread pays the build cost).
    pub fn with_index(self) -> SpatialHistogram {
        self.bucket_index();
        self
    }

    /// The SoA kernel plane over this histogram's buckets, built lazily on
    /// first use and cached until the buckets or the extension rule change
    /// (the same `OnceLock` discipline as [`SpatialHistogram::bucket_index`]).
    pub fn bucket_plane(&self) -> &BucketPlane {
        self.plane
            .get_or_init(|| BucketPlane::build(&self.buckets, self.rule))
    }

    /// The reference linear scan: the AoS fold over
    /// [`Bucket::estimate_with_extension`] that every serving path is
    /// pinned bit-identical to. Kept callable so the differential suites
    /// and the bench compare the kernel against the genuine article rather
    /// than against itself.
    pub fn estimate_count_reference(&self, query: &Rect) -> f64 {
        // The extension amounts are a pure per-bucket function of the rule;
        // using the precomputed table is bit-identical to re-deriving them.
        self.buckets
            .iter()
            .zip(self.ext_amounts())
            .map(|(b, &(ex, ey))| b.estimate_with_extension(query, ex, ey))
            .sum()
    }

    /// The PR 3 indexed path exactly as shipped: candidate gathering plus
    /// the AoS subset fold. Bit-identical to
    /// [`SpatialHistogram::estimate_count_indexed`]; kept as the
    /// like-for-like baseline the bench's `kernel_speedup` is measured
    /// against.
    pub fn estimate_count_indexed_reference(
        &self,
        query: &Rect,
        scratch: &mut IndexScratch,
    ) -> f64 {
        let index = self.bucket_index();
        let partial: f64 = match index.candidates(query, scratch) {
            CandidateSet::Scan => return self.estimate_count_reference(query),
            CandidateSet::Pruned => -0.0,
            CandidateSet::Subset(ids) => {
                let ext = self.ext_amounts();
                ids.iter()
                    .map(|&i| {
                        let (ex, ey) = ext[i as usize];
                        self.buckets[i as usize].estimate_with_extension(query, ex, ey)
                    })
                    .sum()
            }
        };
        if self.buckets.is_empty() {
            partial
        } else {
            partial + 0.0
        }
    }

    /// Reassociated kernel estimate (see [`BucketPlane::accumulate_fast`]):
    /// same terms as [`SpatialEstimator::estimate_count`], fold order
    /// relaxed, relative error pinned `<= 1e-12`. Opt-in via the
    /// `fast-math` feature; no default serving path calls this.
    #[cfg(feature = "fast-math")]
    pub fn estimate_count_fast(&self, query: &Rect) -> f64 {
        self.bucket_plane().accumulate_fast(&QueryPrep::new(query))
    }

    /// [`SpatialEstimator::estimate_count`] through the serving fast path:
    /// bit-identical to the linear scan, sub-linear in the bucket count for
    /// selective queries, and allocation-free once `scratch` is warm.
    ///
    /// Since the kernel plane gained its Morton mirror this no longer
    /// walks the CSR directory: the kernel's block-pruned scan
    /// ([`crate::BucketPlane::accumulate_pruned`]) discards whole runs of
    /// spatially-clustered buckets with one coarse rectangle test each and
    /// replays the few surviving terms in reference fold order. The CSR
    /// path survives unchanged as
    /// [`SpatialHistogram::estimate_count_indexed_reference`], the baseline
    /// every differential suite and the bench compare against.
    pub fn estimate_count_indexed(&self, query: &Rect, scratch: &mut IndexScratch) -> f64 {
        self.bucket_plane()
            .accumulate_pruned(&QueryPrep::new(query), &mut scratch.terms)
    }

    /// [`SpatialHistogram::estimate_count_indexed`] with the evidence
    /// attached: per-bucket contributions (id, extension amounts, clipped
    /// fraction, term value), block/quad pruning counters, and the
    /// histogram's technique/rule context. The headline
    /// `EstimateExplain::estimate` is **bit-identical** to
    /// `estimate_count_indexed` for the same query — the explain walker is
    /// the same scan with recording on the side, never a re-derivation
    /// (see [`BucketPlane::accumulate_pruned_explained`]).
    pub fn estimate_count_explained(
        &self,
        query: &Rect,
        scratch: &mut IndexScratch,
    ) -> EstimateExplain {
        let kernel = self
            .bucket_plane()
            .accumulate_pruned_explained(&QueryPrep::new(query), &mut scratch.terms);
        EstimateExplain {
            technique: self.name.clone(),
            rule: self.rule,
            num_buckets: self.buckets.len(),
            total_count: self.total_count(),
            kernel,
        }
    }

    /// Byte-level breakdown of everything this histogram keeps resident
    /// for serving, *as currently materialised*: lazily built structures
    /// (index, plane) count only once something has forced them.
    pub fn serving_footprint(&self) -> ServingFootprint {
        let summary = self.buckets.len() * Bucket::SIZE_BYTES;
        let ext_table = self
            .ext
            .get()
            .map_or(0, |t| t.len() * std::mem::size_of::<(f64, f64)>());
        let index = self.index.get().map_or(0, |i| i.size_bytes());
        let plane = self.plane.get().map_or(0, |p| p.size_bytes());
        ServingFootprint {
            summary,
            ext_table,
            index,
            plane,
        }
    }
}

/// Byte-level breakdown of a histogram's serving footprint
/// ([`SpatialHistogram::serving_footprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingFootprint {
    /// The bucket summary itself under the paper's §5.4 accounting
    /// (eight words per bucket).
    pub summary: usize,
    /// Cached per-bucket extension amounts.
    pub ext_table: usize,
    /// The CSR grid directory ([`BucketIndex`]), when materialised.
    pub index: usize,
    /// The SoA kernel plane ([`BucketPlane`]), when materialised.
    pub plane: usize,
}

impl ServingFootprint {
    /// Total resident bytes.
    pub fn total(&self) -> usize {
        self.summary + self.ext_table + self.index + self.plane
    }
}

impl SpatialEstimator for SpatialHistogram {
    fn estimate_count(&self, query: &Rect) -> f64 {
        // The SoA kernel fold is proven bit-identical to the reference
        // AoS fold (`estimate_count_reference`); the serving and kernel
        // differential suites pin it.
        self.bucket_plane().accumulate(&QueryPrep::new(query))
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn size_bytes(&self) -> usize {
        self.serving_footprint().total()
    }

    fn summary_bytes(&self) -> usize {
        self.buckets.len() * Bucket::SIZE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bucket_hist() -> SpatialHistogram {
        SpatialHistogram::from_parts(
            "test",
            vec![
                Bucket {
                    mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                    count: 60.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
                Bucket {
                    mbr: Rect::new(10.0, 0.0, 20.0, 10.0),
                    count: 40.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
            ],
            100,
            ExtensionRule::Minkowski,
        )
    }

    #[test]
    fn sums_bucket_contributions() {
        let h = two_bucket_hist();
        // Covers all of bucket 1 and half of bucket 2.
        let q = Rect::new(0.0, 0.0, 15.0, 10.0);
        assert!((h.estimate_count(&q) - (60.0 + 20.0)).abs() < 1e-9);
        assert!((h.estimate_selectivity(&q) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn accounting() {
        let h = two_bucket_hist();
        assert_eq!(h.num_buckets(), 2);
        // Paper accounting: eight words per bucket, nothing else.
        assert_eq!(h.summary_bytes(), 2 * 64);
        // Serving footprint: `from_parts` seeds the extension table; the
        // index and the kernel plane are lazy and not yet resident.
        let fp = h.serving_footprint();
        assert_eq!(fp.summary, 2 * 64);
        assert_eq!(fp.ext_table, 2 * 16);
        assert_eq!((fp.index, fp.plane), (0, 0));
        assert_eq!(h.size_bytes(), fp.total());
        // Serving materialises the plane (fine columns, the Morton mirror
        // padded to a whole quad, the id map, block summaries padded to a
        // coarse vector of four, and one block window of quad summaries);
        // the CSR index stays lazy until the reference path forces it.
        // The footprint must see both.
        let mut scratch = IndexScratch::new();
        let _ = h.estimate_count_indexed(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut scratch);
        let fp = h.serving_footprint();
        assert_eq!(
            fp.plane,
            2 * 9 * 8 + 4 * 7 * 8 + 4 * 4 + 4 * 6 * 8 + 4 * 6 * 8
        );
        assert_eq!(fp.index, 0, "production serving no longer needs the CSR");
        assert_eq!(h.size_bytes(), fp.total());
        let _ = h.estimate_count_indexed_reference(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut scratch);
        let fp = h.serving_footprint();
        assert!(fp.index > 0, "index must be counted once built");
        assert_eq!(h.size_bytes(), fp.total());
        assert!(h.size_bytes() > h.summary_bytes());
        assert_eq!(h.total_count(), 100.0);
        assert_eq!(h.input_len(), 100);
        assert_eq!(h.name(), "test");
    }

    #[test]
    fn rule_swap_changes_estimates() {
        let h = SpatialHistogram::from_parts(
            "t",
            vec![Bucket {
                mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                count: 100.0,
                avg_width: 2.0,
                avg_height: 2.0,
            }],
            100,
            ExtensionRule::Minkowski,
        );
        let q = Rect::new(0.0, 0.0, 5.0, 10.0);
        let a = h.estimate_count(&q);
        let b = h
            .with_extension_rule(ExtensionRule::PaperLiteral)
            .estimate_count(&q);
        assert!(b > a, "paper-literal extension must estimate higher");
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = SpatialHistogram::from_parts("e", vec![], 0, ExtensionRule::Minkowski);
        assert_eq!(h.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
        assert_eq!(h.estimate_selectivity(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
        let mut scratch = IndexScratch::new();
        assert_eq!(
            h.estimate_count_indexed(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut scratch),
            0.0
        );
    }

    #[test]
    fn indexed_estimate_matches_linear_bits() {
        let h = two_bucket_hist().with_index();
        let mut scratch = IndexScratch::new();
        for q in [
            Rect::new(0.0, 0.0, 15.0, 10.0),
            Rect::new(-100.0, -100.0, -50.0, -50.0),
            Rect::new(9.9, 4.0, 10.1, 6.0),
            Rect::from_point(minskew_geom::Point::new(3.0, 3.0)),
        ] {
            assert_eq!(
                h.estimate_count(&q).to_bits(),
                h.estimate_count_indexed(&q, &mut scratch).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn kernel_paths_match_reference_paths_bits() {
        // The production paths (SoA kernel) against the retained AoS
        // reference paths, across rules; the dedicated kernel differential
        // suite widens this to full datasets and techniques.
        for rule in [
            ExtensionRule::Minkowski,
            ExtensionRule::PaperLiteral,
            ExtensionRule::None,
        ] {
            let h = two_bucket_hist().with_extension_rule(rule).with_index();
            let mut scratch = IndexScratch::new();
            let mut scratch_ref = IndexScratch::new();
            for q in [
                Rect::new(0.0, 0.0, 15.0, 10.0),
                Rect::new(-100.0, -100.0, -50.0, -50.0),
                Rect::new(9.9, 4.0, 10.1, 6.0),
                Rect::new(10.0, 0.0, 10.0, 10.0),
                Rect::from_point(minskew_geom::Point::new(3.0, 3.0)),
            ] {
                assert_eq!(
                    h.estimate_count(&q).to_bits(),
                    h.estimate_count_reference(&q).to_bits(),
                    "rule={rule:?} q={q}"
                );
                assert_eq!(
                    h.estimate_count_indexed(&q, &mut scratch).to_bits(),
                    h.estimate_count_indexed_reference(&q, &mut scratch_ref)
                        .to_bits(),
                    "rule={rule:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn caches_invalidate_on_bucket_mutation_and_rule_swap() {
        let mut h = two_bucket_hist();
        assert_eq!(h.total_count(), 100.0);
        let _ = h.bucket_index(); // force-build the lazy index
        h.buckets_mut()[0].count = 0.0;
        assert_eq!(h.total_count(), 40.0, "total cache must invalidate");
        let mut scratch = IndexScratch::new();
        let q = Rect::new(0.0, 0.0, 15.0, 10.0);
        assert_eq!(
            h.estimate_count(&q).to_bits(),
            h.estimate_count_indexed(&q, &mut scratch).to_bits(),
            "index cache must invalidate with the buckets"
        );
        // Rule swap invalidates the extension table + index but not total.
        let h2 = h.with_extension_rule(ExtensionRule::PaperLiteral);
        assert_eq!(h2.total_count(), 40.0);
        assert_eq!(
            h2.estimate_count(&q).to_bits(),
            h2.estimate_count_indexed(&q, &mut scratch).to_bits()
        );
    }
}
