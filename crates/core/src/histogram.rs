//! The shared bucket-set estimator used by every partitioning technique.

use minskew_geom::Rect;

use crate::{Bucket, ExtensionRule, SpatialEstimator};

/// A spatial histogram: a flat set of disjoint-by-construction buckets, each
/// approximated under the uniformity assumption.
///
/// The buckets are produced by one of the partitioning techniques
/// ([`crate::build_equi_area`], [`crate::build_equi_count`],
/// [`crate::build_rtree_partitioning`], [`crate::MinSkewBuilder`], or the
/// trivial [`crate::build_uniform`]); the estimation logic is identical for
/// all of them, per §3.2 of the paper: "once the buckets are identified, the
/// problem of selectivity estimation reduces to solving selectivity
/// estimation over the individual buckets".
#[derive(Debug, Clone)]
pub struct SpatialHistogram {
    name: String,
    buckets: Vec<Bucket>,
    input_len: usize,
    rule: ExtensionRule,
    /// Weighted volume of mutations applied since construction; see the
    /// `maintenance` module. Not persisted and excluded from equality so
    /// that codec round-trips compare cleanly.
    churn: f64,
}

impl PartialEq for SpatialHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.buckets == other.buckets
            && self.input_len == other.input_len
            && self.rule == other.rule
    }
}

impl SpatialHistogram {
    /// Assembles a histogram from parts. Intended for the partitioning
    /// builders in this crate and for deserialisation; typical callers use
    /// the technique constructors instead.
    pub fn from_parts(
        name: impl Into<String>,
        buckets: Vec<Bucket>,
        input_len: usize,
        rule: ExtensionRule,
    ) -> SpatialHistogram {
        SpatialHistogram {
            name: name.into(),
            buckets,
            input_len,
            rule,
            churn: 0.0,
        }
    }

    pub(crate) fn buckets_mut(&mut self) -> &mut [Bucket] {
        &mut self.buckets
    }

    pub(crate) fn input_len_mut(&mut self, delta: isize) {
        self.input_len = self.input_len.saturating_add_signed(delta);
    }

    pub(crate) fn churn_mut(&mut self, weight: f64) {
        self.churn += weight;
    }

    pub(crate) fn churn(&self) -> f64 {
        self.churn
    }

    /// The histogram's buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The query-extension rule used at estimation time.
    pub fn extension_rule(&self) -> ExtensionRule {
        self.rule
    }

    /// Returns the histogram with a different extension rule (for
    /// ablation experiments).
    pub fn with_extension_rule(mut self, rule: ExtensionRule) -> SpatialHistogram {
        self.rule = rule;
        self
    }

    /// Sum of bucket counts; equals the number of input rectangles whose
    /// centre fell inside some bucket (normally all of them).
    pub fn total_count(&self) -> f64 {
        self.buckets.iter().map(|b| b.count).sum()
    }
}

impl SpatialEstimator for SpatialHistogram {
    fn estimate_count(&self, query: &Rect) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.estimate(query, self.rule))
            .sum()
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn size_bytes(&self) -> usize {
        self.buckets.len() * Bucket::SIZE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bucket_hist() -> SpatialHistogram {
        SpatialHistogram::from_parts(
            "test",
            vec![
                Bucket {
                    mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                    count: 60.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
                Bucket {
                    mbr: Rect::new(10.0, 0.0, 20.0, 10.0),
                    count: 40.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
            ],
            100,
            ExtensionRule::Minkowski,
        )
    }

    #[test]
    fn sums_bucket_contributions() {
        let h = two_bucket_hist();
        // Covers all of bucket 1 and half of bucket 2.
        let q = Rect::new(0.0, 0.0, 15.0, 10.0);
        assert!((h.estimate_count(&q) - (60.0 + 20.0)).abs() < 1e-9);
        assert!((h.estimate_selectivity(&q) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn accounting() {
        let h = two_bucket_hist();
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.size_bytes(), 2 * 64);
        assert_eq!(h.total_count(), 100.0);
        assert_eq!(h.input_len(), 100);
        assert_eq!(h.name(), "test");
    }

    #[test]
    fn rule_swap_changes_estimates() {
        let h = SpatialHistogram::from_parts(
            "t",
            vec![Bucket {
                mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                count: 100.0,
                avg_width: 2.0,
                avg_height: 2.0,
            }],
            100,
            ExtensionRule::Minkowski,
        );
        let q = Rect::new(0.0, 0.0, 5.0, 10.0);
        let a = h.estimate_count(&q);
        let b = h
            .clone()
            .with_extension_rule(ExtensionRule::PaperLiteral)
            .estimate_count(&q);
        assert!(b > a, "paper-literal extension must estimate higher");
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = SpatialHistogram::from_parts("e", vec![], 0, ExtensionRule::Minkowski);
        assert_eq!(h.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
        assert_eq!(h.estimate_selectivity(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }
}
