//! The shared bucket-set estimator used by every partitioning technique.

use std::sync::OnceLock;

use minskew_geom::Rect;

use crate::index::CandidateSet;
use crate::{Bucket, BucketIndex, ExtensionRule, IndexScratch, SpatialEstimator};

/// A spatial histogram: a flat set of disjoint-by-construction buckets, each
/// approximated under the uniformity assumption.
///
/// The buckets are produced by one of the partitioning techniques
/// ([`crate::build_equi_area`], [`crate::build_equi_count`],
/// [`crate::build_rtree_partitioning`], [`crate::MinSkewBuilder`], or the
/// trivial [`crate::build_uniform`]); the estimation logic is identical for
/// all of them, per §3.2 of the paper: "once the buckets are identified, the
/// problem of selectivity estimation reduces to solving selectivity
/// estimation over the individual buckets".
#[derive(Debug, Clone)]
pub struct SpatialHistogram {
    name: String,
    buckets: Vec<Bucket>,
    input_len: usize,
    rule: ExtensionRule,
    /// Weighted volume of mutations applied since construction; see the
    /// `maintenance` module. Not persisted and excluded from equality so
    /// that codec round-trips compare cleanly.
    churn: f64,
    /// Per-bucket `(ex, ey)` extension amounts under `rule`
    /// (`rule.amounts(avg_width, avg_height)` per bucket), computed once per
    /// histogram so the per-query scan does not re-derive them. Invalidated
    /// (with [`SpatialHistogram::total`] and [`SpatialHistogram::index`])
    /// whenever the buckets or the rule change; excluded from equality.
    ext: OnceLock<Vec<(f64, f64)>>,
    /// Cached [`SpatialHistogram::total_count`].
    total: OnceLock<f64>,
    /// Lazily built serving-path directory; see [`BucketIndex`].
    index: OnceLock<BucketIndex>,
}

impl PartialEq for SpatialHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.buckets == other.buckets
            && self.input_len == other.input_len
            && self.rule == other.rule
    }
}

impl SpatialHistogram {
    /// Assembles a histogram from parts. Intended for the partitioning
    /// builders in this crate and for deserialisation; typical callers use
    /// the technique constructors instead.
    pub fn from_parts(
        name: impl Into<String>,
        buckets: Vec<Bucket>,
        input_len: usize,
        rule: ExtensionRule,
    ) -> SpatialHistogram {
        let hist = SpatialHistogram {
            name: name.into(),
            buckets,
            input_len,
            rule,
            churn: 0.0,
            ext: OnceLock::new(),
            total: OnceLock::new(),
            index: OnceLock::new(),
        };
        // Seed the cheap O(B) caches eagerly (the index stays lazy — only
        // serving paths pay for it, via `bucket_index`).
        hist.ext_amounts();
        hist.total_count();
        hist
    }

    /// Mutable bucket access for maintenance. Invalidates every derived
    /// cache: the extension constants, the cached total, and the serving
    /// index are all functions of the bucket array.
    pub(crate) fn buckets_mut(&mut self) -> &mut [Bucket] {
        self.ext.take();
        self.total.take();
        self.index.take();
        &mut self.buckets
    }

    /// Per-bucket extension amounts under the active rule, computed once.
    /// Crate-visible so the shard router folds with the exact same amounts.
    pub(crate) fn ext_amounts(&self) -> &[(f64, f64)] {
        self.ext.get_or_init(|| {
            self.buckets
                .iter()
                .map(|b| self.rule.amounts(b.avg_width, b.avg_height))
                .collect()
        })
    }

    pub(crate) fn input_len_mut(&mut self, delta: isize) {
        self.input_len = self.input_len.saturating_add_signed(delta);
    }

    pub(crate) fn churn_mut(&mut self, weight: f64) {
        self.churn += weight;
    }

    pub(crate) fn churn(&self) -> f64 {
        self.churn
    }

    /// The histogram's buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The query-extension rule used at estimation time.
    pub fn extension_rule(&self) -> ExtensionRule {
        self.rule
    }

    /// Returns the histogram with a different extension rule (for
    /// ablation experiments). Rule-dependent caches (extension constants,
    /// serving index) are invalidated and rebuilt on next use.
    pub fn with_extension_rule(mut self, rule: ExtensionRule) -> SpatialHistogram {
        if rule != self.rule {
            self.rule = rule;
            self.ext.take();
            self.index.take();
        }
        self
    }

    /// Sum of bucket counts; equals the number of input rectangles whose
    /// centre fell inside some bucket (normally all of them). Cached after
    /// the first call; invalidated by maintenance.
    pub fn total_count(&self) -> f64 {
        *self
            .total
            .get_or_init(|| self.buckets.iter().map(|b| b.count).sum())
    }

    /// The serving-path directory over this histogram's buckets, built
    /// lazily on first use and cached until the buckets or the extension
    /// rule change. See [`BucketIndex`] for the bit-identical pruning
    /// contract.
    pub fn bucket_index(&self) -> &BucketIndex {
        self.index
            .get_or_init(|| BucketIndex::build(&self.buckets, self.rule))
    }

    /// Forces the serving index to be built now (useful before sharing the
    /// histogram across query threads, so no thread pays the build cost).
    pub fn with_index(self) -> SpatialHistogram {
        self.bucket_index();
        self
    }

    /// [`SpatialEstimator::estimate_count`] through the serving index:
    /// bit-identical to the linear scan, sub-linear in the bucket count for
    /// selective queries, and allocation-free once `scratch` is warm.
    ///
    /// The index gathers exactly the buckets the extended query can touch
    /// (plus possibly a few whose estimate is exactly `0.0`), in ascending
    /// bucket order — so the partial sums match the linear scan bit for
    /// bit. Queries covering most of the directory fall back to the linear
    /// scan internally.
    pub fn estimate_count_indexed(&self, query: &Rect, scratch: &mut IndexScratch) -> f64 {
        let index = self.bucket_index();
        let partial: f64 = match index.candidates(query, scratch) {
            CandidateSet::Scan => return self.estimate_count(query),
            CandidateSet::Pruned => -0.0,
            CandidateSet::Subset(ids) => {
                let ext = self.ext_amounts();
                ids.iter()
                    .map(|&i| {
                        let (ex, ey) = ext[i as usize];
                        self.buckets[i as usize].estimate_with_extension(query, ex, ey)
                    })
                    .sum()
            }
        };
        if self.buckets.is_empty() {
            // The linear fold over zero terms is Rust's additive identity,
            // `-0.0`; `partial` is exactly that.
            partial
        } else {
            // Every pruned bucket's term is exactly `+0.0`. Rust's f64 sum
            // folds from `-0.0`, so skipping those terms is bitwise
            // invisible except in one case: when every candidate term was
            // zero too, the linear fold ends at `+0.0` (`-0.0 + 0.0`)
            // while the pruned fold may end at `-0.0`. Adding a single
            // `+0.0` — one of the skipped terms — applies exactly that
            // correction and is a bitwise no-op for every non-negative sum.
            partial + 0.0
        }
    }
}

impl SpatialEstimator for SpatialHistogram {
    fn estimate_count(&self, query: &Rect) -> f64 {
        // The extension amounts are a pure per-bucket function of the rule;
        // using the precomputed table is bit-identical to re-deriving them.
        self.buckets
            .iter()
            .zip(self.ext_amounts())
            .map(|(b, &(ex, ey))| b.estimate_with_extension(query, ex, ey))
            .sum()
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn size_bytes(&self) -> usize {
        self.buckets.len() * Bucket::SIZE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bucket_hist() -> SpatialHistogram {
        SpatialHistogram::from_parts(
            "test",
            vec![
                Bucket {
                    mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                    count: 60.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
                Bucket {
                    mbr: Rect::new(10.0, 0.0, 20.0, 10.0),
                    count: 40.0,
                    avg_width: 0.0,
                    avg_height: 0.0,
                },
            ],
            100,
            ExtensionRule::Minkowski,
        )
    }

    #[test]
    fn sums_bucket_contributions() {
        let h = two_bucket_hist();
        // Covers all of bucket 1 and half of bucket 2.
        let q = Rect::new(0.0, 0.0, 15.0, 10.0);
        assert!((h.estimate_count(&q) - (60.0 + 20.0)).abs() < 1e-9);
        assert!((h.estimate_selectivity(&q) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn accounting() {
        let h = two_bucket_hist();
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.size_bytes(), 2 * 64);
        assert_eq!(h.total_count(), 100.0);
        assert_eq!(h.input_len(), 100);
        assert_eq!(h.name(), "test");
    }

    #[test]
    fn rule_swap_changes_estimates() {
        let h = SpatialHistogram::from_parts(
            "t",
            vec![Bucket {
                mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                count: 100.0,
                avg_width: 2.0,
                avg_height: 2.0,
            }],
            100,
            ExtensionRule::Minkowski,
        );
        let q = Rect::new(0.0, 0.0, 5.0, 10.0);
        let a = h.estimate_count(&q);
        let b = h
            .with_extension_rule(ExtensionRule::PaperLiteral)
            .estimate_count(&q);
        assert!(b > a, "paper-literal extension must estimate higher");
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = SpatialHistogram::from_parts("e", vec![], 0, ExtensionRule::Minkowski);
        assert_eq!(h.estimate_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
        assert_eq!(h.estimate_selectivity(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
        let mut scratch = IndexScratch::new();
        assert_eq!(
            h.estimate_count_indexed(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut scratch),
            0.0
        );
    }

    #[test]
    fn indexed_estimate_matches_linear_bits() {
        let h = two_bucket_hist().with_index();
        let mut scratch = IndexScratch::new();
        for q in [
            Rect::new(0.0, 0.0, 15.0, 10.0),
            Rect::new(-100.0, -100.0, -50.0, -50.0),
            Rect::new(9.9, 4.0, 10.1, 6.0),
            Rect::from_point(minskew_geom::Point::new(3.0, 3.0)),
        ] {
            assert_eq!(
                h.estimate_count(&q).to_bits(),
                h.estimate_count_indexed(&q, &mut scratch).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn caches_invalidate_on_bucket_mutation_and_rule_swap() {
        let mut h = two_bucket_hist();
        assert_eq!(h.total_count(), 100.0);
        let _ = h.bucket_index(); // force-build the lazy index
        h.buckets_mut()[0].count = 0.0;
        assert_eq!(h.total_count(), 40.0, "total cache must invalidate");
        let mut scratch = IndexScratch::new();
        let q = Rect::new(0.0, 0.0, 15.0, 10.0);
        assert_eq!(
            h.estimate_count(&q).to_bits(),
            h.estimate_count_indexed(&q, &mut scratch).to_bits(),
            "index cache must invalidate with the buckets"
        );
        // Rule swap invalidates the extension table + index but not total.
        let h2 = h.with_extension_rule(ExtensionRule::PaperLiteral);
        assert_eq!(h2.total_count(), 40.0);
        assert_eq!(
            h2.estimate_count(&q).to_bits(),
            h2.estimate_count_indexed(&q, &mut scratch).to_bits()
        );
    }
}
