//! The bucket summary and the per-bucket uniformity-assumption estimate.

use minskew_geom::Rect;

/// How a query is extended before intersecting it with a bucket, to account
/// for rectangles whose *centres* lie outside the query but which still
/// intersect it (§3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtensionRule {
    /// Extend each query side outward by **half** the bucket's average
    /// rectangle width/height — the Minkowski-sum form `(qw + W̄)(qh + H̄)`.
    ///
    /// This is the geometrically exact correction under the uniformity
    /// assumption: a rectangle of width `w` centred at distance `< w/2`
    /// beyond the query edge still intersects the query. It also makes the
    /// range formula consistent with the paper's own *point-query* formula
    /// (a point query extended by `(W̄/2, H̄/2)` covers area `W̄·H̄`, giving
    /// the paper's `TA / Area(T)` under identical sizes). This is the
    /// default.
    #[default]
    Minkowski,
    /// Extend each query side outward by the **full** average width/height,
    /// as §3.1's text literally states (`qx'¹ = min(x¹_T, qx¹ − W_avg)`).
    ///
    /// Double-counts the correction and overestimates small queries; kept
    /// for paper fidelity and for the ablation bench comparing the two.
    PaperLiteral,
    /// No extension: assumes only rectangles whose centres fall inside the
    /// query intersect it. Underestimates; the paper calls this out as
    /// inaccurate. Useful as an ablation baseline.
    None,
}

impl ExtensionRule {
    /// Per-side extension amounts for a bucket with the given average
    /// rectangle dimensions.
    #[inline]
    pub fn amounts(self, avg_w: f64, avg_h: f64) -> (f64, f64) {
        match self {
            ExtensionRule::Minkowski => (avg_w / 2.0, avg_h / 2.0),
            ExtensionRule::PaperLiteral => (avg_w, avg_h),
            ExtensionRule::None => (0.0, 0.0),
        }
    }

    /// Stable lowercase label, used by wire formats (`EXPLAIN` replies)
    /// and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ExtensionRule::Minkowski => "minkowski",
            ExtensionRule::PaperLiteral => "paper_literal",
            ExtensionRule::None => "none",
        }
    }
}

/// One histogram bucket: the paper's eight-word summary of a group of
/// rectangles (§5.4): four words of bounding box, the rectangle count, the
/// average density, and the average width and height.
///
/// (The average density is derivable as `count`-per-area and is therefore
/// not stored; we still charge the paper's eight words in
/// [`Bucket::SIZE_BYTES`] to keep space accounting comparable.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bounding box of the bucket's region.
    pub mbr: Rect,
    /// Number of input rectangles assigned to the bucket (by centre).
    pub count: f64,
    /// Average width of the assigned rectangles.
    pub avg_width: f64,
    /// Average height of the assigned rectangles.
    pub avg_height: f64,
}

impl Bucket {
    /// Space charged per bucket: eight 8-byte words (§5.4).
    pub const SIZE_BYTES: usize = 8 * 8;

    /// Estimated number of this bucket's rectangles intersecting `query`,
    /// under the uniformity assumption within the bucket.
    ///
    /// The query is extended per `rule`, clipped to the bucket's bounding
    /// box, and the bucket count is scaled by the covered fraction. The
    /// fraction is computed per axis so that *degenerate* bucket boxes
    /// (all rectangles on a line or at a point) behave sensibly: a
    /// zero-length axis counts as fully covered when the clipped query
    /// reaches it.
    pub fn estimate(&self, query: &Rect, rule: ExtensionRule) -> f64 {
        let (ex, ey) = rule.amounts(self.avg_width, self.avg_height);
        self.estimate_with_extension(query, ex, ey)
    }

    /// [`Bucket::estimate`] with the per-side extension amounts already
    /// computed (`rule.amounts(avg_width, avg_height)`).
    ///
    /// This is the hot-path entry point: [`crate::SpatialHistogram`]
    /// precomputes the per-bucket amounts once per histogram instead of
    /// re-deriving them on every query. Passing the amounts produced by
    /// [`ExtensionRule::amounts`] for this bucket makes the result
    /// bit-identical to [`Bucket::estimate`].
    #[inline]
    pub fn estimate_with_extension(&self, query: &Rect, ex: f64, ey: f64) -> f64 {
        if self.count == 0.0 {
            return 0.0;
        }
        let extended = query.expanded(ex, ey);
        if !extended.intersects(&self.mbr) {
            return 0.0;
        }
        let fx = axis_fraction(
            extended.overlap_len(&self.mbr, minskew_geom::Axis::X),
            self.mbr.width(),
        );
        let fy = axis_fraction(
            extended.overlap_len(&self.mbr, minskew_geom::Axis::Y),
            self.mbr.height(),
        );
        self.count * fx * fy
    }

    /// Fraction of this bucket covered by `query` extended by `(ex, ey)` —
    /// the factor `fx·fy` such that [`Bucket::estimate_with_extension`]
    /// returns `count · fx · fy`.
    ///
    /// Unlike the estimate itself this is meaningful for *empty* buckets
    /// too, which is what the selectivity refit in [`crate::refine`] needs:
    /// there the counts are the unknowns being solved for, so the
    /// `count == 0` shortcut cannot apply.
    pub fn coverage_fraction(&self, query: &Rect, ex: f64, ey: f64) -> f64 {
        let extended = query.expanded(ex, ey);
        if !extended.intersects(&self.mbr) {
            return 0.0;
        }
        let fx = axis_fraction(
            extended.overlap_len(&self.mbr, minskew_geom::Axis::X),
            self.mbr.width(),
        );
        let fy = axis_fraction(
            extended.overlap_len(&self.mbr, minskew_geom::Axis::Y),
            self.mbr.height(),
        );
        fx * fy
    }
}

/// Fraction of a bucket axis covered by an overlap of length `overlap`.
/// `0/0` (degenerate axis touched by the query) counts as full coverage.
#[inline]
fn axis_fraction(overlap: f64, extent: f64) -> f64 {
    if extent <= 0.0 {
        1.0
    } else {
        (overlap / extent).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Point;

    fn bucket() -> Bucket {
        Bucket {
            mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
            count: 100.0,
            avg_width: 2.0,
            avg_height: 2.0,
        }
    }

    #[test]
    fn fully_covering_query_returns_count() {
        let b = bucket();
        let q = Rect::new(-5.0, -5.0, 15.0, 15.0);
        for rule in [
            ExtensionRule::Minkowski,
            ExtensionRule::PaperLiteral,
            ExtensionRule::None,
        ] {
            assert_eq!(b.estimate(&q, rule), 100.0);
        }
    }

    #[test]
    fn disjoint_query_returns_zero() {
        let b = bucket();
        let q = Rect::new(100.0, 100.0, 110.0, 110.0);
        assert_eq!(b.estimate(&q, ExtensionRule::Minkowski), 0.0);
    }

    #[test]
    fn partial_query_scales_by_extended_fraction() {
        let b = bucket();
        // Query = left half [0,5]x[0,10]; Minkowski extension adds 1.0 per
        // side -> [-1,6]x[-1,11], clipped to bucket: [0,6]x[0,10].
        let q = Rect::new(0.0, 0.0, 5.0, 10.0);
        let est = b.estimate(&q, ExtensionRule::Minkowski);
        assert!((est - 100.0 * 0.6).abs() < 1e-9, "est = {est}");
        // Paper-literal extends by 2.0 per side -> [0,7]x[0,10] clipped.
        let est_lit = b.estimate(&q, ExtensionRule::PaperLiteral);
        assert!((est_lit - 100.0 * 0.7).abs() < 1e-9);
        // No extension: exactly half.
        let est_none = b.estimate(&q, ExtensionRule::None);
        assert!((est_none - 50.0).abs() < 1e-9);
    }

    #[test]
    fn point_query_extension() {
        let b = bucket();
        let q = Rect::from_point(Point::new(5.0, 5.0));
        // Minkowski: extended to 2x2 around the point -> fraction 4/100.
        let est = b.estimate(&q, ExtensionRule::Minkowski);
        assert!((est - 100.0 * (2.0 * 2.0) / 100.0).abs() < 1e-9);
        // None: a zero-area query selects nothing under centre counting.
        assert_eq!(b.estimate(&q, ExtensionRule::None), 0.0);
    }

    #[test]
    fn empty_bucket_estimates_zero() {
        let b = Bucket {
            count: 0.0,
            ..bucket()
        };
        assert_eq!(
            b.estimate(&Rect::new(0.0, 0.0, 10.0, 10.0), ExtensionRule::Minkowski),
            0.0
        );
    }

    #[test]
    fn degenerate_bucket_axes_count_fully() {
        // All 40 rects are points on a vertical line x = 5.
        let b = Bucket {
            mbr: Rect::new(5.0, 0.0, 5.0, 10.0),
            count: 40.0,
            avg_width: 0.0,
            avg_height: 0.0,
        };
        // Query crossing the line over 30% of its height.
        let q = Rect::new(4.0, 0.0, 6.0, 3.0);
        let est = b.estimate(&q, ExtensionRule::Minkowski);
        assert!((est - 40.0 * 0.3).abs() < 1e-9, "est = {est}");
        // Query missing the line.
        let q2 = Rect::new(6.0, 0.0, 8.0, 10.0);
        assert_eq!(b.estimate(&q2, ExtensionRule::Minkowski), 0.0);
        // Point-at-a-point bucket.
        let pb = Bucket {
            mbr: Rect::from_point(Point::new(1.0, 1.0)),
            count: 7.0,
            avg_width: 0.0,
            avg_height: 0.0,
        };
        assert_eq!(
            pb.estimate(&Rect::new(0.0, 0.0, 2.0, 2.0), ExtensionRule::Minkowski),
            7.0
        );
        assert_eq!(
            pb.estimate(&Rect::new(2.0, 2.0, 3.0, 3.0), ExtensionRule::Minkowski),
            0.0
        );
    }

    #[test]
    fn estimates_never_exceed_bucket_count() {
        let b = bucket();
        for (x, y, w, h) in [
            (0.0, 0.0, 100.0, 100.0),
            (-50.0, -50.0, 60.0, 60.0),
            (9.0, 9.0, 0.5, 0.5),
        ] {
            let q = Rect::new(x, y, x + w, y + h);
            for rule in [
                ExtensionRule::Minkowski,
                ExtensionRule::PaperLiteral,
                ExtensionRule::None,
            ] {
                let e = b.estimate(&q, rule);
                assert!((0.0..=b.count).contains(&e));
            }
        }
    }
}
