//! Spatial sharding of a histogram into per-partition sub-histograms behind
//! a partition router, with estimates **bit-identical** to the unsharded
//! linear scan.
//!
//! # The partitioning scheme
//!
//! Following the partitioning playbook of Aji et al. (*Effective Spatial
//! Data Partitioning for Scalable Query Processing*), the bucket set is
//! split by a **skew-aware weighted BSP** over bucket centres: each
//! recursion step sorts the working set along its wider centre axis and
//! cuts at the *weighted* (bucket-count) median, so dense regions receive
//! proportionally more shards than sparse ones. Boundary objects — buckets
//! whose rectangles straddle a cut — are assigned to exactly **one owner
//! shard** (the side their centre falls on), and the per-shard count
//! corrections are exact: every bucket's count is tallied in precisely one
//! [`ShardInfo::count`], so the shard counts sum to the histogram total.
//!
//! # The routing contract (why sharded == unsharded, bit for bit)
//!
//! The linear reference ([`crate::SpatialHistogram::estimate_count`]) folds
//! `Bucket::estimate_with_extension` over every bucket in index order,
//! starting from Rust's fold identity `-0.0`. The sharded path must
//! reproduce that fold exactly despite skipping whole shards, which it does
//! with the same three-part argument as the serving index (DESIGN.md §9):
//!
//! 1. **Shard pruning has no false negatives.** Each shard stores the union
//!    MBR of its owned non-empty buckets and the *maximum* per-bucket
//!    extension amounts among them. The router extends the query once per
//!    shard through the exact same [`minskew_geom::Rect::expanded`] code
//!    path the per-bucket estimate uses; IEEE-754 monotonicity puts every
//!    member's computed extended query inside the shard's computed extended
//!    query, so a shard that fails the routing test contributes only terms
//!    that are exactly `+0.0`.
//! 2. **The fold is global, not per-shard.** Instead of summing per-shard
//!    partials (which would reorder the floating-point fold), evaluation
//!    walks **all** bucket indices in ascending order and computes a term
//!    only when the bucket's owner shard was routed. The surviving terms
//!    are therefore added in exactly the order the linear scan adds them.
//! 3. **The `+0.0` correction.** Skipping exact-`+0.0` terms is bitwise
//!    invisible except when *every* surviving term is zero too: the linear
//!    fold over `B >= 1` all-zero terms ends at `+0.0` (`-0.0 + 0.0`)
//!    while the pruned fold may end at `-0.0`. Re-adding a single `+0.0`
//!    (one of the skipped terms) applies exactly that correction, as in
//!    [`crate::SpatialHistogram::estimate_count_indexed`].
//!
//! When every shard routes, the evaluation short-circuits to the plain
//! linear scan — trivially identical. The whole scheme is enforced by
//! `tests/sharded_differential.rs` across shard counts × techniques ×
//! extension rules, with `.to_bits()` equality.

use minskew_geom::Rect;

use crate::{SpatialEstimator, SpatialHistogram};

/// Upper bound on the shard count; keeps the `u16` owner table honest and
/// the router's per-query scan trivially cheap.
pub const MAX_SHARDS: usize = 4096;

/// Reusable routing scratch for [`ShardedHistogram::estimate_count_sharded`]
/// (one flag per shard), so the hot path is allocation-free once warm.
#[derive(Debug, Clone, Default)]
pub struct ShardScratch {
    routed: Vec<bool>,
}

impl ShardScratch {
    /// Creates an empty scratch; the routing table grows on first use.
    pub fn new() -> ShardScratch {
        ShardScratch::default()
    }

    /// The routing decisions of the most recent
    /// [`ShardedHistogram::estimate_count_sharded`] call: `routed()[s]` is
    /// `true` when shard `s` participated in the fold.
    pub fn routed(&self) -> &[bool] {
        &self.routed
    }
}

/// Summary of one spatial shard: which buckets it owns and the routing
/// metadata the partition router prunes with.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// Owned global bucket ids, ascending.
    ids: Vec<u32>,
    /// Union MBR of the owned **non-empty** buckets (`None` when the shard
    /// owns no non-empty bucket; such a shard never routes).
    mbr: Option<Rect>,
    /// Maximum per-bucket query-extension amounts among the owned non-empty
    /// buckets, under the histogram's active extension rule.
    max_ex: f64,
    max_ey: f64,
    /// Sum of the owned buckets' counts. Each bucket is owned exactly once,
    /// so these sum to [`SpatialHistogram::total_count`] across shards.
    count: f64,
}

impl ShardInfo {
    /// Owned global bucket ids, ascending.
    pub fn bucket_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Union MBR of the owned non-empty buckets, if any.
    pub fn mbr(&self) -> Option<Rect> {
        self.mbr
    }

    /// Sum of the owned buckets' counts.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Number of owned buckets (including empty ones).
    pub fn num_buckets(&self) -> usize {
        self.ids.len()
    }
}

/// A [`SpatialHistogram`] spatially partitioned into owner shards, served
/// through a partition router whose estimates are bit-identical to the
/// unsharded linear scan. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct ShardedHistogram {
    hist: SpatialHistogram,
    /// Owner shard per global bucket id.
    owner: Vec<u16>,
    shards: Vec<ShardInfo>,
}

impl ShardedHistogram {
    /// Partitions `hist` into `shards` spatial shards (clamped to
    /// `1..=`[`MAX_SHARDS`]). Deterministic: the same histogram and shard
    /// count always produce the same partitioning.
    pub fn build(hist: SpatialHistogram, shards: usize) -> ShardedHistogram {
        let num_shards = shards.clamp(1, MAX_SHARDS);
        let buckets = hist.buckets();
        let mut owner = vec![0u16; buckets.len()];
        let mut ids: Vec<u32> = (0..buckets.len() as u32).collect();
        assign(&hist, &mut ids, 0, num_shards, &mut owner);

        let ext = hist.ext_amounts();
        let mut infos: Vec<ShardInfo> = (0..num_shards)
            .map(|_| ShardInfo {
                ids: Vec::new(),
                mbr: None,
                max_ex: 0.0,
                max_ey: 0.0,
                count: 0.0,
            })
            .collect();
        for (i, bucket) in buckets.iter().enumerate() {
            let info = &mut infos[owner[i] as usize];
            info.ids.push(i as u32);
            info.count += bucket.count;
            if bucket.count != 0.0 {
                // Empty buckets estimate to exactly 0.0 unconditionally, so
                // they are invisible to routing (mirrors BucketIndex).
                let (ex, ey) = ext[i];
                info.max_ex = info.max_ex.max(ex);
                info.max_ey = info.max_ey.max(ey);
                info.mbr = Some(match info.mbr {
                    Some(m) => m.union(&bucket.mbr),
                    None => bucket.mbr,
                });
            }
        }
        ShardedHistogram {
            hist,
            owner,
            shards: infos,
        }
    }

    /// The underlying (unsharded) histogram.
    pub fn histogram(&self) -> &SpatialHistogram {
        &self.hist
    }

    /// Number of shards (some may be empty).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard summaries.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// The owner shard of global bucket `bucket`.
    pub fn owner_of(&self, bucket: usize) -> usize {
        self.owner[bucket] as usize
    }

    /// Estimated result size through the partition router: routes the query
    /// to the shards whose extended MBR it can touch, then folds the routed
    /// shards' bucket terms **in ascending global bucket order**. Always
    /// bit-identical to [`SpatialHistogram::estimate_count`]; see the
    /// module docs for the proof.
    pub fn estimate_count_sharded(&self, query: &Rect, scratch: &mut ShardScratch) -> f64 {
        let buckets = self.hist.buckets();
        scratch.routed.clear();
        scratch.routed.resize(self.shards.len(), false);
        let mut routed_any = false;
        let mut routed_all = true;
        for (s, info) in self.shards.iter().enumerate() {
            // The same Rect::expanded code path the per-bucket estimate
            // uses, with the shard-wide maximum amounts (no false
            // negatives by IEEE-754 monotonicity).
            let hit = match &info.mbr {
                Some(mbr) => query.expanded(info.max_ex, info.max_ey).intersects(mbr),
                None => false,
            };
            scratch.routed[s] = hit;
            routed_any |= hit;
            routed_all &= hit;
        }
        if routed_all || buckets.is_empty() {
            // Every shard participates (or there is nothing to prune): the
            // global fold degenerates to the linear scan itself.
            return self.hist.estimate_count(query);
        }
        if !routed_any {
            // Every bucket's term is exactly +0.0; the linear fold over
            // B >= 1 such terms ends at +0.0.
            return 0.0;
        }
        let ext = self.hist.ext_amounts();
        let mut acc = -0.0f64;
        for (i, bucket) in buckets.iter().enumerate() {
            if scratch.routed[self.owner[i] as usize] {
                let (ex, ey) = ext[i];
                acc += bucket.estimate_with_extension(query, ex, ey);
            }
        }
        // Identical correction to estimate_count_indexed: one of the
        // skipped exact-+0.0 terms, re-added.
        acc + 0.0
    }

    /// One shard's contribution to the linear fold, computed in isolation
    /// (its owned buckets in ascending order, from the `-0.0` identity,
    /// with the `+0.0` tail). Diagnostic: the serving path never sums these
    /// — it threads one accumulator through the global order instead, which
    /// is what makes it bit-identical.
    pub fn estimate_shard(&self, shard: usize, query: &Rect) -> f64 {
        let buckets = self.hist.buckets();
        let ext = self.hist.ext_amounts();
        let mut acc = -0.0f64;
        for &i in &self.shards[shard].ids {
            let (ex, ey) = ext[i as usize];
            acc += buckets[i as usize].estimate_with_extension(query, ex, ey);
        }
        acc + 0.0
    }

    /// One shard as a standalone [`SpatialHistogram`] (its owned buckets,
    /// the parent's extension rule, an input length proportional to its
    /// count) — the per-partition sub-histogram a distributed deployment
    /// would ship to the shard's node.
    pub fn sub_histogram(&self, shard: usize) -> SpatialHistogram {
        let info = &self.shards[shard];
        let buckets = info
            .ids
            .iter()
            .map(|&i| self.hist.buckets()[i as usize])
            .collect();
        SpatialHistogram::from_parts(
            format!("{}[shard {shard}]", self.hist.name()),
            buckets,
            info.count.round().max(0.0) as usize,
            self.hist.extension_rule(),
        )
    }

    /// Reassembles the unsharded histogram from the shard pieces: every
    /// bucket is placed back at its global id, so the result compares equal
    /// to (and encodes byte-identically with) the original. This is the
    /// merge direction of the shard/merge round trip.
    pub fn merge(&self) -> SpatialHistogram {
        let buckets = self.hist.buckets();
        let mut merged = vec![None; buckets.len()];
        for info in &self.shards {
            for &i in &info.ids {
                merged[i as usize] = Some(buckets[i as usize]);
            }
        }
        SpatialHistogram::from_parts(
            self.hist.name().to_string(),
            merged.into_iter().flatten().collect(),
            self.hist.input_len(),
            self.hist.extension_rule(),
        )
    }
}

/// Recursive skew-aware weighted BSP: assigns every id in `ids` an owner in
/// `base .. base + shards`. Splits the working set along the wider centre
/// axis at the weighted (bucket-count) median, so shard data volumes stay
/// balanced under skew; ties and zero-weight sets fall back to even splits
/// by position. Deterministic by construction (total order on centre, id).
fn assign(hist: &SpatialHistogram, ids: &mut [u32], base: u16, shards: usize, owner: &mut [u16]) {
    if shards <= 1 || ids.len() <= 1 {
        for &i in ids.iter() {
            owner[i as usize] = base;
        }
        return;
    }
    let buckets = hist.buckets();
    let left_shards = shards / 2;
    let right_shards = shards - left_shards;

    // Wider centre-extent axis.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &i in ids.iter() {
        let c = buckets[i as usize].mbr.center();
        min_x = min_x.min(c.x);
        max_x = max_x.max(c.x);
        min_y = min_y.min(c.y);
        max_y = max_y.max(c.y);
    }
    let split_x = (max_x - min_x) >= (max_y - min_y);
    ids.sort_unstable_by(|&a, &b| {
        let ca = buckets[a as usize].mbr.center();
        let cb = buckets[b as usize].mbr.center();
        let (ka, kb) = if split_x { (ca.x, cb.x) } else { (ca.y, cb.y) };
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Weighted median cut: the left side receives its proportional share of
    // the bucket-count mass, not of the area — that is the skew-awareness.
    let total: f64 = ids.iter().map(|&i| buckets[i as usize].count).sum();
    let split = if total > 0.0 {
        let target = total * left_shards as f64 / shards as f64;
        let mut acc = 0.0;
        let mut at = ids.len();
        for (k, &i) in ids.iter().enumerate() {
            acc += buckets[i as usize].count;
            if acc >= target {
                at = k + 1;
                break;
            }
        }
        at.clamp(1, ids.len() - 1)
    } else {
        (ids.len() * left_shards / shards).clamp(1, ids.len() - 1)
    };
    let (left, right) = ids.split_at_mut(split);
    assign(hist, left, base, left_shards, owner);
    assign(hist, right, base + left_shards as u16, right_shards, owner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bucket, ExtensionRule};

    fn grid_hist(side: usize) -> SpatialHistogram {
        let mut buckets = Vec::new();
        for iy in 0..side {
            for ix in 0..side {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                buckets.push(Bucket {
                    mbr: Rect::new(x, y, x + 10.0, y + 10.0),
                    count: (1 + (ix + iy) % 7) as f64,
                    avg_width: 1.5,
                    avg_height: 2.5,
                });
            }
        }
        let total = buckets.iter().map(|b| b.count).sum::<f64>() as usize;
        SpatialHistogram::from_parts("grid", buckets, total, ExtensionRule::Minkowski)
    }

    fn probe_queries(side: usize) -> Vec<Rect> {
        let span = side as f64 * 10.0;
        vec![
            Rect::new(0.0, 0.0, span, span),
            Rect::new(3.0, 3.0, 17.0, 29.0),
            Rect::from_point(minskew_geom::Point::new(25.0, 25.0)),
            Rect::new(12.0, 0.0, 12.0, span),    // degenerate line
            Rect::new(-50.0, -50.0, -1.0, -1.0), // disjoint
            Rect::new(span * 0.4, span * 0.4, span * 0.6, span * 0.6),
        ]
    }

    #[test]
    fn every_bucket_owned_exactly_once_and_counts_sum() {
        let hist = grid_hist(8);
        for shards in [1, 2, 4, 9, 64, 1000] {
            let sharded = ShardedHistogram::build(hist.clone(), shards);
            assert_eq!(sharded.num_shards(), shards.min(MAX_SHARDS));
            let mut seen = vec![false; hist.num_buckets()];
            for info in sharded.shards() {
                for &i in info.bucket_ids() {
                    assert!(!seen[i as usize], "bucket {i} owned twice");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every bucket must be owned");
            let sum: f64 = sharded.shards().iter().map(|s| s.count()).sum();
            assert!(
                (sum - hist.total_count()).abs() <= 1e-9 * hist.total_count().max(1.0),
                "shard counts must sum to the total ({sum} vs {})",
                hist.total_count()
            );
        }
    }

    #[test]
    fn sharded_estimates_match_linear_bits() {
        let hist = grid_hist(8);
        let mut scratch = ShardScratch::new();
        for shards in [1, 2, 4, 9, 17] {
            let sharded = ShardedHistogram::build(hist.clone(), shards);
            for q in probe_queries(8) {
                assert_eq!(
                    hist.estimate_count(&q).to_bits(),
                    sharded.estimate_count_sharded(&q, &mut scratch).to_bits(),
                    "shards={shards} q={q}"
                );
            }
        }
    }

    #[test]
    fn selective_queries_actually_prune_shards() {
        let sharded = ShardedHistogram::build(grid_hist(8), 9);
        let mut scratch = ShardScratch::new();
        let q = Rect::new(3.0, 3.0, 8.0, 8.0); // one corner cell
        let est = sharded.estimate_count_sharded(&q, &mut scratch);
        assert!(est > 0.0);
        let routed = scratch.routed().iter().filter(|&&r| r).count();
        assert!(
            routed < sharded.num_shards(),
            "a corner query must not route to every shard ({routed}/9)"
        );
    }

    #[test]
    fn empty_and_degenerate_histograms() {
        let empty = SpatialHistogram::from_parts("e", vec![], 0, ExtensionRule::Minkowski);
        let sharded = ShardedHistogram::build(empty.clone(), 4);
        let mut scratch = ShardScratch::new();
        let q = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            empty.estimate_count(&q).to_bits(),
            sharded.estimate_count_sharded(&q, &mut scratch).to_bits()
        );
        // One bucket, nine shards: eight shards are empty and never route.
        let one = SpatialHistogram::from_parts(
            "one",
            vec![Bucket {
                mbr: Rect::new(0.0, 0.0, 10.0, 10.0),
                count: 5.0,
                avg_width: 0.0,
                avg_height: 0.0,
            }],
            5,
            ExtensionRule::Minkowski,
        );
        let sharded = ShardedHistogram::build(one.clone(), 9);
        for q in [q, Rect::new(50.0, 50.0, 60.0, 60.0)] {
            assert_eq!(
                one.estimate_count(&q).to_bits(),
                sharded.estimate_count_sharded(&q, &mut scratch).to_bits()
            );
        }
    }

    #[test]
    fn merge_reconstructs_the_original() {
        let hist = grid_hist(6);
        for shards in [2, 4, 9] {
            let sharded = ShardedHistogram::build(hist.clone(), shards);
            let merged = sharded.merge();
            assert_eq!(merged, hist);
            assert_eq!(merged.to_bytes(), hist.to_bytes());
        }
    }

    #[test]
    fn sub_histograms_cover_the_buckets() {
        let hist = grid_hist(6);
        let sharded = ShardedHistogram::build(hist.clone(), 4);
        let total_buckets: usize = (0..4).map(|s| sharded.sub_histogram(s).num_buckets()).sum();
        assert_eq!(total_buckets, hist.num_buckets());
        // Per-shard partials are non-negative and bounded by the total.
        let q = Rect::new(0.0, 0.0, 60.0, 60.0);
        for s in 0..4 {
            let part = sharded.estimate_shard(s, &q);
            assert!(part >= 0.0 && part <= hist.total_count());
        }
    }

    #[test]
    fn skew_aware_sizing_balances_counts() {
        // All mass piled into one corner bucket row: the weighted split must
        // not leave one shard with ~everything.
        let mut buckets = Vec::new();
        for i in 0..32 {
            buckets.push(Bucket {
                mbr: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                count: if i < 4 { 1000.0 } else { 1.0 },
                avg_width: 0.1,
                avg_height: 0.1,
            });
        }
        let hist = SpatialHistogram::from_parts("skew", buckets, 4028, ExtensionRule::Minkowski);
        let sharded = ShardedHistogram::build(hist, 4);
        let max_count = sharded
            .shards()
            .iter()
            .map(|s| s.count())
            .fold(0.0f64, f64::max);
        assert!(
            max_count < 0.75 * 4028.0,
            "skew-aware sizing must spread the dense corner ({max_count})"
        );
    }
}
