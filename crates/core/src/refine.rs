//! Online (query-driven) histogram refinement.
//!
//! The paper's §5.6 progressive refinement runs *offline*: it re-examines
//! the data to decide further splits. A serving system has a cheaper and
//! continuously available signal — the queries themselves. The accuracy
//! monitor replays a reservoir of served queries against exact counts,
//! yielding (query, exact, estimate) triples; this module uses those
//! triples to repair the histogram **in place**, without touching the base
//! data at all. This is the core idea of *Computing Data Distribution from
//! Query Selectivities*: recover bucket statistics consistent with the
//! observed selectivities instead of rebuilding from scratch.
//!
//! One bounded refine step ([`SpatialHistogram::refine`]) does three
//! things, in order:
//!
//! 1. **Split** — attribute each observation's absolute residual to the
//!    buckets its (extended) query touched, pro-rata by coverage; pick the
//!    highest-blame bucket and split it along the axis and coordinate that
//!    maximise the skew reduction of the *residual evidence* — the same
//!    SSE-reduction scoring Min-Skew applies to the density grid, applied
//!    here to a small per-axis marginal histogram of residual mass.
//! 2. **Merge** — to hold the bucket budget, merge the adjacent pair
//!    (exact rectangular union, as produced by any BSP partitioning) whose
//!    merge introduces the least spatial skew, excluding the freshly
//!    created children.
//! 3. **Re-fit** — solve a ridge-regularised least-squares system
//!    `actual_q ≈ Σ_b w_qb · count_b` (where `w_qb` is the fraction of
//!    bucket `b` covered by the extended query `q`) by coordinate descent,
//!    clamping every count into `[0, N]`. The pre-step counts act as the
//!    ridge anchor, so buckets the workload never touches keep their
//!    counts and well-observed buckets move to match what queries actually
//!    saw.
//!
//! Every stage is bounded: `O(B·Q)` blame and refit passes, one split and
//! one merge per step by default, and an `O(B²)` adjacency scan — all far
//! below a full re-ANALYZE, which re-reads the data. The whole step is
//! deterministic (fixed iteration order, no randomness), so refined
//! histograms are reproducible from the same triples.

use minskew_geom::{Axis, Rect};

use crate::{Bucket, SpatialEstimator, SpatialHistogram};

/// One feedback triple from the serving path: a query, the exact result
/// count measured for it, and the estimate that was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineObservation {
    /// The served query rectangle.
    pub query: Rect,
    /// Exact number of data rectangles intersecting `query`.
    pub actual: f64,
    /// The estimate the histogram served for `query`.
    pub estimate: f64,
}

/// Tuning knobs for one bounded refine step. The defaults implement the
/// "one split, one merge, short refit" policy described in DESIGN.md §14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Maximum number of bucket splits per step (default 1). Each
    /// successful split is followed by at most one budget-restoring merge.
    pub max_splits: usize,
    /// Resolution of the per-axis residual-evidence marginal used to score
    /// split positions (default 8 cells, minimum 2).
    pub evidence_cells: usize,
    /// Coordinate-descent passes over the buckets during the re-fit
    /// (default 8; the system is small and converges quickly).
    pub refit_passes: usize,
    /// Ridge regularisation weight anchoring each count to its pre-step
    /// value (default 0.5). Larger values trust the old histogram more;
    /// `0.0` would let a single observation rewrite an otherwise-unseen
    /// bucket entirely.
    pub ridge: f64,
}

impl Default for RefineOptions {
    fn default() -> RefineOptions {
        RefineOptions {
            max_splits: 1,
            evidence_cells: 8,
            refit_passes: 8,
            ridge: 0.5,
        }
    }
}

/// What one refine step did; returned by [`SpatialHistogram::refine`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefineReport {
    /// Number of feedback triples consumed.
    pub observations: usize,
    /// Buckets split this step.
    pub splits: usize,
    /// Adjacent pairs merged this step (at most one per split; can be
    /// fewer when no mergeable pair exists outside the fresh children).
    pub merges: usize,
    /// Buckets touched by at least one observation and therefore moved by
    /// the least-squares re-fit.
    pub refit_buckets: usize,
    /// Average relative error of the *served* estimates in the triples
    /// (`Σ|actual − estimate| / max(Σ actual, 1)`), i.e. the error the
    /// monitor observed before this step.
    pub error_before: f64,
    /// Average relative error of the refined histogram re-predicting the
    /// same queries (estimates clamped to `[0, N]`).
    pub error_after: f64,
}

impl std::fmt::Display for RefineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "refine: {} obs, {} split(s), {} merge(s), {} bucket(s) refit, err {:.4} -> {:.4}",
            self.observations,
            self.splits,
            self.merges,
            self.refit_buckets,
            self.error_before,
            self.error_after
        )
    }
}

impl SpatialHistogram {
    /// One bounded self-tuning step: split the highest-error bucket, merge
    /// the lowest-skew adjacent pair, and re-fit bucket counts against the
    /// observed selectivities. Returns the refined histogram (a fresh
    /// value with all serving caches reset and churn re-zeroed — install
    /// it the way a rebuilt histogram would be installed) plus a report of
    /// what changed.
    ///
    /// With no observations, or an empty histogram, the step is the
    /// identity (modulo cache/churn reset).
    pub fn refine(
        &self,
        observations: &[RefineObservation],
        opts: &RefineOptions,
    ) -> (SpatialHistogram, RefineReport) {
        let rule = self.extension_rule();
        let n = self.input_len();
        let nf = n as f64;
        let mut buckets = self.buckets().to_vec();
        let mut report = RefineReport {
            observations: observations.len(),
            ..RefineReport::default()
        };
        if observations.is_empty() || buckets.is_empty() {
            let out = SpatialHistogram::from_parts(self.name().to_string(), buckets, n, rule);
            return (out, report);
        }

        report.error_before = observed_error(observations);

        // --- Split the highest-blame bucket(s). ------------------------
        // `fresh` tracks the children created this step so the
        // budget-restoring merge cannot immediately undo a split.
        let mut fresh: Vec<usize> = Vec::new();
        for _ in 0..opts.max_splits {
            let weights = coverage_weights(&buckets, rule, observations);
            let blame = attribute_blame(&buckets, &weights, observations);
            // Highest blame first; skip buckets already produced by this
            // step (their evidence was consumed by the parent's split).
            let target = blame
                .iter()
                .enumerate()
                .filter(|(i, _)| !fresh.contains(i))
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i);
            let Some(bi) = target else { break };
            if blame[bi] <= 0.0 {
                break; // no residual mass anywhere: nothing to learn
            }
            let Some((axis, at)) = best_split(&buckets, bi, rule, observations, &weights, opts)
            else {
                break; // evidence is flat inside the worst bucket
            };
            let parent = buckets[bi];
            let (lo_box, hi_box) = parent.mbr.split_at(axis, at);
            let lo_frac = if parent.mbr.side(axis) > 0.0 {
                lo_box.side(axis) / parent.mbr.side(axis)
            } else {
                0.5
            };
            let child = |mbr: Rect, frac: f64| Bucket {
                mbr,
                count: parent.count * frac,
                avg_width: parent.avg_width,
                avg_height: parent.avg_height,
            };
            buckets[bi] = child(lo_box, lo_frac);
            buckets.push(child(hi_box, 1.0 - lo_frac));
            fresh.push(bi);
            fresh.push(buckets.len() - 1);
            report.splits += 1;
        }

        // --- Merge the lowest-skew adjacent pair per split. -------------
        for _ in 0..report.splits {
            let Some((i, j)) = cheapest_merge(&buckets, &fresh) else {
                break; // no mergeable pair outside the fresh children
            };
            let merged = merge_pair(&buckets[i], &buckets[j]);
            buckets[i] = merged;
            buckets.remove(j);
            for f in &mut fresh {
                if *f > j {
                    *f -= 1;
                }
            }
            report.merges += 1;
        }

        // --- Re-fit counts against observed selectivities. --------------
        report.refit_buckets = refit_counts(&mut buckets, rule, observations, nf, opts);

        let out = SpatialHistogram::from_parts(self.name().to_string(), buckets, n, rule);
        report.error_after = predicted_error(&out, observations, nf);
        (out, report)
    }
}

/// Per-observation coverage weights: for each triple, the list of
/// `(bucket index, w_qb)` pairs with `w_qb > 0` — the fraction of the
/// bucket covered by the rule-extended query, exactly the factor the
/// estimator multiplies the count by.
fn coverage_weights(
    buckets: &[Bucket],
    rule: crate::ExtensionRule,
    observations: &[RefineObservation],
) -> Vec<Vec<(usize, f64)>> {
    let ext: Vec<(f64, f64)> = buckets
        .iter()
        .map(|b| rule.amounts(b.avg_width, b.avg_height))
        .collect();
    observations
        .iter()
        .map(|obs| {
            buckets
                .iter()
                .zip(&ext)
                .enumerate()
                .filter_map(|(i, (b, &(ex, ey)))| {
                    let w = b.coverage_fraction(&obs.query, ex, ey);
                    (w > 0.0).then_some((i, w))
                })
                .collect()
        })
        .collect()
}

/// Distributes each observation's absolute residual over the buckets its
/// query touched, pro-rata by coverage weight. The result ranks buckets by
/// how much observed error flows through them.
fn attribute_blame(
    buckets: &[Bucket],
    weights: &[Vec<(usize, f64)>],
    observations: &[RefineObservation],
) -> Vec<f64> {
    let mut blame = vec![0.0f64; buckets.len()];
    for (obs, ws) in observations.iter().zip(weights) {
        let pred: f64 = ws.iter().map(|&(i, w)| buckets[i].count * w).sum();
        let wsum: f64 = ws.iter().map(|&(_, w)| w).sum();
        if wsum <= 0.0 {
            continue;
        }
        let resid = (obs.actual - pred).abs();
        for &(i, w) in ws {
            blame[i] += resid * (w / wsum);
        }
    }
    blame
}

/// Scores candidate split positions inside bucket `bi` and returns the
/// best `(axis, coordinate)`, or `None` when the residual evidence is flat
/// (nothing to separate) or the bucket is degenerate on both axes.
///
/// The evidence is a small per-axis marginal: the bucket's extent is cut
/// into `opts.evidence_cells` equal cells and each observation's *signed*
/// residual is spread over the cells its extended query overlaps. A split
/// position is scored by the SSE reduction of splitting the evidence
/// series there — Min-Skew's spatial-skew scoring applied to residual
/// mass instead of point density.
fn best_split(
    buckets: &[Bucket],
    bi: usize,
    rule: crate::ExtensionRule,
    observations: &[RefineObservation],
    weights: &[Vec<(usize, f64)>],
    opts: &RefineOptions,
) -> Option<(Axis, f64)> {
    let bucket = &buckets[bi];
    let cells = opts.evidence_cells.max(2);
    let (ex, ey) = rule.amounts(bucket.avg_width, bucket.avg_height);
    let mut best: Option<(f64, Axis, f64)> = None;
    for axis in Axis::BOTH {
        let lo = bucket.mbr.lo.coord(axis);
        let extent = bucket.mbr.side(axis);
        if extent <= 0.0 {
            continue;
        }
        let cell_len = extent / cells as f64;
        let mut evidence = vec![0.0f64; cells];
        for (obs, ws) in observations.iter().zip(weights) {
            if !ws.iter().any(|&(i, _)| i == bi) {
                continue;
            }
            let pred: f64 = ws.iter().map(|&(i, w)| buckets[i].count * w).sum();
            let resid = obs.actual - pred;
            if resid == 0.0 {
                continue;
            }
            let q = obs.query.expanded(ex, ey);
            let q_lo = q.lo.coord(axis);
            let q_hi = q.hi.coord(axis);
            for (c, e) in evidence.iter_mut().enumerate() {
                let c_lo = lo + c as f64 * cell_len;
                let c_hi = c_lo + cell_len;
                let overlap = (q_hi.min(c_hi) - q_lo.max(c_lo)).max(0.0);
                *e += resid * (overlap / cell_len);
            }
        }
        // SSE-reduction scan over the evidence series.
        let total_sse = sse(&evidence);
        for j in 1..cells {
            let reduction = total_sse - sse(&evidence[..j]) - sse(&evidence[j..]);
            if reduction > 1e-12 && best.is_none_or(|(r, _, _)| reduction > r) {
                best = Some((reduction, axis, lo + j as f64 * cell_len));
            }
        }
    }
    best.map(|(_, axis, at)| (axis, at))
}

/// Sum of squared deviations from the mean — Min-Skew's per-region skew.
fn sse(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum()
}

/// Finds the mergeable pair `(i, j)` (`i < j`) whose merge introduces the
/// least spatial skew, skipping indices in `protect`. A pair is mergeable
/// when the union of the two boxes is exactly rectangular — identical
/// extent on one axis and exactly touching on the other, which BSP-built
/// buckets satisfy bit-exactly because children share their parent's
/// coordinates.
fn cheapest_merge(buckets: &[Bucket], protect: &[usize]) -> Option<(usize, usize)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for i in 0..buckets.len() {
        if protect.contains(&i) {
            continue;
        }
        for j in (i + 1)..buckets.len() {
            if protect.contains(&j) {
                continue;
            }
            let (a, b) = (&buckets[i], &buckets[j]);
            if !exactly_adjacent(&a.mbr, &b.mbr) {
                continue;
            }
            let (aa, ab) = (a.mbr.area(), b.mbr.area());
            if aa <= 0.0 || ab <= 0.0 {
                continue; // degenerate boxes have no defined density
            }
            let (da, db) = (a.count / aa, b.count / ab);
            let dm = (a.count + b.count) / (aa + ab);
            let cost = aa * (da - dm) * (da - dm) + ab * (db - dm) * (db - dm);
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, i, j));
            }
        }
    }
    best.map(|(_, i, j)| (i, j))
}

/// `true` when the union of `a` and `b` is exactly `a ∪ b` as a rectangle:
/// same span on one axis, exactly touching along the other.
fn exactly_adjacent(a: &Rect, b: &Rect) -> bool {
    let same_y = a.lo.y == b.lo.y && a.hi.y == b.hi.y;
    let same_x = a.lo.x == b.lo.x && a.hi.x == b.hi.x;
    (same_y && (a.hi.x == b.lo.x || b.hi.x == a.lo.x))
        || (same_x && (a.hi.y == b.lo.y || b.hi.y == a.lo.y))
}

/// Merges two buckets: rectangular union, summed count, count-weighted
/// average dimensions.
fn merge_pair(a: &Bucket, b: &Bucket) -> Bucket {
    let total = a.count + b.count;
    let (avg_width, avg_height) = if total > 0.0 {
        (
            (a.avg_width * a.count + b.avg_width * b.count) / total,
            (a.avg_height * a.count + b.avg_height * b.count) / total,
        )
    } else {
        (
            (a.avg_width + b.avg_width) / 2.0,
            (a.avg_height + b.avg_height) / 2.0,
        )
    };
    Bucket {
        mbr: a.mbr.union(&b.mbr),
        count: total,
        avg_width,
        avg_height,
    }
}

/// Ridge-regularised least squares `actual_q ≈ Σ_b w_qb · count_b` by
/// exact coordinate descent, every count clamped into `[0, nf]`. The
/// entry counts are the ridge anchors. Returns the number of buckets
/// touched by at least one observation (the ones the solve can move).
fn refit_counts(
    buckets: &mut [Bucket],
    rule: crate::ExtensionRule,
    observations: &[RefineObservation],
    nf: f64,
    opts: &RefineOptions,
) -> usize {
    let weights = coverage_weights(buckets, rule, observations);
    // Inverted index: per bucket, the observations that touch it.
    let mut touching: Vec<Vec<(usize, f64)>> = vec![Vec::new(); buckets.len()];
    for (q, ws) in weights.iter().enumerate() {
        for &(b, w) in ws {
            touching[b].push((q, w));
        }
    }
    let mut counts: Vec<f64> = buckets.iter().map(|b| b.count).collect();
    let anchors = counts.clone();
    let mut pred: Vec<f64> = weights
        .iter()
        .map(|ws| ws.iter().map(|&(b, w)| counts[b] * w).sum())
        .collect();
    let ridge = opts.ridge.max(0.0);
    for _ in 0..opts.refit_passes {
        for (b, touch) in touching.iter().enumerate() {
            if touch.is_empty() {
                continue;
            }
            let denom = ridge + touch.iter().map(|&(_, w)| w * w).sum::<f64>();
            if denom <= 0.0 {
                continue;
            }
            let num = ridge * anchors[b]
                + touch
                    .iter()
                    .map(|&(q, w)| w * (observations[q].actual - pred[q] + w * counts[b]))
                    .sum::<f64>();
            let new = (num / denom).clamp(0.0, nf.max(0.0));
            let delta = new - counts[b];
            if delta != 0.0 {
                for &(q, w) in touch {
                    pred[q] += w * delta;
                }
                counts[b] = new;
            }
        }
    }
    // Each count is clamped to `[0, N]` above, but the counts are *not*
    // globally renormalised to sum to N: the least-squares fit deliberately
    // over-fills a coarse bucket when the observed selectivities say its
    // mass is concentrated where the queries land (the per-bucket
    // uniformity assumption under-predicts there), and later splits turn
    // that crutch into real boundaries. Multi-bucket estimates can
    // therefore exceed N; the serving layer's `[0, N]` clamp (the engine's
    // `estimate` contract) is what bounds served values, exactly as it
    // does for incrementally patched histograms.
    for (bucket, &c) in buckets.iter_mut().zip(&counts) {
        bucket.count = c;
    }
    touching.iter().filter(|t| !t.is_empty()).count()
}

/// Average relative error of the estimates *as served* (the triples'
/// `estimate` field): `Σ|actual − estimate| / max(Σ actual, 1)` — the
/// paper's error metric over the observed workload.
fn observed_error(observations: &[RefineObservation]) -> f64 {
    let num: f64 = observations
        .iter()
        .map(|o| (o.actual - o.estimate).abs())
        .sum();
    let den: f64 = observations.iter().map(|o| o.actual).sum();
    num / den.max(1.0)
}

/// Average relative error of `hist` re-predicting the observed queries,
/// with estimates clamped into `[0, nf]` the way the serving path clamps.
fn predicted_error(hist: &SpatialHistogram, observations: &[RefineObservation], nf: f64) -> f64 {
    let num: f64 = observations
        .iter()
        .map(|o| {
            let est = hist.estimate_count(&o.query).clamp(0.0, nf.max(0.0));
            (o.actual - est).abs()
        })
        .sum();
    let den: f64 = observations.iter().map(|o| o.actual).sum();
    num / den.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExtensionRule;
    use minskew_geom::Point;

    fn obs(query: Rect, actual: f64, estimate: f64) -> RefineObservation {
        RefineObservation {
            query,
            actual,
            estimate,
        }
    }

    /// A single uniform bucket whose data actually lives in the left half.
    fn skewed_one_bucket() -> SpatialHistogram {
        SpatialHistogram::from_parts(
            "skewed",
            vec![Bucket {
                mbr: Rect::new(0.0, 0.0, 20.0, 20.0),
                count: 100.0,
                avg_width: 0.0,
                avg_height: 0.0,
            }],
            100,
            ExtensionRule::Minkowski,
        )
    }

    /// Observations telling the refiner the left half holds 90 of the 100.
    fn skewed_observations(h: &SpatialHistogram) -> Vec<RefineObservation> {
        let mut out = Vec::new();
        for (x1, x2, actual) in [
            (0.0, 5.0, 45.0),
            (5.0, 10.0, 45.0),
            (10.0, 15.0, 5.0),
            (15.0, 20.0, 5.0),
            (0.0, 10.0, 90.0),
            (10.0, 20.0, 10.0),
        ] {
            let q = Rect::new(x1, 0.0, x2, 20.0);
            out.push(obs(q, actual, h.estimate_count(&q)));
        }
        out
    }

    #[test]
    fn no_observations_is_identity() {
        let h = skewed_one_bucket();
        let (out, report) = h.refine(&[], &RefineOptions::default());
        assert_eq!(out, h);
        assert_eq!(report, RefineReport::default());
    }

    #[test]
    fn split_targets_residual_boundary_and_refit_recovers_counts() {
        let h = skewed_one_bucket();
        let observations = skewed_observations(&h);
        let (out, report) = h.refine(&observations, &RefineOptions::default());
        assert_eq!(report.splits, 1);
        assert_eq!(report.merges, 0, "both children are protected");
        assert_eq!(out.num_buckets(), 2);
        // The split must land on the residual sign change at x = 10.
        let left = &out.buckets()[0];
        let right = &out.buckets()[1];
        assert_eq!(left.mbr, Rect::new(0.0, 0.0, 10.0, 20.0));
        assert_eq!(right.mbr, Rect::new(10.0, 0.0, 20.0, 20.0));
        // The refit must move mass left, clamped within [0, N].
        assert!(
            left.count > 75.0 && left.count <= 100.0,
            "left count = {}",
            left.count
        );
        assert!(
            right.count < 25.0 && right.count >= 0.0,
            "right count = {}",
            right.count
        );
        assert!(
            report.error_after < report.error_before / 2.0,
            "err {} -> {}",
            report.error_before,
            report.error_after
        );
        // The children still tile the parent exactly.
        assert_eq!(left.mbr.union(&right.mbr), Rect::new(0.0, 0.0, 20.0, 20.0));
        assert!(
            (left.mbr.area() + right.mbr.area() - 400.0).abs() < 1e-9,
            "children must not overlap"
        );
    }

    #[test]
    fn merge_holds_bucket_budget_on_multi_bucket_histograms() {
        // Four equal buckets in a row; the workload blames only the first.
        let buckets: Vec<Bucket> = (0..4)
            .map(|i| Bucket {
                mbr: Rect::new(i as f64 * 10.0, 0.0, (i + 1) as f64 * 10.0, 10.0),
                count: 25.0,
                avg_width: 0.0,
                avg_height: 0.0,
            })
            .collect();
        let h = SpatialHistogram::from_parts("row", buckets, 100, ExtensionRule::Minkowski);
        let mut observations = Vec::new();
        for (x1, x2, actual) in [(0.0, 5.0, 24.0), (5.0, 10.0, 1.0)] {
            let q = Rect::new(x1, 0.0, x2, 10.0);
            observations.push(obs(q, actual, h.estimate_count(&q)));
        }
        let (out, report) = h.refine(&observations, &RefineOptions::default());
        assert_eq!(report.splits, 1);
        assert_eq!(report.merges, 1, "budget must be restored by a merge");
        assert_eq!(out.num_buckets(), 4, "bucket budget held");
        // Coverage: every probe point is owned by exactly one bucket
        // (interior points — BSP boundaries are shared by construction).
        for px in [1.0, 7.0, 13.0, 19.0, 26.0, 33.0, 39.0] {
            let p = Point::new(px, 5.0);
            let owners = out
                .buckets()
                .iter()
                .filter(|b| b.mbr.contains_point(p) && b.mbr.lo.x < px && px < b.mbr.hi.x)
                .count();
            assert_eq!(owners, 1, "point {px} must have exactly one interior owner");
        }
    }

    #[test]
    fn refit_clamps_counts_into_data_range() {
        let h = skewed_one_bucket();
        // An absurd observation claiming far more rows than exist.
        let q = Rect::new(0.0, 0.0, 20.0, 20.0);
        let observations = vec![obs(q, 1e9, h.estimate_count(&q))];
        let (out, _) = h.refine(
            &observations,
            &RefineOptions {
                max_splits: 0,
                ..RefineOptions::default()
            },
        );
        for b in out.buckets() {
            assert!(
                (0.0..=100.0).contains(&b.count),
                "count {} escaped [0, N]",
                b.count
            );
        }
    }

    #[test]
    fn refine_resets_churn_like_a_rebuild() {
        let mut h = skewed_one_bucket();
        h.note_insert(&Rect::from_center_size(Point::new(5.0, 5.0), 1.0, 1.0));
        assert!(h.staleness() > 0.0);
        let observations = skewed_observations(&h);
        let (out, _) = h.refine(&observations, &RefineOptions::default());
        assert_eq!(out.staleness(), 0.0, "a refined histogram starts fresh");
        assert_eq!(out.input_len(), h.input_len());
    }

    #[test]
    fn untouched_buckets_keep_their_counts() {
        let buckets: Vec<Bucket> = (0..3)
            .map(|i| Bucket {
                mbr: Rect::new(i as f64 * 10.0, 0.0, (i + 1) as f64 * 10.0, 10.0),
                count: 10.0 * (i + 1) as f64,
                avg_width: 0.0,
                avg_height: 0.0,
            })
            .collect();
        let h = SpatialHistogram::from_parts("three", buckets, 60, ExtensionRule::Minkowski);
        // Only the first bucket is observed; disable splitting to isolate
        // the refit.
        let q = Rect::new(0.0, 0.0, 10.0, 10.0);
        let observations = vec![obs(q, 4.0, h.estimate_count(&q))];
        let (out, report) = h.refine(
            &observations,
            &RefineOptions {
                max_splits: 0,
                ..RefineOptions::default()
            },
        );
        assert_eq!(report.refit_buckets, 1);
        assert_eq!(out.buckets()[1].count, 20.0);
        assert_eq!(out.buckets()[2].count, 30.0);
        assert!(
            out.buckets()[0].count < 10.0,
            "observed bucket must move toward the actual"
        );
    }
}
