//! Compact binary persistence for histograms.
//!
//! A DBMS stores optimizer statistics in its catalog; this module gives
//! [`SpatialHistogram`] a versioned little-endian wire format for exactly
//! that purpose. The format is deliberately simple: a magic/version header,
//! the estimation parameters, then the flat bucket array — mirroring the
//! paper's eight-words-per-bucket layout.
//!
//! Decoding is **total**: any byte input yields `Ok` or a [`CodecError`],
//! never a panic, which the fault-injection suite in `minskew-data`
//! exercises with truncation, bit flips, and arbitrary byte soup.

use minskew_geom::Rect;

use crate::{Bucket, ExtensionRule, SpatialEstimator, SpatialHistogram};

const MAGIC: &[u8; 4] = b"MSKH";
const VERSION: u8 = 1;
/// Wire size of one bucket: 7 little-endian `f64` fields.
const BUCKET_WIRE_BYTES: usize = 7 * 8;

/// Errors produced when decoding a serialised histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `MSKH` magic.
    BadMagic,
    /// The format version is unknown to this library.
    UnsupportedVersion(u8),
    /// The buffer ended before the declared content.
    Truncated,
    /// A field held an invalid value (description inside).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a Min-Skew histogram (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_le(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64_le(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64_le()?))
    }
}

impl SpatialHistogram {
    /// Serialises the histogram to its catalog format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.name().as_bytes();
        let mut buf =
            Vec::with_capacity(32 + name.len() + self.buckets().len() * BUCKET_WIRE_BYTES);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(match self.extension_rule() {
            ExtensionRule::Minkowski => 0,
            ExtensionRule::PaperLiteral => 1,
            ExtensionRule::None => 2,
        });
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        buf.extend_from_slice(&(self.input_len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.buckets().len() as u32).to_le_bytes());
        for b in self.buckets() {
            for v in [
                b.mbr.lo.x,
                b.mbr.lo.y,
                b.mbr.hi.x,
                b.mbr.hi.y,
                b.count,
                b.avg_width,
                b.avg_height,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    /// Decodes a histogram previously produced by [`Self::to_bytes`].
    ///
    /// Total on arbitrary input: every malformed buffer maps to a
    /// [`CodecError`]; this function never panics.
    pub fn from_bytes(data: &[u8]) -> Result<SpatialHistogram, CodecError> {
        let mut cur = Cursor::new(data);
        if cur.remaining() < 4 || &data[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        cur.take(4)?;
        let version = cur.u8()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let rule = match cur.u8()? {
            0 => ExtensionRule::Minkowski,
            1 => ExtensionRule::PaperLiteral,
            2 => ExtensionRule::None,
            x => return Err(CodecError::Invalid(format!("extension rule tag {x}"))),
        };
        let name_len = cur.u16_le()? as usize;
        let name = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| CodecError::Invalid("name is not UTF-8".into()))?
            .to_owned();
        let input_len = cur.u64_le()? as usize;
        let n_buckets = cur.u32_le()? as usize;
        // Sanity bound before anything is trusted: no legitimate summary
        // is near 2^24 buckets, so an absurd count is corruption (or a
        // hostile header) and must be rejected before allocation.
        if n_buckets > crate::snapshot::MAX_SNAPSHOT_BUCKETS {
            return Err(CodecError::Invalid(format!(
                "bucket count {n_buckets} exceeds the sanity bound {}",
                crate::snapshot::MAX_SNAPSHOT_BUCKETS
            )));
        }
        // Overflow-proof payload check: a hostile header cannot make us
        // allocate or read past the buffer.
        let payload = n_buckets
            .checked_mul(BUCKET_WIRE_BYTES)
            .ok_or(CodecError::Truncated)?;
        if cur.remaining() < payload {
            return Err(CodecError::Truncated);
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let x1 = cur.f64_le()?;
            let y1 = cur.f64_le()?;
            let x2 = cur.f64_le()?;
            let y2 = cur.f64_le()?;
            let count = cur.f64_le()?;
            let avg_width = cur.f64_le()?;
            let avg_height = cur.f64_le()?;
            if ![x1, y1, x2, y2, count, avg_width, avg_height]
                .iter()
                .all(|v| v.is_finite())
            {
                return Err(CodecError::Invalid("non-finite bucket field".into()));
            }
            if x2 < x1 || y2 < y1 {
                return Err(CodecError::Invalid("inverted bucket box".into()));
            }
            if count < 0.0 || avg_width < 0.0 || avg_height < 0.0 {
                return Err(CodecError::Invalid("negative bucket statistic".into()));
            }
            buckets.push(Bucket {
                mbr: Rect::new(x1, y1, x2, y2),
                count,
                avg_width,
                avg_height,
            });
        }
        Ok(SpatialHistogram::from_parts(name, buckets, input_len, rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinSkewBuilder, SpatialEstimator};
    use minskew_datagen::charminar_with;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = charminar_with(3_000, 1);
        let h = MinSkewBuilder::new(40).regions(1_600).build(&ds);
        let bytes = h.to_bytes();
        let back = SpatialHistogram::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        // Estimates identical after roundtrip.
        let q = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
        assert_eq!(back.estimate_count(&q), h.estimate_count(&q));
    }

    #[test]
    fn roundtrip_empty_histogram() {
        let h = SpatialHistogram::from_parts("x", vec![], 0, ExtensionRule::None);
        let back = SpatialHistogram::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            SpatialHistogram::from_bytes(b"NOPE....."),
            Err(CodecError::BadMagic)
        );
        assert_eq!(SpatialHistogram::from_bytes(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let ds = charminar_with(500, 2);
        let h = MinSkewBuilder::new(10).regions(400).build(&ds);
        let bytes = h.to_bytes();
        for cut in [5, 8, bytes.len() - 3] {
            let r = SpatialHistogram::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn version_checked() {
        let ds = charminar_with(100, 3);
        let h = MinSkewBuilder::new(4).regions(100).build(&ds);
        let mut bytes = h.to_bytes().to_vec();
        bytes[4] = 99;
        assert_eq!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Decoding is total: any byte soup yields Ok or Err, never a panic.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFAD);
        for _ in 0..2_000 {
            let len = rng.gen_range(0..200);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = SpatialHistogram::from_bytes(&bytes);
        }
        // Single-byte corruptions of a valid image are also total.
        let ds = charminar_with(200, 9);
        let valid = MinSkewBuilder::new(6).regions(100).build(&ds).to_bytes();
        for pos in 0..valid.len() {
            let mut corrupt = valid.to_vec();
            corrupt[pos] ^= 0xFF;
            let _ = SpatialHistogram::from_bytes(&corrupt);
        }
    }

    #[test]
    fn hostile_bucket_count_rejected_without_allocation() {
        // Header declaring usize::MAX-ish buckets must fail cleanly, on
        // the sanity bound — before any allocation is attempted.
        let h = SpatialHistogram::from_parts("x", vec![], 0, ExtensionRule::None);
        let mut bytes = h.to_bytes();
        let n_off = bytes.len() - 4;
        bytes[n_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::Invalid(msg)) if msg.contains("sanity bound")
        ));
        // Counts just past the bound are rejected too; counts inside the
        // bound still fall through to the (truncation) payload check.
        let mut bytes = h.to_bytes();
        let over = (crate::snapshot::MAX_SNAPSHOT_BUCKETS as u32 + 1).to_le_bytes();
        bytes[n_off..].copy_from_slice(&over);
        assert!(matches!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
        let mut bytes = h.to_bytes();
        bytes[n_off..].copy_from_slice(&1000u32.to_le_bytes());
        assert_eq!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn corrupt_bucket_rejected() {
        let ds = charminar_with(100, 4);
        let h = MinSkewBuilder::new(2).regions(100).build(&ds);
        let mut bytes = h.to_bytes().to_vec();
        // Overwrite the first bucket's count with a negative number.
        let header = 4 + 1 + 1 + 2 + h.name().len() + 8 + 4;
        let count_off = header + 4 * 8;
        bytes[count_off..count_off + 8].copy_from_slice(&(-5.0f64).to_le_bytes());
        assert!(matches!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }
}
