//! Compact binary persistence for histograms.
//!
//! A DBMS stores optimizer statistics in its catalog; this module gives
//! [`SpatialHistogram`] a versioned little-endian wire format for exactly
//! that purpose. The format is deliberately simple: a magic/version header,
//! the estimation parameters, then the flat bucket array — mirroring the
//! paper's eight-words-per-bucket layout.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use minskew_geom::Rect;

use crate::{Bucket, ExtensionRule, SpatialEstimator, SpatialHistogram};

const MAGIC: &[u8; 4] = b"MSKH";
const VERSION: u8 = 1;

/// Errors produced when decoding a serialised histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `MSKH` magic.
    BadMagic,
    /// The format version is unknown to this library.
    UnsupportedVersion(u8),
    /// The buffer ended before the declared content.
    Truncated,
    /// A field held an invalid value (description inside).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a Min-Skew histogram (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl SpatialHistogram {
    /// Serialises the histogram to its catalog format.
    pub fn to_bytes(&self) -> Bytes {
        let name = self.name().as_bytes();
        let mut buf = BytesMut::with_capacity(32 + name.len() + self.buckets().len() * 56);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(match self.extension_rule() {
            ExtensionRule::Minkowski => 0,
            ExtensionRule::PaperLiteral => 1,
            ExtensionRule::None => 2,
        });
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u64_le(self.input_len() as u64);
        buf.put_u32_le(self.buckets().len() as u32);
        for b in self.buckets() {
            buf.put_f64_le(b.mbr.lo.x);
            buf.put_f64_le(b.mbr.lo.y);
            buf.put_f64_le(b.mbr.hi.x);
            buf.put_f64_le(b.mbr.hi.y);
            buf.put_f64_le(b.count);
            buf.put_f64_le(b.avg_width);
            buf.put_f64_le(b.avg_height);
        }
        buf.freeze()
    }

    /// Decodes a histogram previously produced by [`Self::to_bytes`].
    pub fn from_bytes(mut data: &[u8]) -> Result<SpatialHistogram, CodecError> {
        if data.remaining() < 4 || &data[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        data.advance(4);
        let version = take_u8(&mut data)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let rule = match take_u8(&mut data)? {
            0 => ExtensionRule::Minkowski,
            1 => ExtensionRule::PaperLiteral,
            2 => ExtensionRule::None,
            x => return Err(CodecError::Invalid(format!("extension rule tag {x}"))),
        };
        let name_len = take_u16(&mut data)? as usize;
        if data.remaining() < name_len {
            return Err(CodecError::Truncated);
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| CodecError::Invalid("name is not UTF-8".into()))?
            .to_owned();
        data.advance(name_len);
        let input_len = take_u64(&mut data)? as usize;
        let n_buckets = take_u32(&mut data)? as usize;
        if data.remaining() < n_buckets * 56 {
            return Err(CodecError::Truncated);
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let x1 = data.get_f64_le();
            let y1 = data.get_f64_le();
            let x2 = data.get_f64_le();
            let y2 = data.get_f64_le();
            let count = data.get_f64_le();
            let avg_width = data.get_f64_le();
            let avg_height = data.get_f64_le();
            if ![x1, y1, x2, y2, count, avg_width, avg_height]
                .iter()
                .all(|v| v.is_finite())
            {
                return Err(CodecError::Invalid("non-finite bucket field".into()));
            }
            if x2 < x1 || y2 < y1 {
                return Err(CodecError::Invalid("inverted bucket box".into()));
            }
            if count < 0.0 || avg_width < 0.0 || avg_height < 0.0 {
                return Err(CodecError::Invalid("negative bucket statistic".into()));
            }
            buckets.push(Bucket {
                mbr: Rect::new(x1, y1, x2, y2),
                count,
                avg_width,
                avg_height,
            });
        }
        Ok(SpatialHistogram::from_parts(name, buckets, input_len, rule))
    }
}

fn take_u8(data: &mut &[u8]) -> Result<u8, CodecError> {
    if data.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u8())
}

fn take_u16(data: &mut &[u8]) -> Result<u16, CodecError> {
    if data.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u16_le())
}

fn take_u32(data: &mut &[u8]) -> Result<u32, CodecError> {
    if data.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn take_u64(data: &mut &[u8]) -> Result<u64, CodecError> {
    if data.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinSkewBuilder, SpatialEstimator};
    use minskew_datagen::charminar_with;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = charminar_with(3_000, 1);
        let h = MinSkewBuilder::new(40).regions(1_600).build(&ds);
        let bytes = h.to_bytes();
        let back = SpatialHistogram::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        // Estimates identical after roundtrip.
        let q = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
        assert_eq!(back.estimate_count(&q), h.estimate_count(&q));
    }

    #[test]
    fn roundtrip_empty_histogram() {
        let h = SpatialHistogram::from_parts("x", vec![], 0, ExtensionRule::None);
        let back = SpatialHistogram::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            SpatialHistogram::from_bytes(b"NOPE....."),
            Err(CodecError::BadMagic)
        );
        assert_eq!(SpatialHistogram::from_bytes(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let ds = charminar_with(500, 2);
        let h = MinSkewBuilder::new(10).regions(400).build(&ds);
        let bytes = h.to_bytes();
        for cut in [5, 8, bytes.len() - 3] {
            let r = SpatialHistogram::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn version_checked() {
        let ds = charminar_with(100, 3);
        let h = MinSkewBuilder::new(4).regions(100).build(&ds);
        let mut bytes = h.to_bytes().to_vec();
        bytes[4] = 99;
        assert_eq!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Decoding is total: any byte soup yields Ok or Err, never a panic.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFAD);
        for _ in 0..2_000 {
            let len = rng.gen_range(0..200);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = SpatialHistogram::from_bytes(&bytes);
        }
        // Single-byte corruptions of a valid image are also total.
        let ds = charminar_with(200, 9);
        let valid = MinSkewBuilder::new(6).regions(100).build(&ds).to_bytes();
        for pos in 0..valid.len() {
            let mut corrupt = valid.to_vec();
            corrupt[pos] ^= 0xFF;
            let _ = SpatialHistogram::from_bytes(&corrupt);
        }
    }

    #[test]
    fn corrupt_bucket_rejected() {
        let ds = charminar_with(100, 4);
        let h = MinSkewBuilder::new(2).regions(100).build(&ds);
        let mut bytes = h.to_bytes().to_vec();
        // Overwrite the first bucket's count with a negative number.
        let header = 4 + 1 + 1 + 2 + h.name().len() + 8 + 4;
        let count_off = header + 4 * 8;
        bytes[count_off..count_off + 8].copy_from_slice(&(-5.0f64).to_le_bytes());
        assert!(matches!(
            SpatialHistogram::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }
}
