//! Morton (Z-order) scheduling for batched queries.
//!
//! A batch of queries in arrival order jumps all over the data space:
//! consecutive queries touch unrelated [`crate::BucketIndex`] cells and
//! unrelated stretches of the [`crate::BucketPlane`] columns, so every
//! query pays cold-cache prices. Sorting the batch by the Morton code of
//! each query's centre makes consecutive queries spatial neighbours —
//! they hit the same directory cells and the same SoA cache lines — while
//! leaving each *individual* estimate untouched. Batch callers apply the
//! permutation, estimate in Morton order, and scatter results back, so the
//! output order (and every output bit) is exactly what arrival-order
//! evaluation produces.
//!
//! The code is the classic bit-interleave: each centre is quantised to a
//! 32-bit integer per axis over the batch's own bounding box, and the two
//! integers are interleaved into a 64-bit key (x in the even bits, y in
//! the odd bits). Ties — including every batch whose centres are all
//! identical or collinear on a degenerate axis — are broken by arrival
//! order via a stable sort, so scheduling is fully deterministic.

use minskew_geom::Rect;

/// Spreads the bits of `v` so that bit `i` of `v` lands in bit `2i`.
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Morton (Z-order) code of a quantised point: the bits of `ix` and `iy`
/// interleaved, `ix` in the even positions.
#[inline]
pub fn morton_key(ix: u32, iy: u32) -> u64 {
    spread(ix) | (spread(iy) << 1)
}

/// Returns the indices of `queries` in Morton order of their centres
/// (a permutation of `0..queries.len()`).
///
/// Centres are quantised over the batch's own centre bounding box, so the
/// schedule adapts to whatever region the batch actually covers. The sort
/// is stable: equal keys (and every batch of fewer than two queries) keep
/// arrival order. Queries with non-finite centres — impossible for
/// [`Rect`]s built through the checked constructors, but batch callers may
/// be fed anything — sort after all finite ones, in arrival order.
pub fn morton_schedule(queries: &[Rect]) -> Vec<u32> {
    debug_assert!(u32::try_from(queries.len()).is_ok());
    let mut order: Vec<u32> = (0..queries.len() as u32).collect();
    if queries.len() < 2 {
        return order;
    }
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for q in queries {
        let c = q.center();
        if c.x.is_finite() && c.y.is_finite() {
            min_x = min_x.min(c.x);
            min_y = min_y.min(c.y);
            max_x = max_x.max(c.x);
            max_y = max_y.max(c.y);
        }
    }
    // Quantisation step per axis; 0.0 collapses a degenerate (or entirely
    // non-finite) axis onto coordinate 0.
    let scale_x = if max_x > min_x {
        u32::MAX as f64 / (max_x - min_x)
    } else {
        0.0
    };
    let scale_y = if max_y > min_y {
        u32::MAX as f64 / (max_y - min_y)
    } else {
        0.0
    };
    let keys: Vec<u64> = queries
        .iter()
        .map(|q| {
            let c = q.center();
            if !(c.x.is_finite() && c.y.is_finite()) {
                return u64::MAX;
            }
            // Float→int casts saturate, so rounding past the top maps to
            // the last cell rather than wrapping.
            let ix = ((c.x - min_x) * scale_x) as u32;
            let iy = ((c.y - min_y) * scale_y) as u32;
            morton_key(ix, iy)
        })
        .collect();
    order.sort_by_key(|&i| keys[i as usize]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Point;

    #[test]
    fn interleave_is_exact() {
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 0b01);
        assert_eq!(morton_key(0, 1), 0b10);
        assert_eq!(morton_key(0b11, 0b10), 0b1101);
        assert_eq!(morton_key(u32::MAX, u32::MAX), u64::MAX);
        assert_eq!(morton_key(u32::MAX, 0), 0x5555_5555_5555_5555);
    }

    #[test]
    fn schedule_is_a_permutation_and_groups_neighbours() {
        // Two spatial clusters interleaved in arrival order; the schedule
        // must visit each cluster contiguously.
        let mut queries = Vec::new();
        for i in 0..8 {
            let far = 1000.0 + i as f64;
            queries.push(Rect::new(far, far, far + 1.0, far + 1.0));
            let near = i as f64;
            queries.push(Rect::new(near, near, near + 1.0, near + 1.0));
        }
        let order = morton_schedule(&queries);
        let mut seen = vec![false; queries.len()];
        for &i in &order {
            assert!(!std::mem::replace(&mut seen[i as usize], true));
        }
        assert!(seen.iter().all(|&s| s));
        // All odd (near) arrival indices must come before all even (far)
        // ones: the near cluster sits at small Morton keys.
        let first_far = order.iter().position(|&i| i % 2 == 0).unwrap();
        assert!(
            order[first_far..].iter().all(|&i| i % 2 == 0),
            "clusters interleaved in {order:?}"
        );
    }

    #[test]
    fn equal_and_degenerate_centres_keep_arrival_order() {
        let q = Rect::from_point(Point::new(3.0, 4.0));
        let order = morton_schedule(&[q, q, q, q]);
        assert_eq!(order, vec![0, 1, 2, 3]);
        // Degenerate y axis: keys reduce to x order, ties stable.
        let line: Vec<Rect> = [2.0, 1.0, 2.0, 0.0]
            .iter()
            .map(|&x| Rect::from_point(Point::new(x, 7.0)))
            .collect();
        assert_eq!(morton_schedule(&line), vec![3, 1, 0, 2]);
    }

    #[test]
    fn tiny_batches_are_identity() {
        assert_eq!(morton_schedule(&[]), Vec::<u32>::new());
        assert_eq!(
            morton_schedule(&[Rect::new(0.0, 0.0, 1.0, 1.0)]),
            vec![0u32]
        );
    }
}
