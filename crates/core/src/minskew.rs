//! The **Min-Skew** partitioning (§4.1) with progressive refinement (§5.6)
//! — the paper's primary contribution.
//!
//! Min-Skew builds a binary space partitioning over a *density grid*
//! (a uniform grid of regions annotated with the number of rectangles
//! intersecting each region) rather than over the raw data, so construction
//! needs only one sweep of the input per grid resolution and a small,
//! memory-resident working set. The greedy loop repeatedly applies the
//! split — of any current bucket, along either axis, at any grid line —
//! that maximally reduces the partitioning's **spatial skew**
//! (Definition 4.1: the cell-count-weighted variance of densities within
//! buckets, i.e. the total SSE of cell densities).
//!
//! Two split-scoring strategies are provided:
//!
//! * [`SplitStrategy::Exact2d`] scores each candidate by the exact 2-D SSE
//!   reduction. Thanks to the prefix-sum tables in `minskew-data`, each
//!   candidate costs O(1), so this is both exact and fast — the default.
//! * [`SplitStrategy::Marginal`] reproduces the computational shortcut the
//!   paper describes ("basing the splitting decisions on marginal frequency
//!   distributions along each dimension rather than the full two-dimensional
//!   input distribution").
//!
//! **Progressive refinement** fixes the counter-intuitive failure mode the
//! paper demonstrates in Figure 10(b): with a very fine grid, highly skewed
//! pockets soak up all the buckets and *large* queries get worse. Starting
//! the construction on a coarse grid and refining it by 4× at equal bucket
//! intervals spends early buckets on the broad structure and late buckets on
//! the skewed hot spots.

use minskew_data::{CellBlock, Dataset, DensityGrid, GridPrefixSums, RectSource};
use minskew_geom::Axis;

use crate::error::BuildError;
use crate::{Bucket, ExtensionRule, SpatialHistogram};

/// How candidate splits are scored during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Exact 2-D SSE reduction via prefix sums (default).
    #[default]
    Exact2d,
    /// The paper's marginal-distribution shortcut: score splits by the SSE
    /// reduction of the per-axis *marginal* density vectors.
    Marginal,
}

/// Builder for Min-Skew histograms.
///
/// # Examples
///
/// Plain Min-Skew with the paper's defaults (10 000 regions):
///
/// ```
/// use minskew_core::MinSkewBuilder;
/// use minskew_datagen::charminar_with;
///
/// let data = charminar_with(2_000, 0);
/// let hist = MinSkewBuilder::new(50).build(&data);
/// assert!(hist.num_buckets() <= 50);
/// ```
///
/// Progressive refinement (2 refinements towards a 16 000-region grid,
/// the paper's Example 3):
///
/// ```
/// use minskew_core::MinSkewBuilder;
/// use minskew_datagen::charminar_with;
///
/// let data = charminar_with(2_000, 0);
/// let hist = MinSkewBuilder::new(60)
///     .regions(16_000)
///     .progressive_refinements(2)
///     .build(&data);
/// assert!(hist.num_buckets() <= 60);
/// ```
#[derive(Debug, Clone)]
pub struct MinSkewBuilder {
    buckets: usize,
    regions: usize,
    refinements: usize,
    strategy: SplitStrategy,
    rule: ExtensionRule,
    threads: usize,
}

impl MinSkewBuilder {
    /// Creates a builder targeting `buckets` buckets with the paper's
    /// default experimental setting of 10 000 grid regions, no refinement.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> MinSkewBuilder {
        match MinSkewBuilder::try_new(buckets) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`MinSkewBuilder::new`]: reports a zero
    /// bucket budget as [`BuildError::ZeroBucketBudget`] instead of
    /// panicking.
    pub fn try_new(buckets: usize) -> Result<MinSkewBuilder, BuildError> {
        if buckets == 0 {
            return Err(BuildError::ZeroBucketBudget);
        }
        Ok(MinSkewBuilder {
            buckets,
            regions: 10_000,
            refinements: 0,
            strategy: SplitStrategy::default(),
            rule: ExtensionRule::default(),
            threads: 1,
        })
    }

    /// The configured bucket budget.
    pub fn bucket_budget(&self) -> usize {
        self.buckets
    }

    /// Sets the (final) number of uniform grid regions approximating the
    /// input. More regions capture more detail at higher construction cost;
    /// see the paper's Experiment 3 for the trade-off.
    pub fn regions(self, regions: usize) -> MinSkewBuilder {
        match self.try_regions(regions) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`MinSkewBuilder::regions`].
    pub fn try_regions(mut self, regions: usize) -> Result<MinSkewBuilder, BuildError> {
        if regions == 0 {
            return Err(BuildError::InvalidConfig(
                "need at least one grid region".into(),
            ));
        }
        self.regions = regions;
        Ok(self)
    }

    /// Enables progressive refinement with `k` refinement steps: the build
    /// starts from `regions / 4^k` regions and quadruples the grid after
    /// every `buckets / (k + 1)` buckets produced (§5.6, Example 3).
    pub fn progressive_refinements(self, k: usize) -> MinSkewBuilder {
        match self.try_progressive_refinements(k) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`MinSkewBuilder::progressive_refinements`].
    pub fn try_progressive_refinements(mut self, k: usize) -> Result<MinSkewBuilder, BuildError> {
        if k > 16 {
            return Err(BuildError::InvalidConfig(format!(
                "{k} refinements requested; more than 16 is never meaningful"
            )));
        }
        self.refinements = k;
        Ok(self)
    }

    /// Selects the split-scoring strategy.
    pub fn split_strategy(mut self, strategy: SplitStrategy) -> MinSkewBuilder {
        self.strategy = strategy;
        self
    }

    /// Selects the estimation-time query-extension rule.
    pub fn extension_rule(mut self, rule: ExtensionRule) -> MinSkewBuilder {
        self.rule = rule;
        self
    }

    /// Sets the construction thread count. `1` (the default) is the serial
    /// reference path; `0` means one worker per available core.
    ///
    /// Parallel construction is **bit-identical** to serial: density-grid
    /// counting shards integer counters (order-independent merge), split
    /// candidates are scored independently per block, and the greedy
    /// selection itself — with its deterministic tie-break (lowest block
    /// index, then X before Y, then lowest split coordinate) — stays
    /// sequential. Sources without in-memory slices (streaming CSV scans)
    /// fall back to serial grid sweeps; the result is still identical.
    pub fn threads(mut self, threads: usize) -> MinSkewBuilder {
        self.threads = threads;
        self
    }

    /// The configured construction thread count (`0` = auto).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Builds the histogram.
    ///
    /// Lenient wrapper: an empty input yields an empty histogram and a grid
    /// coarser than the bucket budget silently produces fewer buckets. Use
    /// [`MinSkewBuilder::try_build`] to surface those conditions as errors.
    pub fn build(&self, data: &Dataset) -> SpatialHistogram {
        self.build_detailed(data).0
    }

    /// Builds the histogram and reports construction diagnostics.
    pub fn build_detailed(&self, data: &Dataset) -> (SpatialHistogram, MinSkewDetail) {
        self.build_from_source_detailed(data)
    }

    /// Fallible counterpart of [`MinSkewBuilder::build`]: reports empty
    /// inputs, non-finite bounding boxes, and unreachable bucket budgets as
    /// [`BuildError`]s instead of silently degrading.
    pub fn try_build(&self, data: &Dataset) -> Result<SpatialHistogram, BuildError> {
        self.try_build_from_source(data)
    }

    /// Fallible counterpart of [`MinSkewBuilder::build_detailed`].
    pub fn try_build_detailed(
        &self,
        data: &Dataset,
    ) -> Result<(SpatialHistogram, MinSkewDetail), BuildError> {
        self.try_build_from_source_detailed(data)
    }

    /// Fallible counterpart of [`MinSkewBuilder::build_from_source`].
    pub fn try_build_from_source<S: RectSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<SpatialHistogram, BuildError> {
        Ok(self.try_build_from_source_detailed(source)?.0)
    }

    /// Fallible counterpart of [`MinSkewBuilder::build_from_source_detailed`].
    ///
    /// # Errors
    ///
    /// * [`BuildError::EmptyDataset`] — the source has no rectangles.
    /// * [`BuildError::NonFiniteMbr`] — the source's bounding box contains
    ///   NaN or infinite coordinates.
    /// * [`BuildError::GridTooCoarse`] — the final density grid has fewer
    ///   cells than the bucket budget, so the budget is unreachable; the
    ///   error carries the achievable count for callers that degrade.
    pub fn try_build_from_source_detailed<S: RectSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<(SpatialHistogram, MinSkewDetail), BuildError> {
        self.check_preconditions(source)?;
        Ok(self.build_from_source_detailed(source))
    }

    /// Side length of the final density grid: `√regions` rounded, then
    /// rounded up so every progressive refinement halves exactly.
    fn final_grid_side(&self) -> usize {
        let align = 1usize << self.refinements;
        let side = (self.regions as f64).sqrt().round().max(1.0) as usize;
        side.div_ceil(align) * align
    }

    /// Builds the histogram from any [`RectSource`] — including
    /// disk-resident sources like [`minskew_data::CsvRectSource`] — using
    /// only sequential sweeps (one per refinement phase plus the final
    /// assignment pass) and O(grid + buckets) resident memory.
    ///
    /// This is the paper's memory story made literal: "the construction
    /// algorithm does not require the entire data distribution to fit in
    /// main memory".
    pub fn build_from_source<S: RectSource + ?Sized>(&self, source: &S) -> SpatialHistogram {
        self.build_from_source_detailed(source).0
    }

    /// [`Self::build_from_source`] with construction diagnostics.
    pub fn build_from_source_detailed<S: RectSource + ?Sized>(
        &self,
        source: &S,
    ) -> (SpatialHistogram, MinSkewDetail) {
        let (hist, detail, _) = self.build_impl(source, false);
        (hist, detail)
    }

    /// [`Self::build_from_source`] with a per-split build trace: every
    /// greedy split of the §4.2 loop recorded as a [`SplitEvent`], so the
    /// construction is auditable split by split.
    ///
    /// The traced build is **byte-identical** to the untraced one — tracing
    /// only adds O(1) prefix-sum probes per chosen split and never
    /// influences a splitting decision.
    pub fn build_from_source_traced<S: RectSource + ?Sized>(
        &self,
        source: &S,
    ) -> (SpatialHistogram, MinSkewBuildTrace) {
        let (hist, _, trace) = self.build_impl(source, true);
        (hist, trace)
    }

    /// Fallible counterpart of [`MinSkewBuilder::build_from_source_traced`]:
    /// the same precondition checks as [`MinSkewBuilder::try_build`], then a
    /// traced build.
    pub fn try_build_traced<S: RectSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<(SpatialHistogram, MinSkewBuildTrace), BuildError> {
        self.check_preconditions(source)?;
        let (hist, _, trace) = self.build_impl(source, true);
        Ok((hist, trace))
    }

    /// Shared precondition checks for the `try_` builders.
    fn check_preconditions<S: RectSource + ?Sized>(&self, source: &S) -> Result<(), BuildError> {
        let stats = source.stats();
        if stats.n == 0 {
            return Err(BuildError::EmptyDataset);
        }
        if !stats.mbr.is_finite() {
            return Err(BuildError::NonFiniteMbr);
        }
        let side = self.final_grid_side();
        if side * side < self.buckets {
            return Err(BuildError::GridTooCoarse {
                regions: side * side,
                buckets: self.buckets,
            });
        }
        Ok(())
    }

    /// The one construction path behind every `build*` entry point. When
    /// `traced`, chosen splits are recorded (the trace is empty otherwise).
    fn build_impl<S: RectSource + ?Sized>(
        &self,
        source: &S,
        traced: bool,
    ) -> (SpatialHistogram, MinSkewDetail, MinSkewBuildTrace) {
        let mut build_clock = minskew_obs::Stopwatch::start();
        let data = source;
        if data.stats().n == 0 {
            return (
                SpatialHistogram::from_parts("Min-Skew", vec![], 0, self.rule),
                MinSkewDetail {
                    spatial_skew: 0.0,
                    grid_side: 0,
                },
                MinSkewBuildTrace::default(),
            );
        }
        let mbr = data.stats().mbr;
        let phases = self.refinements + 1;
        let side = self.final_grid_side();

        let mut blocks: Vec<CellBlock> = Vec::new();
        let mut grid = None;
        let mut prefix = None;
        let mut prev_dims = (0usize, 0usize);
        let mut splits: Vec<SplitEvent> = Vec::new();

        for phase in 0..phases {
            let cur_side = side >> (self.refinements - phase);
            // Sharded parallel counting when the source is memory-resident;
            // streaming sources keep the serial single-sweep build. Both
            // produce bit-identical grids (integer counters merge exactly).
            let g = match data.as_slice() {
                Some(rects) if self.threads != 1 => {
                    DensityGrid::build_with_threads(rects, mbr, cur_side, cur_side, self.threads)
                }
                _ => DensityGrid::build(data.scan(), mbr, cur_side, cur_side),
            };
            let p = GridPrefixSums::from_grid(&g);
            if phase == 0 {
                blocks.push(g.full_block());
            } else {
                // Remap buckets onto the finer grid. Grid dimensions scale
                // by an exact integer factor (degenerate axes stay at 1).
                let (nx, ny) = (g.nx(), g.ny());
                let (px, py) = prev_dims;
                blocks = blocks
                    .iter()
                    .map(|b| {
                        CellBlock::new(
                            b.x0 * nx / px,
                            (b.x1 + 1) * nx / px - 1,
                            b.y0 * ny / py,
                            (b.y1 + 1) * ny / py - 1,
                        )
                    })
                    .collect();
            }
            prev_dims = (g.nx(), g.ny());

            // Per the paper's Example 3: each phase contributes an equal
            // share of the bucket budget; the last phase takes any slack.
            let target = if phase + 1 == phases {
                self.buckets
            } else {
                (self.buckets * (phase + 1)) / phases
            };
            let mut raw: Vec<RawSplit> = Vec::new();
            greedy_split(
                &mut blocks,
                &p,
                self.strategy,
                target,
                self.threads,
                traced.then_some(&mut raw),
            );
            // Convert grid indices into data-space coordinates while this
            // phase's grid is still in scope; later phases use finer grids.
            for r in raw {
                let coordinate = match r.axis {
                    Axis::X => g.cell_rect(r.index, 0).hi.x,
                    Axis::Y => g.cell_rect(0, r.index).hi.y,
                };
                splits.push(SplitEvent {
                    phase,
                    bucket: r.bucket,
                    axis: r.axis,
                    grid_index: r.index,
                    coordinate,
                    skew_before: r.sse_before,
                    skew_after: r.sse_after,
                });
            }
            grid = Some(g);
            prefix = Some(p);
        }

        let grid = grid.expect("at least one phase ran");
        let prefix = prefix.expect("at least one phase ran");
        let skew: f64 = blocks.iter().map(|b| prefix.block_sse(b)).sum();
        let hist = blocks_to_histogram("Min-Skew", data, &grid, &blocks, self.rule);
        let build_ns = build_clock.lap();
        crate::buildobs::record_build(&hist, build_ns);
        let detail = MinSkewDetail {
            spatial_skew: skew,
            grid_side: grid.nx().max(grid.ny()),
        };
        let trace = MinSkewBuildTrace {
            splits,
            phases,
            final_skew: skew,
            grid_side: detail.grid_side,
            build_ns,
        };
        (hist, detail, trace)
    }
}

/// Construction diagnostics reported by [`MinSkewBuilder::build_detailed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinSkewDetail {
    /// The spatial skew (Definition 4.1) of the final partitioning, measured
    /// on the final grid: `Σ_buckets n_i · s_i`.
    pub spatial_skew: f64,
    /// Side length of the final grid actually used.
    pub grid_side: usize,
}

/// One greedy split of the §4.2 loop, as recorded by
/// [`MinSkewBuilder::build_from_source_traced`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitEvent {
    /// Progressive-refinement phase the split belongs to (0-based).
    pub phase: usize,
    /// Index of the bucket that was split (its lower half stays at this
    /// index; the upper half is appended).
    pub bucket: usize,
    /// Split axis.
    pub axis: Axis,
    /// Grid-cell index the split falls *after*, on this phase's grid.
    pub grid_index: usize,
    /// Data-space coordinate of the split boundary.
    pub coordinate: f64,
    /// Spatial skew (SSE) of the split bucket before the split.
    pub skew_before: f64,
    /// Combined spatial skew of the two halves after the split; the greedy
    /// criterion guarantees `skew_after <= skew_before` up to float noise.
    pub skew_after: f64,
}

/// The full per-split audit trail of one Min-Skew construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinSkewBuildTrace {
    /// Every greedy split, in the order it was applied.
    pub splits: Vec<SplitEvent>,
    /// Number of progressive-refinement phases run (refinements + 1).
    pub phases: usize,
    /// Spatial skew of the final partitioning on the final grid.
    pub final_skew: f64,
    /// Side length of the final grid actually used.
    pub grid_side: usize,
    /// Wall-clock construction time in nanoseconds (0 when `minskew-obs`
    /// is compiled with its `noop` feature).
    pub build_ns: u64,
}

/// A chosen split as recorded inside [`greedy_split`], in grid coordinates;
/// the phase loop converts these to data-space [`SplitEvent`]s.
#[derive(Debug, Clone, Copy)]
struct RawSplit {
    bucket: usize,
    axis: Axis,
    index: usize,
    sse_before: f64,
    sse_after: f64,
}

/// A bucket's cached best split.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    reduction: f64,
    axis: Axis,
    index: usize,
}

/// Greedily splits `blocks` until `target` buckets exist or no split
/// reduces the spatial skew.
///
/// Split candidates are scored **across open blocks in parallel** (each
/// block's scan is independent, given the shared prefix-sum tables), while
/// the greedy selection itself stays sequential with a deterministic
/// tie-break — so the construction is bit-identical at every thread count.
///
/// Tie-break on equal skew reduction: the **lowest block index** wins, and
/// within a block the X axis before the Y axis, then the **lowest split
/// coordinate** (enforced by the strictly-greater comparisons in
/// [`best_split_exact`] / [`best_split_marginal`], which scan axes and
/// indices in ascending order).
fn greedy_split(
    blocks: &mut Vec<CellBlock>,
    prefix: &GridPrefixSums,
    strategy: SplitStrategy,
    target: usize,
    threads: usize,
    mut sink: Option<&mut Vec<RawSplit>>,
) {
    let mut candidates: Vec<Option<Candidate>> = best_splits_par(blocks, prefix, strategy, threads);
    while blocks.len() < target {
        // Pick the bucket whose best split yields the greatest reduction in
        // spatial skew (the paper's greedy criterion). The scan keeps the
        // first strict maximum, so ties resolve to the lowest block index.
        let mut best: Option<(usize, Candidate)> = None;
        for (i, cand) in candidates.iter().enumerate() {
            let Some(cand) = cand else { continue };
            if best.is_none_or(|(_, b)| cand.reduction > b.reduction) {
                best = Some((i, *cand));
            }
        }
        let Some((i, cand)) = best else { break };
        if cand.reduction <= 0.0 {
            break;
        }
        let (a, b) = blocks[i].split_after(cand.axis, cand.index);
        if let Some(sink) = sink.as_deref_mut() {
            // Audit-trail probes only: three O(1) prefix-sum lookups per
            // *chosen* split, never consulted by the greedy decision above.
            sink.push(RawSplit {
                bucket: i,
                axis: cand.axis,
                index: cand.index,
                sse_before: prefix.block_sse(&blocks[i]),
                sse_after: prefix.block_sse(&a) + prefix.block_sse(&b),
            });
        }
        blocks[i] = a;
        blocks.push(b);
        candidates[i] = best_split(&a, prefix, strategy);
        candidates.push(best_split(&b, prefix, strategy));
    }
}

/// Scores every block's best split, fanning the scans out across threads.
///
/// Each block's result is a pure function of `(block, prefix, strategy)`
/// and lands at its block's index, so the output is identical to the serial
/// map regardless of thread count or scheduling.
fn best_splits_par(
    blocks: &[CellBlock],
    prefix: &GridPrefixSums,
    strategy: SplitStrategy,
    threads: usize,
) -> Vec<Option<Candidate>> {
    // A candidate scan is O(width + height) prefix-sum probes; only fan out
    // when there is enough aggregate work to amortise thread spawns.
    const PAR_MIN_BLOCKS: usize = 16;
    if threads == 1 || blocks.len() < PAR_MIN_BLOCKS {
        return blocks
            .iter()
            .map(|b| best_split(b, prefix, strategy))
            .collect();
    }
    minskew_par::map_slice(threads, blocks, |b| best_split(b, prefix, strategy))
}

/// Finds the best split of one block under the given strategy.
fn best_split(
    block: &CellBlock,
    prefix: &GridPrefixSums,
    strategy: SplitStrategy,
) -> Option<Candidate> {
    if block.is_unit() {
        return None;
    }
    match strategy {
        SplitStrategy::Exact2d => best_split_exact(block, prefix),
        SplitStrategy::Marginal => best_split_marginal(block, prefix),
    }
}

fn best_split_exact(block: &CellBlock, prefix: &GridPrefixSums) -> Option<Candidate> {
    let parent = prefix.block_sse(block);
    let mut best: Option<Candidate> = None;
    for axis in Axis::BOTH {
        let (lo, hi) = match axis {
            Axis::X => (block.x0, block.x1),
            Axis::Y => (block.y0, block.y1),
        };
        for i in lo..hi {
            let (a, b) = block.split_after(axis, i);
            let reduction = parent - prefix.block_sse(&a) - prefix.block_sse(&b);
            if best.is_none_or(|c| reduction > c.reduction) {
                best = Some(Candidate {
                    reduction,
                    axis,
                    index: i,
                });
            }
        }
    }
    best
}

fn best_split_marginal(block: &CellBlock, prefix: &GridPrefixSums) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for axis in Axis::BOTH {
        let (lo, hi) = match axis {
            Axis::X => (block.x0, block.x1),
            Axis::Y => (block.y0, block.y1),
        };
        if lo == hi {
            continue;
        }
        // Marginal density vector along `axis`.
        let marg: Vec<f64> = (lo..=hi)
            .map(|i| match axis {
                Axis::X => prefix.column_sum(i, block.y0, block.y1),
                Axis::Y => prefix.row_sum(i, block.x0, block.x1),
            })
            .collect();
        let total_s: f64 = marg.iter().sum();
        let total_s2: f64 = marg.iter().map(|v| v * v).sum();
        let n = marg.len() as f64;
        let sse_total = (total_s2 - total_s * total_s / n).max(0.0);
        // Scan split positions with running sums.
        let mut s = 0.0;
        let mut s2 = 0.0;
        for (k, v) in marg[..marg.len() - 1].iter().enumerate() {
            s += v;
            s2 += v * v;
            let nl = (k + 1) as f64;
            let nr = n - nl;
            let sse_l = (s2 - s * s / nl).max(0.0);
            let rs = total_s - s;
            let rs2 = total_s2 - s2;
            let sse_r = (rs2 - rs * rs / nr).max(0.0);
            let reduction = sse_total - sse_l - sse_r;
            if best.is_none_or(|c| reduction > c.reduction) {
                best = Some(Candidate {
                    reduction,
                    axis,
                    index: lo + k,
                });
            }
        }
    }
    best
}

/// The final data pass of Algorithm Min-Skew: assign each rectangle to the
/// bucket whose region contains its centre, then emit bucket summaries.
///
/// Shared by every grid-block-based partitioner in this crate (greedy
/// Min-Skew, the optimal-BSP baseline). One sequential sweep of the source.
///
/// Deliberately **not** parallelized: the pass accumulates `f64` sums
/// (counts, widths, heights), and floating-point addition is not
/// associative — sharding the sweep would reorder additions and break the
/// bit-identical serial/parallel contract for, at most, a few percent of
/// total construction time.
pub(crate) fn blocks_to_histogram<S: RectSource + ?Sized>(
    name: &str,
    data: &S,
    grid: &DensityGrid,
    blocks: &[CellBlock],
    rule: ExtensionRule,
) -> SpatialHistogram {
    // Cell -> bucket index map for O(1) point location.
    let mut owner = vec![u32::MAX; grid.num_cells()];
    for (bi, b) in blocks.iter().enumerate() {
        for iy in b.y0..=b.y1 {
            let row = iy * grid.nx();
            for slot in &mut owner[row + b.x0..=row + b.x1] {
                *slot = bi as u32;
            }
        }
    }
    let mut count = vec![0f64; blocks.len()];
    let mut sum_w = vec![0f64; blocks.len()];
    let mut sum_h = vec![0f64; blocks.len()];
    for r in data.scan() {
        let (ix, iy) = grid.cell_containing(r.center());
        let bi = owner[iy * grid.nx() + ix];
        debug_assert!(bi != u32::MAX, "blocks must tile the grid");
        let bi = bi as usize;
        count[bi] += 1.0;
        sum_w[bi] += r.width();
        sum_h[bi] += r.height();
    }
    let buckets: Vec<Bucket> = blocks
        .iter()
        .enumerate()
        .filter(|&(bi, _)| count[bi] > 0.0)
        .map(|(bi, b)| Bucket {
            mbr: grid.block_rect(b),
            count: count[bi],
            avg_width: sum_w[bi] / count[bi],
            avg_height: sum_h[bi] / count[bi],
        })
        .collect();
    SpatialHistogram::from_parts(name, buckets, data.stats().n, rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialEstimator;
    use minskew_datagen::charminar_with;
    use minskew_geom::Rect;

    #[test]
    fn respects_bucket_budget_and_covers_input() {
        let ds = charminar_with(8_000, 1);
        let h = MinSkewBuilder::new(50).regions(2_500).build(&ds);
        assert!(h.num_buckets() <= 50);
        assert!(h.num_buckets() >= 10, "got {}", h.num_buckets());
        assert!((h.total_count() - 8_000.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_data_needs_no_splits() {
        // Perfectly flat density: every split reduction is ~0, so the
        // greedy loop stops immediately with one bucket.
        let rects: Vec<Rect> = (0..64)
            .flat_map(|iy| {
                (0..64).map(move |ix| {
                    Rect::new(ix as f64, iy as f64, ix as f64 + 1.0, iy as f64 + 1.0)
                })
            })
            .collect();
        let ds = Dataset::new(rects);
        let h = MinSkewBuilder::new(20).regions(64 * 64).build(&ds);
        assert!(
            h.num_buckets() <= 4,
            "flat density should stop early, got {}",
            h.num_buckets()
        );
    }

    #[test]
    fn spatial_skew_decreases_with_buckets() {
        let ds = charminar_with(10_000, 2);
        let mut last = f64::INFINITY;
        for buckets in [1, 5, 25, 100] {
            let (_, detail) = MinSkewBuilder::new(buckets)
                .regions(2_500)
                .build_detailed(&ds);
            assert!(
                detail.spatial_skew <= last + 1e-6,
                "skew must be non-increasing in buckets"
            );
            last = detail.spatial_skew;
        }
        assert!(last >= 0.0);
    }

    #[test]
    fn beats_all_simpler_techniques_on_charminar() {
        let ds = charminar_with(20_000, 3);
        let minskew = MinSkewBuilder::new(50).regions(2_500).build(&ds);
        let uniform = crate::build_uniform(&ds);
        let equi_area = crate::build_equi_area(&ds, 50);
        // Average relative error over a set of mixed queries.
        let queries: Vec<Rect> = (0..10)
            .flat_map(|i| {
                let t = i as f64 * 1_000.0;
                vec![
                    Rect::new(t * 0.9, t * 0.9, t * 0.9 + 900.0, t * 0.9 + 900.0),
                    Rect::new(0.0, t * 0.9, 1_500.0, t * 0.9 + 1_500.0),
                ]
            })
            .collect();
        let err = |est: &dyn SpatialEstimator| {
            let mut num = 0.0;
            let mut den = 0.0;
            for q in &queries {
                let actual = ds.count_intersecting(q) as f64;
                num += (est.estimate_count(q) - actual).abs();
                den += actual;
            }
            num / den
        };
        let e_ms = err(&minskew);
        let e_uni = err(&uniform);
        let e_ea = err(&equi_area);
        assert!(e_ms < e_uni, "Min-Skew {e_ms} vs Uniform {e_uni}");
        assert!(e_ms < e_ea, "Min-Skew {e_ms} vs Equi-Area {e_ea}");
    }

    #[test]
    fn progressive_refinement_matches_example_3_accounting() {
        // 60 buckets, 2 refinements, 16000 regions: phases at 1000 / 4000 /
        // 16000 regions emitting 20 buckets each. We can't observe phase
        // internals directly, but the build must succeed and use the full
        // budget on skewed data.
        let ds = charminar_with(10_000, 4);
        let h = MinSkewBuilder::new(60)
            .regions(16_000)
            .progressive_refinements(2)
            .build(&ds);
        assert!(h.num_buckets() <= 60);
        assert!(h.num_buckets() >= 30, "got {}", h.num_buckets());
        assert!((h.total_count() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn refinement_grid_side_aligns() {
        let ds = charminar_with(1_000, 5);
        let (_, detail) = MinSkewBuilder::new(12)
            .regions(10_000) // side 100 -> rounded up to 104 for 8x alignment
            .progressive_refinements(3)
            .build_detailed(&ds);
        assert_eq!(detail.grid_side % (1 << 3), 0);
        assert!(detail.grid_side >= 100);
    }

    #[test]
    fn marginal_strategy_builds_valid_histogram() {
        let ds = charminar_with(8_000, 6);
        let h = MinSkewBuilder::new(40)
            .regions(2_500)
            .split_strategy(SplitStrategy::Marginal)
            .build(&ds);
        assert!(h.num_buckets() <= 40);
        assert!((h.total_count() - 8_000.0).abs() < 1e-9);
        // Still much better than uniform on a corner query.
        let q = Rect::new(0.0, 0.0, 1_200.0, 1_200.0);
        let actual = ds.count_intersecting(&q) as f64;
        let uni = crate::build_uniform(&ds);
        let em = (h.estimate_count(&q) - actual).abs();
        let eu = (uni.estimate_count(&q) - actual).abs();
        assert!(em < eu);
    }

    #[test]
    fn single_rect_and_empty_inputs() {
        let empty = Dataset::new(vec![]);
        let h = MinSkewBuilder::new(10).build(&empty);
        assert_eq!(h.num_buckets(), 0);
        let one = Dataset::new(vec![Rect::new(1.0, 1.0, 2.0, 2.0)]);
        let h = MinSkewBuilder::new(10).regions(100).build(&one);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.total_count(), 1.0);
        assert_eq!(h.estimate_count(&Rect::new(0.0, 0.0, 3.0, 3.0)), 1.0);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let ds = charminar_with(10_000, 11);
        for strategy in [SplitStrategy::Exact2d, SplitStrategy::Marginal] {
            for refinements in [0usize, 2] {
                let base = MinSkewBuilder::new(40)
                    .regions(1_600)
                    .progressive_refinements(refinements)
                    .split_strategy(strategy);
                let serial = base.clone().threads(1).build(&ds);
                for threads in [0usize, 2, 3, 8] {
                    let parallel = base.clone().threads(threads).build(&ds);
                    assert_eq!(
                        parallel, serial,
                        "threads={threads} strategy={strategy:?} refinements={refinements}"
                    );
                    assert_eq!(parallel.to_bytes(), serial.to_bytes());
                }
            }
        }
    }

    #[test]
    fn tie_break_prefers_lowest_block_then_lowest_coordinate() {
        // A 2x1 arrangement of two identical point clusters: splitting the
        // full block after column 0 or 1 gives the same skew reduction. The
        // deterministic rule must pick the lowest split coordinate, every
        // time, at every thread count.
        let mut rects = Vec::new();
        for i in 0..32 {
            let dx = (i % 2) as f64 * 0.1;
            rects.push(Rect::new(dx, 0.0, dx + 0.05, 0.05)); // cluster in cell 0
            rects.push(Rect::new(2.0 + dx, 0.0, 2.0 + dx + 0.05, 0.05)); // cell 2
        }
        let ds = Dataset::new(rects);
        let reference = MinSkewBuilder::new(2).regions(9).build(&ds);
        for threads in [1usize, 2, 8] {
            let h = MinSkewBuilder::new(2)
                .regions(9)
                .threads(threads)
                .build(&ds);
            assert_eq!(h, reference, "threads = {threads}");
        }
        assert_eq!(reference.num_buckets(), 2);
    }

    #[test]
    fn traced_build_is_byte_identical_and_auditable() {
        let ds = charminar_with(6_000, 12);
        for refinements in [0usize, 2] {
            let builder = MinSkewBuilder::new(30)
                .regions(1_600)
                .progressive_refinements(refinements);
            let plain = builder.build(&ds);
            let (traced, trace) = builder.build_from_source_traced(&ds);
            assert_eq!(plain, traced, "refinements = {refinements}");
            assert_eq!(plain.to_bytes(), traced.to_bytes());
            // The audit trail accounts for the greedy loop: one event per
            // split, each reducing the split bucket's skew, phases ordered.
            assert_eq!(trace.phases, refinements + 1);
            assert!(!trace.splits.is_empty());
            assert!(trace.splits.len() < 30);
            let mbr = ds.stats().mbr;
            for w in trace.splits.windows(2) {
                assert!(w[0].phase <= w[1].phase, "phases must be ordered");
            }
            for s in &trace.splits {
                assert!(
                    s.skew_after <= s.skew_before + 1e-6,
                    "split must not increase its bucket's skew"
                );
                assert!(s.coordinate >= mbr.lo.coord(s.axis));
                assert!(s.coordinate <= mbr.hi.coord(s.axis));
            }
            let (strict, strict_trace) = builder.try_build_traced(&ds).expect("valid input");
            assert_eq!(strict, plain);
            assert_eq!(strict_trace.splits, trace.splits);
        }
    }

    #[test]
    fn try_build_reports_precondition_failures() {
        assert!(matches!(
            MinSkewBuilder::try_new(0),
            Err(BuildError::ZeroBucketBudget)
        ));
        let empty = Dataset::new(vec![]);
        assert_eq!(
            MinSkewBuilder::new(10).try_build(&empty),
            Err(BuildError::EmptyDataset)
        );
        let ds = charminar_with(200, 9);
        // A 2x2 grid cannot reach 10 buckets; the error carries the
        // achievable count so callers can degrade.
        assert_eq!(
            MinSkewBuilder::new(10).regions(4).try_build(&ds),
            Err(BuildError::GridTooCoarse {
                regions: 4,
                buckets: 10
            })
        );
        // The lenient wrapper still builds, just with fewer buckets.
        let h = MinSkewBuilder::new(10).regions(4).build(&ds);
        assert!(h.num_buckets() <= 4);
        assert!(MinSkewBuilder::new(10).try_regions(0).is_err());
        assert!(MinSkewBuilder::new(10)
            .try_progressive_refinements(17)
            .is_err());
    }

    #[test]
    fn try_build_success_matches_lenient_build() {
        let ds = charminar_with(2_000, 10);
        let builder = MinSkewBuilder::new(20).regions(400);
        let strict = builder.try_build(&ds).expect("valid input");
        let lenient = builder.build(&ds);
        assert_eq!(strict, lenient);
    }

    #[test]
    fn estimates_are_finite_and_bounded() {
        let ds = charminar_with(5_000, 7);
        let h = MinSkewBuilder::new(50).regions(2_500).build(&ds);
        for q in [
            Rect::new(-1e6, -1e6, 1e6, 1e6),
            Rect::new(5_000.0, 5_000.0, 5_000.0, 5_000.0),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        ] {
            let e = h.estimate_count(&q);
            assert!(e.is_finite() && e >= 0.0);
            assert!(e <= 5_000.0 + 1e-9);
        }
    }

    #[test]
    fn extreme_inputs_build_sanely() {
        use minskew_geom::Point;
        // All rectangles identical at a single point.
        let point_pile = Dataset::new(vec![Rect::from_point(Point::new(3.0, 3.0)); 50]);
        // All centres on a vertical line.
        let line: Dataset = Dataset::new(
            (0..60)
                .map(|i| Rect::new(10.0, i as f64, 10.0, i as f64 + 0.5))
                .collect(),
        );
        // Astronomically large coordinates.
        let huge = Dataset::new(
            (0..40)
                .map(|i| {
                    let x = 1e12 + i as f64 * 1e9;
                    Rect::new(x, -1e12, x + 1e8, -1e12 + 1e8)
                })
                .collect(),
        );
        for (name, ds) in [("point-pile", point_pile), ("line", line), ("huge", huge)] {
            for refinements in [0usize, 2] {
                let h = MinSkewBuilder::new(8)
                    .regions(64)
                    .progressive_refinements(refinements)
                    .build(&ds);
                assert!(
                    (h.total_count() - ds.len() as f64).abs() < 1e-9,
                    "{name}: mass lost"
                );
                let whole = ds.stats().mbr.expanded(1.0, 1.0);
                let est = h.estimate_count(&whole);
                assert!(
                    (est - ds.len() as f64).abs() < 1e-6,
                    "{name}: covering estimate {est}"
                );
            }
        }
    }

    #[test]
    fn streaming_build_equals_in_memory_build() {
        // The CSV-backed source must yield byte-identical histograms to the
        // in-memory dataset: construction only ever touches the data
        // through sequential sweeps.
        let ds = charminar_with(3_000, 8);
        let path =
            std::env::temp_dir().join(format!("minskew-streaming-{}.csv", std::process::id()));
        minskew_data::write_rects_csv(&ds, &path).unwrap();
        let source = minskew_data::CsvRectSource::open(&path).unwrap();
        for refinements in [0usize, 2] {
            let builder = MinSkewBuilder::new(40)
                .regions(1_600)
                .progressive_refinements(refinements);
            let in_memory = builder.build(&ds);
            let streamed = builder.build_from_source(&source);
            assert_eq!(in_memory, streamed, "refinements = {refinements}");
        }
        std::fs::remove_file(path).ok();
    }

    use minskew_data::Dataset;
}
