//! Equi-partitionings of spatial data (§3.3): *Equi-Area* and *Equi-Count*,
//! the spatial analogues of equi-width and equi-height histograms.
//!
//! Both construct a binary space partitioning top-down from a single bucket
//! holding everything:
//!
//! * **Equi-Area** always splits the bucket with the longest MBR side, at
//!   the midpoint of that side — driving bucket areas towards equality.
//! * **Equi-Count** always splits the bucket with the most rectangles, along
//!   the dimension with the higher *projected rectangle count* (number of
//!   distinct centre coordinates), at the member median — driving bucket
//!   cardinalities towards equality.
//!
//! Rectangles move to the half containing their centre and bucket MBRs are
//! recomputed from the member rectangles, so buckets track the data rather
//! than blindly tiling space.

use minskew_data::Dataset;
use minskew_geom::{mbr_of, Axis, Point, Rect};

use crate::error::BuildError;
use crate::{Bucket, ExtensionRule, SpatialHistogram};

/// Builds the *Equi-Area* partitioning with (up to) `buckets` buckets.
///
/// Fewer buckets are returned when the data cannot be divided further
/// (e.g. all rectangles identical).
///
/// # Panics
///
/// Panics if `buckets == 0`; use [`try_build_equi_area`] to handle that as
/// an error.
pub fn build_equi_area(data: &Dataset, buckets: usize) -> SpatialHistogram {
    build_equi(data, buckets, Strategy::Area, "Equi-Area")
}

/// Builds the *Equi-Count* partitioning with (up to) `buckets` buckets.
///
/// # Panics
///
/// Panics if `buckets == 0`; use [`try_build_equi_count`] to handle that as
/// an error.
pub fn build_equi_count(data: &Dataset, buckets: usize) -> SpatialHistogram {
    build_equi(data, buckets, Strategy::Count, "Equi-Count")
}

/// Fallible counterpart of [`build_equi_area`].
pub fn try_build_equi_area(data: &Dataset, buckets: usize) -> Result<SpatialHistogram, BuildError> {
    try_build_equi(data, buckets, Strategy::Area, "Equi-Area")
}

/// Fallible counterpart of [`build_equi_count`].
pub fn try_build_equi_count(
    data: &Dataset,
    buckets: usize,
) -> Result<SpatialHistogram, BuildError> {
    try_build_equi(data, buckets, Strategy::Count, "Equi-Count")
}

fn try_build_equi(
    data: &Dataset,
    buckets: usize,
    strategy: Strategy,
    name: &str,
) -> Result<SpatialHistogram, BuildError> {
    if buckets == 0 {
        return Err(BuildError::ZeroBucketBudget);
    }
    if data.is_empty() {
        return Err(BuildError::EmptyDataset);
    }
    if !data.stats().mbr.is_finite() {
        return Err(BuildError::NonFiniteMbr);
    }
    Ok(build_equi(data, buckets, strategy, name))
}

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    Area,
    Count,
}

struct BuildBucket {
    members: Vec<u32>,
    /// MBR over the member *rectangles* (not just centres).
    mbr: Rect,
    splittable: bool,
}

impl BuildBucket {
    fn new(members: Vec<u32>, rects: &[Rect]) -> BuildBucket {
        let mbr = mbr_of(members.iter().map(|&i| rects[i as usize]))
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        BuildBucket {
            splittable: members.len() >= 2,
            members,
            mbr,
        }
    }
}

fn build_equi(data: &Dataset, buckets: usize, strategy: Strategy, name: &str) -> SpatialHistogram {
    assert!(buckets >= 1, "need at least one bucket");
    let mut build_clock = minskew_obs::Stopwatch::start();
    let rects = data.rects();
    if rects.is_empty() {
        return SpatialHistogram::from_parts(name, vec![], 0, ExtensionRule::default());
    }
    let centers: Vec<Point> = rects.iter().map(Rect::center).collect();
    let mut parts = vec![BuildBucket::new((0..rects.len() as u32).collect(), rects)];

    while parts.len() < buckets {
        let candidate = match strategy {
            Strategy::Area => parts
                .iter()
                .enumerate()
                .filter(|(_, b)| b.splittable)
                .max_by(|(_, a), (_, b)| {
                    let la = a.mbr.side(a.mbr.longest_axis());
                    let lb = b.mbr.side(b.mbr.longest_axis());
                    la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i),
            Strategy::Count => parts
                .iter()
                .enumerate()
                .filter(|(_, b)| b.splittable)
                .max_by_key(|(_, b)| b.members.len())
                .map(|(i, _)| i),
        };
        let Some(i) = candidate else { break };
        match try_split(&parts[i], &centers, rects, strategy) {
            Some((a, b)) => {
                parts[i] = a;
                parts.push(b);
            }
            None => parts[i].splittable = false,
        }
    }

    let input_len = rects.len();
    let buckets = parts
        .into_iter()
        .filter(|p| !p.members.is_empty())
        .map(|p| finalize(&p, rects))
        .collect();
    let hist = SpatialHistogram::from_parts(name, buckets, input_len, ExtensionRule::default());
    crate::buildobs::record_build(&hist, build_clock.lap());
    hist
}

fn finalize(p: &BuildBucket, rects: &[Rect]) -> Bucket {
    let n = p.members.len() as f64;
    let mut sum_w = 0.0;
    let mut sum_h = 0.0;
    for &i in &p.members {
        sum_w += rects[i as usize].width();
        sum_h += rects[i as usize].height();
    }
    Bucket {
        mbr: p.mbr,
        count: n,
        avg_width: sum_w / n,
        avg_height: sum_h / n,
    }
}

fn try_split(
    bucket: &BuildBucket,
    centers: &[Point],
    rects: &[Rect],
    strategy: Strategy,
) -> Option<(BuildBucket, BuildBucket)> {
    let axes: [Axis; 2] = match strategy {
        // Equi-Area: longest MBR side first, the other as fallback.
        Strategy::Area => {
            let first = bucket.mbr.longest_axis();
            [first, first.other()]
        }
        // Equi-Count: higher projected (distinct-centre) count first. On
        // continuous data the distinct counts almost always tie (every
        // centre is unique), so ties fall back to the larger centre spread —
        // otherwise the technique would degenerate into always-X splits.
        Strategy::Count => {
            let dx = distinct_coords(bucket, centers, Axis::X);
            let dy = distinct_coords(bucket, centers, Axis::Y);
            match dx.cmp(&dy) {
                std::cmp::Ordering::Greater => [Axis::X, Axis::Y],
                std::cmp::Ordering::Less => [Axis::Y, Axis::X],
                std::cmp::Ordering::Equal => {
                    let spread = |axis: Axis| {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for &i in &bucket.members {
                            let c = centers[i as usize].coord(axis);
                            lo = lo.min(c);
                            hi = hi.max(c);
                        }
                        hi - lo
                    };
                    if spread(Axis::X) >= spread(Axis::Y) {
                        [Axis::X, Axis::Y]
                    } else {
                        [Axis::Y, Axis::X]
                    }
                }
            }
        }
    };
    for axis in axes {
        let threshold = match strategy {
            Strategy::Area => Some(midpoint(bucket, axis)),
            Strategy::Count => median_gap(bucket, centers, axis),
        };
        if let Some(t) = threshold {
            let (lo, hi): (Vec<u32>, Vec<u32>) = bucket
                .members
                .iter()
                .partition(|&&i| centers[i as usize].coord(axis) < t);
            if !lo.is_empty() && !hi.is_empty() {
                return Some((BuildBucket::new(lo, rects), BuildBucket::new(hi, rects)));
            }
        }
    }
    None
}

fn midpoint(bucket: &BuildBucket, axis: Axis) -> f64 {
    (bucket.mbr.lo.coord(axis) + bucket.mbr.hi.coord(axis)) / 2.0
}

fn distinct_coords(bucket: &BuildBucket, centers: &[Point], axis: Axis) -> usize {
    let mut coords: Vec<f64> = bucket
        .members
        .iter()
        .map(|&i| centers[i as usize].coord(axis))
        .collect();
    coords.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    1 + coords.windows(2).filter(|w| w[0] != w[1]).count()
}

/// Finds a split threshold near the member median along `axis` such that
/// both halves are non-empty; `None` when every centre shares the same
/// coordinate.
fn median_gap(bucket: &BuildBucket, centers: &[Point], axis: Axis) -> Option<f64> {
    let mut coords: Vec<f64> = bucket
        .members
        .iter()
        .map(|&i| centers[i as usize].coord(axis))
        .collect();
    coords.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = coords.len();
    let mid = n / 2;
    // Walk outward from the middle to the nearest position where adjacent
    // coordinates differ; the threshold between them separates the bucket.
    for d in 0..n {
        for pos in [mid.checked_sub(d), Some(mid + d)].into_iter().flatten() {
            if pos >= 1 && pos < n && coords[pos - 1] != coords[pos] {
                return Some((coords[pos - 1] + coords[pos]) / 2.0);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialEstimator;
    use minskew_datagen::{charminar_with, uniform_rects};

    fn space() -> Rect {
        Rect::new(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn bucket_counts_cover_input() {
        let ds = charminar_with(5_000, 1);
        for builder in [build_equi_area, build_equi_count] {
            let h = builder(&ds, 50);
            assert!(h.num_buckets() <= 50);
            assert!(h.num_buckets() > 10, "got {}", h.num_buckets());
            assert!((h.total_count() - 5_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn equi_count_balances_cardinalities() {
        let ds = uniform_rects(8_000, space(), 4.0, 4.0, 2);
        let h = build_equi_count(&ds, 64);
        assert_eq!(h.num_buckets(), 64);
        let avg = 8_000.0 / 64.0;
        for b in h.buckets() {
            assert!(
                b.count > avg * 0.4 && b.count < avg * 2.5,
                "bucket count {} far from balanced {avg}",
                b.count
            );
        }
    }

    #[test]
    fn equi_area_balances_areas_on_uniform_data() {
        let ds = uniform_rects(8_000, space(), 4.0, 4.0, 3);
        let h = build_equi_area(&ds, 64);
        assert_eq!(h.num_buckets(), 64);
        let areas: Vec<f64> = h.buckets().iter().map(|b| b.mbr.area()).collect();
        let max = areas.iter().cloned().fold(0.0, f64::max);
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        // MBR shrinking makes areas unequal, but within a small factor on
        // uniform data.
        assert!(max / min < 6.0, "area ratio {}", max / min);
    }

    #[test]
    fn equi_count_puts_more_buckets_in_dense_areas() {
        let ds = charminar_with(20_000, 4);
        let h = build_equi_count(&ds, 50);
        // Count buckets whose centre is within 2000 of a corner of the
        // 10000x10000 space vs the rest.
        let near_corner = h
            .buckets()
            .iter()
            .filter(|b| {
                let c = b.mbr.center();
                let dx = c.x.min(10_000.0 - c.x);
                let dy = c.y.min(10_000.0 - c.y);
                dx < 2_000.0 && dy < 2_000.0
            })
            .count();
        assert!(
            near_corner * 2 > h.num_buckets(),
            "only {near_corner}/{} buckets near corners",
            h.num_buckets()
        );
    }

    #[test]
    fn identical_rects_stop_early_without_looping() {
        let rects = vec![Rect::new(5.0, 5.0, 6.0, 6.0); 100];
        let ds = Dataset::new(rects);
        for builder in [build_equi_area, build_equi_count] {
            let h = builder(&ds, 16);
            assert_eq!(h.num_buckets(), 1, "indivisible data: one bucket");
            assert_eq!(h.total_count(), 100.0);
        }
    }

    #[test]
    fn estimates_beat_uniform_on_skewed_data() {
        let ds = charminar_with(10_000, 5);
        let uni = crate::build_uniform(&ds);
        let ea = build_equi_area(&ds, 100);
        let ec = build_equi_count(&ds, 100);
        // Query a dense corner; grouped techniques must be much closer.
        let q = Rect::new(0.0, 0.0, 1_200.0, 1_200.0);
        let actual = ds.count_intersecting(&q) as f64;
        let err = |e: f64| (e - actual).abs() / actual;
        assert!(err(ea.estimate_count(&q)) < err(uni.estimate_count(&q)));
        assert!(err(ec.estimate_count(&q)) < err(uni.estimate_count(&q)));
    }

    #[test]
    fn empty_dataset_yields_empty_histogram() {
        let ds = Dataset::new(vec![]);
        assert_eq!(build_equi_area(&ds, 10).num_buckets(), 0);
        assert_eq!(build_equi_count(&ds, 10).num_buckets(), 0);
    }

    #[test]
    fn single_bucket_request_is_uniform_like() {
        let ds = uniform_rects(500, space(), 4.0, 4.0, 6);
        let h = build_equi_area(&ds, 1);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.buckets()[0].count, 500.0);
    }
}
