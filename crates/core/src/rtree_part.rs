//! R-tree index-based grouping (§3.4): histogram buckets from the MBRs of
//! R\*-tree internal nodes.

use minskew_data::Dataset;
use minskew_rtree::{RStarTree, RTreeConfig};

use crate::error::BuildError;
use crate::{Bucket, ExtensionRule, SpatialHistogram};

/// How the underlying R\*-tree is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RTreeBuildMethod {
    /// Repeated R\*-insertion — the paper's method (Table 1 measures it),
    /// and the default.
    #[default]
    Insertion,
    /// Sort-Tile-Recursive bulk loading: much faster, slab-shaped nodes.
    StrBulk,
    /// Hilbert-curve packing: fast *and* distribution-aware — the kind of
    /// construction the paper's \[TS96\] reference speculates should yield
    /// partitions "more conducive to selectivity estimation".
    HilbertBulk,
}

/// Options for the R-tree partitioning technique.
#[derive(Debug, Clone, Copy)]
pub struct RTreePartitioningOptions {
    /// Node capacity of the underlying R\*-tree. Smaller capacities give a
    /// finer-grained frontier and therefore bucket counts closer to the
    /// quota — the knob the paper describes tweaking.
    pub max_entries: usize,
    /// Tree-construction method.
    pub method: RTreeBuildMethod,
}

impl Default for RTreePartitioningOptions {
    fn default() -> RTreePartitioningOptions {
        RTreePartitioningOptions {
            max_entries: 16,
            method: RTreeBuildMethod::Insertion,
        }
    }
}

/// Builds the *R-Tree* partitioning: inserts every rectangle into an
/// R\*-tree, then cuts the tree into at most `buckets` subtrees and exports
/// each subtree's MBR and aggregates as a bucket.
///
/// As the paper notes, the technique often produces *fewer* buckets than its
/// quota because the frontier can only grow in whole-node steps; the
/// histogram reports its true size via
/// [`SpatialHistogram::num_buckets`].
pub fn build_rtree_partitioning(
    data: &Dataset,
    buckets: usize,
    options: RTreePartitioningOptions,
) -> SpatialHistogram {
    assert!(buckets >= 1, "need at least one bucket");
    let config = RTreeConfig::with_max_entries(options.max_entries);
    build_rtree_partitioning_with(data, buckets, options, config)
}

/// Fallible counterpart of [`build_rtree_partitioning`].
///
/// # Errors
///
/// * [`BuildError::ZeroBucketBudget`] — `buckets == 0`.
/// * [`BuildError::EmptyDataset`] — no input rectangles.
/// * [`BuildError::InvalidConfig`] — `options.max_entries < 4` (the R\*-tree
///   node-capacity floor).
pub fn try_build_rtree_partitioning(
    data: &Dataset,
    buckets: usize,
    options: RTreePartitioningOptions,
) -> Result<SpatialHistogram, BuildError> {
    if buckets == 0 {
        return Err(BuildError::ZeroBucketBudget);
    }
    if data.is_empty() {
        return Err(BuildError::EmptyDataset);
    }
    if !data.stats().mbr.is_finite() {
        return Err(BuildError::NonFiniteMbr);
    }
    let config = RTreeConfig::try_with_max_entries(options.max_entries)
        .map_err(|e| BuildError::InvalidConfig(e.to_string()))?;
    Ok(build_rtree_partitioning_with(
        data, buckets, options, config,
    ))
}

/// Fallible counterpart of [`build_rtree_partitioning_default`].
pub fn try_build_rtree_partitioning_default(
    data: &Dataset,
    buckets: usize,
) -> Result<SpatialHistogram, BuildError> {
    try_build_rtree_partitioning(data, buckets, RTreePartitioningOptions::default())
}

fn build_rtree_partitioning_with(
    data: &Dataset,
    buckets: usize,
    options: RTreePartitioningOptions,
    config: RTreeConfig,
) -> SpatialHistogram {
    let mut build_clock = minskew_obs::Stopwatch::start();
    let items = || {
        data.rects()
            .iter()
            .map(|&r| minskew_rtree::Item::new(r, ()))
            .collect::<Vec<_>>()
    };
    let tree: RStarTree<()> = match options.method {
        RTreeBuildMethod::Insertion => {
            let mut t = RStarTree::new(config);
            for &r in data.rects() {
                t.insert(r, ());
            }
            t
        }
        RTreeBuildMethod::StrBulk => RStarTree::bulk_load(config, items()),
        RTreeBuildMethod::HilbertBulk => RStarTree::bulk_load_hilbert(config, items()),
    };
    let summaries = tree.partition_frontier(buckets);
    let out = summaries
        .into_iter()
        .filter(|s| s.count > 0)
        .map(|s| Bucket {
            mbr: s.mbr,
            count: s.count as f64,
            avg_width: s.sum_width / s.count as f64,
            avg_height: s.sum_height / s.count as f64,
        })
        .collect();
    let hist = SpatialHistogram::from_parts("R-Tree", out, data.len(), ExtensionRule::default());
    crate::buildobs::record_build(&hist, build_clock.lap());
    hist
}

/// Convenience wrapper using default options.
pub fn build_rtree_partitioning_default(data: &Dataset, buckets: usize) -> SpatialHistogram {
    build_rtree_partitioning(data, buckets, RTreePartitioningOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialEstimator;
    use minskew_datagen::{charminar_with, uniform_rects};
    use minskew_geom::Rect;

    #[test]
    fn covers_input_and_respects_quota() {
        let ds = charminar_with(4_000, 1);
        for method in [
            RTreeBuildMethod::Insertion,
            RTreeBuildMethod::StrBulk,
            RTreeBuildMethod::HilbertBulk,
        ] {
            let h = build_rtree_partitioning(
                &ds,
                64,
                RTreePartitioningOptions {
                    method,
                    ..Default::default()
                },
            );
            assert!(h.num_buckets() <= 64);
            assert!(h.num_buckets() >= 8, "got {} buckets", h.num_buckets());
            assert!((h.total_count() - 4_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn beats_uniform_on_skewed_data() {
        let ds = charminar_with(8_000, 2);
        let uni = crate::build_uniform(&ds);
        let h = build_rtree_partitioning_default(&ds, 100);
        let q = Rect::new(0.0, 0.0, 1_500.0, 1_500.0);
        let actual = ds.count_intersecting(&q) as f64;
        let err = |e: f64| (e - actual).abs() / actual.max(1.0);
        assert!(
            err(h.estimate_count(&q)) < err(uni.estimate_count(&q)),
            "rtree {} vs uniform {}",
            err(h.estimate_count(&q)),
            err(uni.estimate_count(&q))
        );
    }

    #[test]
    fn reasonable_on_uniform_data() {
        let ds = uniform_rects(5_000, Rect::new(0.0, 0.0, 1000.0, 1000.0), 5.0, 5.0, 3);
        let h = build_rtree_partitioning_default(&ds, 50);
        let q = Rect::new(100.0, 100.0, 400.0, 400.0);
        let actual = ds.count_intersecting(&q) as f64;
        let e = h.estimate_count(&q);
        assert!((e - actual).abs() / actual < 0.35, "est {e} vs {actual}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = Dataset::new(vec![]);
        let h = build_rtree_partitioning_default(&empty, 10);
        assert_eq!(h.num_buckets(), 0);
        let one = Dataset::new(vec![Rect::new(0.0, 0.0, 1.0, 1.0)]);
        let h = build_rtree_partitioning_default(&one, 10);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.total_count(), 1.0);
    }
}
