//! Spatial selectivity estimators: the paper's Min-Skew technique and every
//! baseline it is evaluated against.
//!
//! A selectivity estimator summarises a rectangle dataset in a few hundred
//! bytes and answers "how many input rectangles does this query intersect?"
//! without touching the data. This crate implements the complete technique
//! spectrum of *Acharya, Poosala, Ramaswamy — Selectivity Estimation in
//! Spatial Databases (SIGMOD 1999)*:
//!
//! | Technique | Constructor | Paper section |
//! |---|---|---|
//! | Uniform (single bucket) | [`build_uniform`] | §3.1 |
//! | Equi-Area BSP | [`build_equi_area`] | §3.3 |
//! | Equi-Count BSP | [`build_equi_count`] | §3.3 |
//! | R-tree index partitioning | [`build_rtree_partitioning`] | §3.4 |
//! | Sampling | [`SamplingEstimator`] | §5.3 |
//! | Fractal (Belussi–Faloutsos) | [`FractalEstimator`] | §5.3 |
//! | **Min-Skew** | [`MinSkewBuilder`] | §4.1, §5.6 |
//! | Uniform grid (extension) | [`build_grid`] | — (equi-width ablation baseline) |
//!
//! All bucket-based techniques share the [`SpatialHistogram`] estimator: a
//! flat set of [`Bucket`]s, each storing the paper's eight-word summary
//! (bounding box, rectangle count, average width/height), queried under the
//! per-bucket uniformity assumption of §3.1/§3.2. What distinguishes the
//! techniques is only *how the buckets are chosen* — which is exactly the
//! paper's framing of the problem.
//!
//! # Quickstart
//!
//! ```
//! use minskew_core::{MinSkewBuilder, SpatialEstimator};
//! use minskew_datagen::charminar_with;
//! use minskew_geom::Rect;
//!
//! let data = charminar_with(5_000, 42);
//! let hist = MinSkewBuilder::new(50).regions(2_500).build(&data);
//! let query = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
//! let est = hist.estimate_count(&query);
//! let actual = data.count_intersecting(&query) as f64;
//! // The corner is dense; the estimate lands in the right ballpark.
//! assert!(est > actual * 0.5 && est < actual * 2.0);
//! ```

#![warn(missing_docs)]
// The explicit-SIMD kernel filter (`simd` feature) is the one sanctioned
// use of `unsafe` in this crate; everything else stays forbidden, and even
// under the feature `unsafe` is denied except where the kernel module
// allows it with SAFETY comments.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod bucket;
mod buildobs;
mod codec;
mod diagnostics;
mod equi;
pub mod error;
mod fractal;
mod gridhist;
mod histogram;
mod index;
mod kernel;
mod maintenance;
mod minskew;
mod morton;
mod optimal;
mod refine;
mod rtree_part;
mod sampling;
mod shard;
pub mod snapshot;
mod uniform;

pub use bucket::{Bucket, ExtensionRule};
pub use codec::CodecError;
pub use diagnostics::HistogramDiagnostics;
pub use equi::{build_equi_area, build_equi_count, try_build_equi_area, try_build_equi_count};
pub use error::{BuildError, EstimateError};
pub use fractal::FractalEstimator;
pub use gridhist::{build_grid, try_build_grid};
pub use histogram::{EstimateExplain, ServingFootprint, SpatialHistogram};
pub use index::{BucketIndex, CandidateSet, IndexScratch};
pub use kernel::{
    simd_level, BucketPlane, ExplainTerm, KernelExplain, PruneStats, QueryPrep, TermBuf,
};
pub use minskew::{MinSkewBuildTrace, MinSkewBuilder, MinSkewDetail, SplitEvent, SplitStrategy};
pub use morton::{morton_key, morton_schedule};
pub use optimal::{build_optimal_bsp, optimal_bsp_skew, try_build_optimal_bsp, OptimalBsp};
pub use refine::{RefineObservation, RefineOptions, RefineReport};
pub use rtree_part::{
    build_rtree_partitioning, build_rtree_partitioning_default, try_build_rtree_partitioning,
    try_build_rtree_partitioning_default, RTreeBuildMethod, RTreePartitioningOptions,
};
pub use sampling::SamplingEstimator;
pub use shard::{ShardInfo, ShardScratch, ShardedHistogram, MAX_SHARDS};
pub use snapshot::{
    verify_snapshot, FormatVersion, SnapshotError, SnapshotInfo, MAX_SNAPSHOT_BUCKETS,
};
pub use uniform::{build_uniform, try_build_uniform};

use minskew_geom::Rect;

/// A query-result-size estimator over a summarised spatial dataset.
///
/// Implementations answer point queries too: a point query is simply a
/// degenerate rectangle (`lo == hi`), per the paper's problem formulation.
pub trait SpatialEstimator {
    /// Estimated number of input rectangles intersecting `query`
    /// (an estimate of `|Q|`). Always finite and non-negative.
    fn estimate_count(&self, query: &Rect) -> f64;

    /// Number of rectangles in the summarised input (`N`).
    fn input_len(&self) -> usize;

    /// Technique name as used in the paper's plots.
    fn name(&self) -> &str;

    /// Approximate size of the summary in bytes, for space-budget
    /// accounting (§5.4 of the paper).
    ///
    /// This is the **serving footprint**: everything the estimator keeps
    /// resident to answer queries, including derived acceleration
    /// structures. For the paper's space-budget comparisons use
    /// [`SpatialEstimator::summary_bytes`].
    fn size_bytes(&self) -> usize;

    /// Size of the *summary alone* under the paper's accounting (§5.4) —
    /// what competes for the space budget in the accuracy/space plots.
    /// Defaults to [`SpatialEstimator::size_bytes`]; estimators that cache
    /// derived serving structures override it to exclude them.
    fn summary_bytes(&self) -> usize {
        self.size_bytes()
    }

    /// Estimated selectivity `|Q| / N` (zero for an empty input).
    fn estimate_selectivity(&self, query: &Rect) -> f64 {
        if self.input_len() == 0 {
            0.0
        } else {
            self.estimate_count(query) / self.input_len() as f64
        }
    }
}
