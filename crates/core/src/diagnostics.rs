//! Histogram introspection for operators and tests.
//!
//! A DBA looking at optimizer statistics wants to know how the budget was
//! spent: how unbalanced the buckets are, how much area they cover, whether
//! a few mega-buckets dominate. [`HistogramDiagnostics`] summarises exactly
//! that, and its `Display` output is what a `\d+ stats`-style admin command
//! would print.

use crate::{SpatialEstimator, SpatialHistogram};

/// Summary statistics over a histogram's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDiagnostics {
    /// Number of buckets.
    pub buckets: usize,
    /// Total rectangles represented.
    pub total_count: f64,
    /// Smallest / mean / largest bucket cardinality.
    pub count_min: f64,
    /// Mean bucket cardinality.
    pub count_mean: f64,
    /// Largest bucket cardinality.
    pub count_max: f64,
    /// Fraction of all rectangles held by the largest 10% of buckets —
    /// a quick imbalance indicator (1.0/10 ≈ balanced).
    pub top_decile_share: f64,
    /// Smallest bucket area.
    pub area_min: f64,
    /// Mean bucket area.
    pub area_mean: f64,
    /// Largest bucket area.
    pub area_max: f64,
    /// Summary footprint in bytes (the paper's §5.4 accounting; serving
    /// caches are reported by [`SpatialHistogram::serving_footprint`]).
    pub size_bytes: usize,
}

impl SpatialHistogram {
    /// Computes bucket-level diagnostics. Returns `None` for an empty
    /// histogram (nothing to summarise).
    pub fn diagnostics(&self) -> Option<HistogramDiagnostics> {
        let bs = self.buckets();
        if bs.is_empty() {
            return None;
        }
        let n = bs.len();
        let mut counts: Vec<f64> = bs.iter().map(|b| b.count).collect();
        counts.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        let total: f64 = counts.iter().sum();
        let decile = (n.div_ceil(10)).max(1);
        let top_decile: f64 = counts.iter().rev().take(decile).sum();
        let areas: Vec<f64> = bs.iter().map(|b| b.mbr.area()).collect();
        Some(HistogramDiagnostics {
            buckets: n,
            total_count: total,
            count_min: counts[0],
            count_mean: total / n as f64,
            count_max: counts[n - 1],
            top_decile_share: if total > 0.0 { top_decile / total } else { 0.0 },
            area_min: areas.iter().cloned().fold(f64::INFINITY, f64::min),
            area_mean: areas.iter().sum::<f64>() / n as f64,
            area_max: areas.iter().cloned().fold(0.0, f64::max),
            size_bytes: self.summary_bytes(),
        })
    }
}

impl std::fmt::Display for HistogramDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} buckets over {:.0} rects ({} B)",
            self.buckets, self.total_count, self.size_bytes
        )?;
        writeln!(
            f,
            "  counts: min {:.0} / mean {:.1} / max {:.0}  (top decile holds {:.0}%)",
            self.count_min,
            self.count_mean,
            self.count_max,
            self.top_decile_share * 100.0
        )?;
        write!(
            f,
            "  areas:  min {:.3e} / mean {:.3e} / max {:.3e}",
            self.area_min, self.area_mean, self.area_max
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{build_equi_count, build_uniform, MinSkewBuilder};
    use minskew_datagen::{charminar_with, uniform_rects};
    use minskew_geom::Rect;

    #[test]
    fn diagnostics_match_hand_computation() {
        let ds = uniform_rects(1_000, Rect::new(0.0, 0.0, 100.0, 100.0), 1.0, 1.0, 1);
        let h = build_uniform(&ds);
        let d = h.diagnostics().unwrap();
        assert_eq!(d.buckets, 1);
        assert_eq!(d.total_count, 1_000.0);
        assert_eq!(d.count_min, 1_000.0);
        assert_eq!(d.count_max, 1_000.0);
        assert_eq!(d.top_decile_share, 1.0); // one bucket = the whole decile
        assert_eq!(d.size_bytes, 64);
    }

    #[test]
    fn equi_count_is_balanced_min_skew_is_not() {
        let ds = charminar_with(10_000, 2);
        let ec = build_equi_count(&ds, 64).diagnostics().unwrap();
        let ms = MinSkewBuilder::new(64)
            .regions(2_500)
            .build(&ds)
            .diagnostics()
            .unwrap();
        // Equi-Count balances cardinalities by construction; Min-Skew
        // deliberately concentrates buckets where density varies, leaving
        // big uniform buckets elsewhere.
        assert!(ec.count_max / ec.count_min.max(1.0) < ms.count_max / ms.count_min.max(1.0));
        assert!(ec.top_decile_share < ms.top_decile_share);
    }

    #[test]
    fn display_is_readable() {
        let ds = charminar_with(500, 3);
        let h = MinSkewBuilder::new(10).regions(400).build(&ds);
        let text = h.diagnostics().unwrap().to_string();
        assert!(text.contains("buckets over"));
        assert!(text.contains("top decile"));
    }

    #[test]
    fn empty_histogram_has_no_diagnostics() {
        let h = build_uniform(&minskew_data::Dataset::new(vec![]));
        assert!(h.diagnostics().is_none());
    }
}
