//! Crash-safe atomic file installation.
//!
//! The snapshot subsystem's durability contract is that a reader never
//! observes a half-written file: after a crash at *any* point, the
//! destination path holds either the complete previous content or the
//! complete new content. This module implements the classic protocol that
//! guarantees it on POSIX filesystems:
//!
//! 1. write the payload to a fresh temp file **in the destination
//!    directory** (same filesystem, so the rename below is atomic),
//! 2. `fsync` the temp file (data hits the medium before the name does),
//! 3. `rename` it over the destination (the atomic commit point),
//! 4. `fsync` the directory (the new name itself is durable).
//!
//! Transient I/O errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
//! retried with bounded exponential backoff; each retry restarts the whole
//! protocol from a fresh temp file so no attempt ever builds on a
//! half-written one. Every failure path removes its temp file and reports a
//! typed [`AtomicWriteError`] naming the protocol stage that failed.
//!
//! The protocol's filesystem operations run through the [`AtomicFile`]
//! seam so the fault-injection suite can make any stage fail
//! deterministically ([`write_atomic_chaos`]) and prove both the bounded
//! retry and the no-torn-destination guarantee.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::fault::{FaultInjector, FaultKind};

/// Stage of the atomic-write protocol, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStage {
    /// Creating or writing the temp file.
    WriteTemp,
    /// Flushing the temp file to the medium (`fsync`).
    SyncTemp,
    /// Renaming the temp file over the destination.
    Rename,
    /// Flushing the directory entry (`fsync` on the parent directory).
    SyncDir,
}

impl std::fmt::Display for WriteStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WriteStage::WriteTemp => "write-temp",
            WriteStage::SyncTemp => "sync-temp",
            WriteStage::Rename => "rename",
            WriteStage::SyncDir => "sync-dir",
        })
    }
}

/// A failed atomic write: which stage failed, after how many attempts.
#[derive(Debug)]
pub struct AtomicWriteError {
    /// Protocol stage that failed on the last attempt.
    pub stage: WriteStage,
    /// Attempts made (1 = no retry happened).
    pub attempts: u32,
    /// The underlying I/O error from the last attempt.
    pub source: io::Error,
}

impl std::fmt::Display for AtomicWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "atomic write failed at {} after {} attempt(s): {}",
            self.stage, self.attempts, self.source
        )
    }
}

impl std::error::Error for AtomicWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Retry policy for transient I/O errors.
#[derive(Debug, Clone, Copy)]
pub struct AtomicWriteOptions {
    /// Maximum protocol attempts (1 = no retry). Default 4.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry. Default 1 ms.
    pub initial_backoff: Duration,
}

impl Default for AtomicWriteOptions {
    fn default() -> AtomicWriteOptions {
        AtomicWriteOptions {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(1),
        }
    }
}

/// Returns `true` for error kinds worth retrying: the operation may succeed
/// on a fresh attempt without anything else changing.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The filesystem seam the protocol runs through. The default
/// implementation is the real filesystem; the chaos implementation makes
/// chosen stages fail deterministically.
pub trait AtomicFile {
    /// Creates `tmp` and writes `bytes` into it completely.
    fn write_temp(&mut self, tmp: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `tmp`'s data to the medium.
    fn sync_temp(&mut self, tmp: &Path) -> io::Result<()>;
    /// Atomically renames `tmp` over `dst`.
    fn rename(&mut self, tmp: &Path, dst: &Path) -> io::Result<()>;
    /// Flushes the directory entry for `dir`.
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct RealFile;

impl AtomicFile for RealFile {
    fn write_temp(&mut self, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.flush()
    }

    fn sync_temp(&mut self, tmp: &Path) -> io::Result<()> {
        fs::File::open(tmp)?.sync_all()
    }

    fn rename(&mut self, tmp: &Path, dst: &Path) -> io::Result<()> {
        fs::rename(tmp, dst)
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        // Directories cannot be opened for sync on every platform; treat
        // "cannot open the directory" as best-effort there, but a failed
        // sync on an open handle is a real error.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// Process-unique temp-name counter: concurrent writers in one process must
/// never collide on a temp path.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(dst: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = dst.file_name().unwrap_or_default().to_string_lossy();
    dst.with_file_name(format!(".{name}.tmp-{}-{seq}", std::process::id()))
}

/// Atomically installs `bytes` at `path` with the default retry policy.
///
/// See the module docs for the protocol and its guarantees.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), AtomicWriteError> {
    write_atomic_with(path, bytes, &AtomicWriteOptions::default())
}

/// Atomically installs `bytes` at `path` with an explicit retry policy.
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    options: &AtomicWriteOptions,
) -> Result<(), AtomicWriteError> {
    write_atomic_via(&mut RealFile, path, bytes, options)
}

/// The protocol itself, over any [`AtomicFile`] implementation.
pub fn write_atomic_via(
    fs_ops: &mut dyn AtomicFile,
    path: &Path,
    bytes: &[u8],
    options: &AtomicWriteOptions,
) -> Result<(), AtomicWriteError> {
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let max_attempts = options.max_attempts.max(1);
    let mut backoff = options.initial_backoff;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let tmp = temp_path_for(path);
        let result = run_protocol(fs_ops, &tmp, path, &dir, bytes);
        match result {
            Ok(()) => return Ok(()),
            Err((stage, e)) => {
                // Whatever happened, the temp file must not leak. After a
                // successful rename the temp name no longer exists, so this
                // only ever removes an orphan.
                fs::remove_file(&tmp).ok();
                if attempt < max_attempts && is_transient(&e) {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                    continue;
                }
                return Err(AtomicWriteError {
                    stage,
                    attempts: attempt,
                    source: e,
                });
            }
        }
    }
}

/// One full pass of the four-stage protocol.
fn run_protocol(
    fs_ops: &mut dyn AtomicFile,
    tmp: &Path,
    dst: &Path,
    dir: &Path,
    bytes: &[u8],
) -> Result<(), (WriteStage, io::Error)> {
    fs_ops
        .write_temp(tmp, bytes)
        .map_err(|e| (WriteStage::WriteTemp, e))?;
    fs_ops
        .sync_temp(tmp)
        .map_err(|e| (WriteStage::SyncTemp, e))?;
    fs_ops
        .rename(tmp, dst)
        .map_err(|e| (WriteStage::Rename, e))?;
    fs_ops.sync_dir(dir).map_err(|e| (WriteStage::SyncDir, e))
}

/// A chaos [`AtomicFile`]: the real filesystem with one deterministic fault
/// kind armed. Used by the recovery differential suite to prove that
/// mid-protocol failures never tear the destination and that the bounded
/// retry heals transient ones.
pub struct ChaosFile {
    inner: RealFile,
    kind: FaultKind,
    injector: FaultInjector,
    /// How many more times the armed stage fails before healing. Lets one
    /// run prove "fails then succeeds on retry" and another prove "fails
    /// past the retry budget".
    failures_left: u32,
    /// Whether injected failures look transient (retryable) or permanent.
    transient: bool,
}

impl ChaosFile {
    /// Arms `kind` to fail `failures` times (deterministic in `seed`).
    ///
    /// `transient` controls the injected [`io::ErrorKind`]: transient
    /// errors engage the caller's retry loop, permanent ones abort it.
    pub fn new(kind: FaultKind, seed: u64, failures: u32, transient: bool) -> ChaosFile {
        ChaosFile {
            inner: RealFile,
            kind,
            injector: FaultInjector::new(seed),
            failures_left: failures,
            transient,
        }
    }

    fn fail(&mut self, what: &str) -> io::Error {
        let kind = if self.transient {
            io::ErrorKind::Interrupted
        } else {
            io::ErrorKind::Other
        };
        io::Error::new(kind, format!("injected fault: {what}"))
    }

    fn take_failure(&mut self) -> bool {
        if self.failures_left > 0 {
            self.failures_left -= 1;
            true
        } else {
            false
        }
    }
}

impl AtomicFile for ChaosFile {
    fn write_temp(&mut self, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.kind == FaultKind::TornWrite && self.take_failure() {
            // The torn write *happens* (a prefix lands on disk), and the
            // writer is told about it — as a crashed process's successor
            // would find it.
            let keep = if bytes.is_empty() {
                0
            } else {
                self.injector.below(bytes.len())
            };
            self.inner.write_temp(tmp, &bytes[..keep])?;
            return Err(self.fail("torn write to temp file"));
        }
        if matches!(
            self.kind,
            FaultKind::ShortReadThenError | FaultKind::EarlyEof | FaultKind::Truncate
        ) && self.take_failure()
        {
            return Err(self.fail("write failed mid-stream"));
        }
        self.inner.write_temp(tmp, bytes)
    }

    fn sync_temp(&mut self, tmp: &Path) -> io::Result<()> {
        if self.kind == FaultKind::BitFlip && self.take_failure() {
            return Err(self.fail("fsync reported failure"));
        }
        self.inner.sync_temp(tmp)
    }

    fn rename(&mut self, tmp: &Path, dst: &Path) -> io::Result<()> {
        if self.kind == FaultKind::RenameFail && self.take_failure() {
            return Err(self.fail("rename refused by filesystem"));
        }
        self.inner.rename(tmp, dst)
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }
}

/// Atomically installs `bytes` at `path` through a [`ChaosFile`] armed with
/// `kind`. Convenience wrapper for the fault-injection suites.
pub fn write_atomic_chaos(
    path: &Path,
    bytes: &[u8],
    options: &AtomicWriteOptions,
    kind: FaultKind,
    seed: u64,
    failures: u32,
    transient: bool,
) -> Result<(), AtomicWriteError> {
    let mut chaos = ChaosFile::new(kind, seed, failures, transient);
    write_atomic_via(&mut chaos, path, bytes, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minskew-atomic-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn no_temp_orphans(dir: &Path) -> bool {
        fs::read_dir(dir)
            .expect("readable")
            .filter_map(Result::ok)
            .all(|e| !e.file_name().to_string_lossy().contains(".tmp-"))
    }

    #[test]
    fn plain_write_installs_bytes() {
        let dir = tmp_dir("plain");
        let dst = dir.join("out.bin");
        write_atomic(&dst, b"hello snapshot").expect("atomic write");
        assert_eq!(fs::read(&dst).expect("readable"), b"hello snapshot");
        assert!(no_temp_orphans(&dir));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_completely() {
        let dir = tmp_dir("overwrite");
        let dst = dir.join("out.bin");
        write_atomic(&dst, &[0xAA; 1024]).expect("first");
        write_atomic(&dst, b"short new content").expect("second");
        assert_eq!(fs::read(&dst).expect("readable"), b"short new content");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_rename_failure_is_retried_to_success() {
        let dir = tmp_dir("retry");
        let dst = dir.join("out.bin");
        fs::write(&dst, b"old content").expect("seed dst");
        let opts = AtomicWriteOptions {
            max_attempts: 4,
            initial_backoff: Duration::from_micros(10),
        };
        write_atomic_chaos(
            &dst,
            b"new content",
            &opts,
            FaultKind::RenameFail,
            1,
            2,
            true,
        )
        .expect("2 transient failures < 4 attempts");
        assert_eq!(fs::read(&dst).expect("readable"), b"new content");
        assert!(no_temp_orphans(&dir));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_keep_old_content_and_report_stage() {
        let dir = tmp_dir("exhaust");
        let dst = dir.join("out.bin");
        fs::write(&dst, b"old content").expect("seed dst");
        let opts = AtomicWriteOptions {
            max_attempts: 3,
            initial_backoff: Duration::from_micros(10),
        };
        let err = write_atomic_chaos(
            &dst,
            b"new content",
            &opts,
            FaultKind::RenameFail,
            1,
            99,
            true,
        )
        .expect_err("failures outlast the budget");
        assert_eq!(err.stage, WriteStage::Rename);
        assert_eq!(err.attempts, 3);
        // The commit point was never reached: old content fully intact.
        assert_eq!(fs::read(&dst).expect("readable"), b"old content");
        assert!(no_temp_orphans(&dir), "failed attempts must clean up");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_errors_abort_without_retry() {
        let dir = tmp_dir("permanent");
        let dst = dir.join("out.bin");
        let opts = AtomicWriteOptions::default();
        let err = write_atomic_chaos(&dst, b"x", &opts, FaultKind::RenameFail, 1, 99, false)
            .expect_err("permanent failure");
        assert_eq!(err.attempts, 1, "permanent errors must not be retried");
        assert!(!dst.exists(), "destination never appeared");
        assert!(no_temp_orphans(&dir));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_temp_write_never_reaches_destination() {
        let dir = tmp_dir("torn");
        let dst = dir.join("out.bin");
        fs::write(&dst, b"old content").expect("seed dst");
        let opts = AtomicWriteOptions {
            max_attempts: 2,
            initial_backoff: Duration::from_micros(10),
        };
        for seed in 0..20 {
            let _ = write_atomic_chaos(
                &dst,
                &[0x5A; 4096],
                &opts,
                FaultKind::TornWrite,
                seed,
                99,
                false,
            );
            // Whether the write errored or not, the destination is never
            // the torn image: it holds old content or (on no failure) new.
            let now = fs::read(&dst).expect("readable");
            assert_eq!(now, b"old content", "seed {seed}: destination torn");
        }
        assert!(no_temp_orphans(&dir));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_parent_directory_is_reported() {
        let err = write_atomic(&PathBuf::from("/definitely/not/a/dir/out.bin"), b"x")
            .expect_err("unwritable path");
        assert_eq!(err.stage, WriteStage::WriteTemp);
    }
}
