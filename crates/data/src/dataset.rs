//! The input rectangle distribution and its summary statistics.

use minskew_geom::{mbr_of, Rect};

/// Summary statistics of a [`Dataset`], in the paper's notation.
///
/// These are exactly the aggregates the uniformity-assumption formulas of
/// §3.1 consume: `Area(T)` (the input MBR area), `TA` (summed rectangle
/// area), and the average width/height `W_avg`, `H_avg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// `N`: the number of input rectangles.
    pub n: usize,
    /// Minimum bounding rectangle of the whole input (`T`).
    pub mbr: Rect,
    /// `TA`: the sum of the areas of all input rectangles.
    pub total_area: f64,
    /// `W_avg`: average rectangle width.
    pub avg_width: f64,
    /// `H_avg`: average rectangle height.
    pub avg_height: f64,
}

/// An immutable collection of input rectangles (the distribution `T`).
///
/// Construction computes the summary statistics in a single pass; the
/// rectangle storage is kept so that partitioners can make their
/// (one or more) sweeps over the data and so that exact selectivities can be
/// computed for evaluation.
///
/// # Examples
///
/// ```
/// use minskew_geom::Rect;
/// use minskew_data::Dataset;
///
/// let ds = Dataset::new(vec![
///     Rect::new(0.0, 0.0, 2.0, 2.0),
///     Rect::new(4.0, 4.0, 6.0, 8.0),
/// ]);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.stats().mbr, Rect::new(0.0, 0.0, 6.0, 8.0));
/// assert_eq!(ds.stats().total_area, 4.0 + 8.0);
/// assert_eq!(ds.count_intersecting(&Rect::new(1.0, 1.0, 5.0, 5.0)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    rects: Vec<Rect>,
    stats: DatasetStats,
}

impl Dataset {
    /// Builds a dataset from its rectangles, computing summary statistics.
    ///
    /// Non-finite rectangles are rejected with a panic: they would poison
    /// every downstream aggregate. (Input validation belongs at load time,
    /// not in every estimator.)
    ///
    /// # Panics
    ///
    /// Panics if any rectangle has a non-finite coordinate.
    pub fn new(rects: Vec<Rect>) -> Dataset {
        assert!(
            rects.iter().all(Rect::is_finite),
            "dataset rectangles must have finite coordinates"
        );
        let n = rects.len();
        let mbr = mbr_of(rects.iter().copied()).unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        let mut total_area = 0.0;
        let mut sum_w = 0.0;
        let mut sum_h = 0.0;
        for r in &rects {
            total_area += r.area();
            sum_w += r.width();
            sum_h += r.height();
        }
        let denom = n.max(1) as f64;
        Dataset {
            rects,
            stats: DatasetStats {
                n,
                mbr,
                total_area,
                avg_width: sum_w / denom,
                avg_height: sum_h / denom,
            },
        }
    }

    /// Number of rectangles (`N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Returns `true` if the dataset holds no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The input rectangles.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Precomputed summary statistics.
    #[inline]
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Exact result size of a range query: the number of input rectangles
    /// with a non-empty (closed) intersection with `query`.
    ///
    /// This is the brute-force O(N) ground truth. For large evaluation runs
    /// prefer the R\*-tree count in `minskew-rtree`, which answers the same
    /// question in roughly O(√N + k).
    pub fn count_intersecting(&self, query: &Rect) -> usize {
        self.rects.iter().filter(|r| r.intersects(query)).count()
    }

    /// Exact selectivity of a query: `|Q| / N` (zero for an empty dataset).
    pub fn selectivity(&self, query: &Rect) -> f64 {
        if self.rects.is_empty() {
            0.0
        } else {
            self.count_intersecting(query) as f64 / self.rects.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Point;

    fn sample() -> Dataset {
        Dataset::new(vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),
            Rect::new(1.0, 1.0, 3.0, 3.0),
            Rect::new(8.0, 8.0, 10.0, 10.0),
        ])
    }

    #[test]
    fn stats_are_correct() {
        let ds = sample();
        let s = ds.stats();
        assert_eq!(s.n, 3);
        assert_eq!(s.mbr, Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(s.total_area, 4.0 + 4.0 + 4.0);
        assert_eq!(s.avg_width, 2.0);
        assert_eq!(s.avg_height, 2.0);
    }

    #[test]
    fn empty_dataset_is_well_defined() {
        let ds = Dataset::new(vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.stats().n, 0);
        assert_eq!(ds.stats().avg_width, 0.0);
        assert_eq!(ds.count_intersecting(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        assert_eq!(ds.selectivity(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn exact_counting_includes_touching() {
        let ds = sample();
        // Query touching the corner of the third rectangle intersects it.
        assert_eq!(ds.count_intersecting(&Rect::new(7.0, 7.0, 8.0, 8.0)), 1);
        assert_eq!(ds.count_intersecting(&Rect::new(0.0, 0.0, 10.0, 10.0)), 3);
        assert_eq!(ds.count_intersecting(&Rect::new(4.0, 0.0, 6.0, 2.0)), 0);
    }

    #[test]
    fn point_query_counts_covering_rects() {
        let ds = sample();
        let q = Rect::from_point(Point::new(1.5, 1.5));
        assert_eq!(ds.count_intersecting(&q), 2);
        assert!((ds.selectivity(&q) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_input_rejected() {
        // Rect::new's min/max normalisation silently drops NaN, so build the
        // corrupt rect directly through the public fields.
        let bad = Rect {
            lo: Point::new(0.0, 0.0),
            hi: Point::new(f64::NAN, 1.0),
        };
        Dataset::new(vec![bad]);
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Closed-interval overlap written from the 1-D definition, without
        /// going through `Rect::intersects` — an independent oracle.
        fn overlap_1d(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> bool {
            a_lo <= b_hi && b_lo <= a_hi
        }

        /// Rects on a small integer lattice so touching edges, shared
        /// corners, and exact containment occur constantly, plus degenerate
        /// zero-width / zero-height / point rectangles (w or h = 0).
        fn lattice_rect() -> impl Strategy<Value = Rect> {
            (0i32..12, 0i32..12, 0i32..4, 0i32..4).prop_map(|(x, y, w, h)| {
                Rect::new(x as f64, y as f64, (x + w) as f64, (y + h) as f64)
            })
        }

        proptest! {
            /// `Dataset::count_intersecting` agrees with counting via the
            /// per-axis closed-interval definition, including touching-edge
            /// and point-query cases (the lattice makes ties common).
            #[test]
            fn prop_count_matches_interval_oracle(
                rects in proptest::collection::vec(lattice_rect(), 1..60),
                query in lattice_rect(),
            ) {
                let expected = rects
                    .iter()
                    .filter(|r| {
                        overlap_1d(r.lo.x, r.hi.x, query.lo.x, query.hi.x)
                            && overlap_1d(r.lo.y, r.hi.y, query.lo.y, query.hi.y)
                    })
                    .count();
                let ds = Dataset::new(rects);
                prop_assert_eq!(ds.count_intersecting(&query), expected);
                let sel = ds.selectivity(&query);
                prop_assert!((sel - expected as f64 / ds.len() as f64).abs() < 1e-12);
            }

            /// A point query at a rectangle's corner still counts it, and a
            /// query strictly outside the MBR counts nothing.
            #[test]
            fn prop_corner_point_queries_count(
                rects in proptest::collection::vec(lattice_rect(), 1..40),
                pick in 0usize..40,
            ) {
                let ds = Dataset::new(rects);
                let r = ds.rects()[pick % ds.len()];
                for corner in [
                    Point::new(r.lo.x, r.lo.y),
                    Point::new(r.hi.x, r.lo.y),
                    Point::new(r.lo.x, r.hi.y),
                    Point::new(r.hi.x, r.hi.y),
                ] {
                    let q = Rect::from_point(corner);
                    prop_assert!(ds.count_intersecting(&q) >= 1);
                }
                let mbr = ds.stats().mbr;
                let outside = Rect::new(mbr.hi.x + 1.0, mbr.hi.y + 1.0, mbr.hi.x + 2.0, mbr.hi.y + 2.0);
                prop_assert_eq!(ds.count_intersecting(&outside), 0);
            }
        }
    }
}
