//! Deterministic fault injection for robustness testing.
//!
//! The estimator stack promises to *degrade, never panic* on hostile input:
//! the codec is total over arbitrary bytes, the CSV reader maps every
//! malformed stream to an error, and the engine's statistics ladder falls
//! back rather than crashing. This module provides the machinery that
//! proves it:
//!
//! * [`FaultKind`] — the failure taxonomy: truncation, bit flips,
//!   non-finite rows, inverted-corner rows, early EOF.
//! * [`FaultInjector`] — seeded, deterministic corruption of byte buffers
//!   and CSV text; the same `(seed, kind)` pair always yields the same
//!   corruption, so failing cases replay exactly.
//! * [`ChaosReader`] — an [`io::Read`] wrapper that corrupts a stream
//!   in flight, for driving [`crate::read_rects_csv_from`].
//! * [`FaultSource`] — a [`RectSource`] wrapper that injects corrupt
//!   rectangles into sweeps, for driving histogram construction.
//!
//! Everything here is deliberately in the library (not `#[cfg(test)]`): the
//! engine crate's degradation tests and any downstream user's soak harness
//! reuse the same injector.

use std::io::{self, Read};

use minskew_geom::{Point, Rect};

use crate::{DatasetStats, RectSource};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the payload short at a pseudo-random position.
    Truncate,
    /// Flip a handful of pseudo-randomly chosen bits.
    BitFlip,
    /// Insert a row whose coordinates are NaN/infinite.
    NonFiniteRow,
    /// Insert a row with corners in descending order (readers must
    /// normalise or reject, never build an inverted rectangle).
    InvertedCornerRow,
    /// End the stream early, mid-row, as a dying disk or socket would.
    EarlyEof,
    /// A torn write: bytes up to a pseudo-random offset are intact, the
    /// tail is zeroed — the length is preserved, exactly what a
    /// partially-flushed page leaves behind.
    TornWrite,
    /// The stream yields some bytes, then fails with an I/O error (a
    /// dying disk mid-read, as opposed to [`FaultKind::EarlyEof`]'s clean
    /// end). The byte-buffer form truncates.
    ShortReadThenError,
    /// The atomic-install `rename` fails (transiently, from the retry
    /// loop's point of view). Has no byte-buffer representation —
    /// [`FaultInjector::corrupt`] returns the data unchanged; the kind is
    /// consumed by [`crate::write_atomic_chaos`].
    RenameFail,
}

impl FaultKind {
    /// Every fault kind, for exhaustive sweeps in tests.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::NonFiniteRow,
        FaultKind::InvertedCornerRow,
        FaultKind::EarlyEof,
        FaultKind::TornWrite,
        FaultKind::ShortReadThenError,
        FaultKind::RenameFail,
    ];

    /// The kinds relevant to persisted-snapshot recovery: every way a
    /// snapshot file on disk can be damaged (plus [`FaultKind::RenameFail`]
    /// for the write path).
    pub const SNAPSHOT: [FaultKind; 6] = [
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::EarlyEof,
        FaultKind::TornWrite,
        FaultKind::ShortReadThenError,
        FaultKind::RenameFail,
    ];
}

/// Deterministic seeded fault generator (splitmix64 underneath — no
/// dependency on the workspace RNG so the harness stays self-contained).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector; the same seed replays the same faults.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector { state: seed }
    }

    /// Next pseudo-random word (splitmix64).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Returns a corrupted copy of `data` exhibiting `kind`.
    ///
    /// For the row-structured kinds ([`FaultKind::NonFiniteRow`],
    /// [`FaultKind::InvertedCornerRow`]) the payload is treated as CSV text
    /// and a poisoned row is spliced in at a random line boundary; the byte
    /// kinds corrupt the raw buffer.
    pub fn corrupt(&mut self, data: &[u8], kind: FaultKind) -> Vec<u8> {
        match kind {
            FaultKind::Truncate | FaultKind::EarlyEof | FaultKind::ShortReadThenError => {
                if data.is_empty() {
                    return Vec::new();
                }
                data[..self.below(data.len())].to_vec()
            }
            FaultKind::TornWrite => {
                let mut out = data.to_vec();
                if out.is_empty() {
                    return out;
                }
                let tear = self.below(out.len());
                for b in &mut out[tear..] {
                    *b = 0;
                }
                out
            }
            FaultKind::RenameFail => data.to_vec(),
            FaultKind::BitFlip => {
                let mut out = data.to_vec();
                if out.is_empty() {
                    return out;
                }
                let flips = 1 + self.below(7);
                for _ in 0..flips {
                    let pos = self.below(out.len());
                    let bit = self.below(8);
                    out[pos] ^= 1 << bit;
                }
                out
            }
            FaultKind::NonFiniteRow => self.splice_row(data, b"nan,nan,inf,-inf\n"),
            FaultKind::InvertedCornerRow => self.splice_row(data, b"9.0,9.0,1.0,1.0\n"),
        }
    }

    /// Splices `row` in at a pseudo-random line boundary of `data`.
    fn splice_row(&mut self, data: &[u8], row: &[u8]) -> Vec<u8> {
        let boundaries: Vec<usize> = std::iter::once(0)
            .chain(
                data.iter()
                    .enumerate()
                    .filter(|&(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let at = boundaries[self.below(boundaries.len())];
        let mut out = Vec::with_capacity(data.len() + row.len());
        out.extend_from_slice(&data[..at]);
        out.extend_from_slice(row);
        out.extend_from_slice(&data[at..]);
        out
    }

    /// A corrupt rectangle matching `kind`, built through the public fields
    /// (bypassing `Rect`'s constructors exactly the way in-memory corruption
    /// would).
    ///
    /// Only meaningful for the row-level kinds; the byte-level kinds return
    /// `None` (they have no rectangle representation).
    pub fn corrupt_rect(&mut self, kind: FaultKind) -> Option<Rect> {
        match kind {
            FaultKind::NonFiniteRow => Some(Rect {
                lo: Point::new(f64::NAN, 0.0),
                hi: Point::new(1.0, f64::INFINITY),
            }),
            FaultKind::InvertedCornerRow => Some(Rect {
                lo: Point::new(9.0, 9.0),
                hi: Point::new(1.0, 1.0),
            }),
            _ => None,
        }
    }
}

/// An [`io::Read`] adapter that injects one fault into the wrapped stream.
///
/// * [`FaultKind::Truncate`] / [`FaultKind::EarlyEof`] — the stream ends
///   cleanly at a pseudo-random offset.
/// * [`FaultKind::BitFlip`] — bytes past a pseudo-random offset have a bit
///   flipped (one per ~64 bytes).
/// * Row kinds — a poisoned CSV row is emitted at a pseudo-random offset
///   before the stream resumes.
pub struct ChaosReader<R> {
    inner: R,
    kind: FaultKind,
    injector: FaultInjector,
    /// Byte offset at which the fault triggers.
    trigger: u64,
    /// Bytes read so far.
    offset: u64,
    /// Pending injected bytes (row kinds), drained before the inner stream.
    pending: Vec<u8>,
    pending_pos: usize,
    injected: bool,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner`, arming one `kind` fault somewhere in the first
    /// `horizon` bytes (deterministic in `seed`).
    pub fn new(inner: R, kind: FaultKind, seed: u64, horizon: u64) -> ChaosReader<R> {
        let mut injector = FaultInjector::new(seed);
        let trigger = if horizon == 0 {
            0
        } else {
            injector.next_u64() % horizon
        };
        ChaosReader {
            inner,
            kind,
            injector,
            trigger,
            offset: 0,
            pending: Vec::new(),
            pending_pos: 0,
            injected: false,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Drain any injected row first.
        if self.pending_pos < self.pending.len() {
            let n = (self.pending.len() - self.pending_pos).min(buf.len());
            buf[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
            self.pending_pos += n;
            return Ok(n);
        }
        if !self.injected && self.offset >= self.trigger {
            self.injected = true;
            match self.kind {
                FaultKind::Truncate | FaultKind::EarlyEof => return Ok(0),
                FaultKind::ShortReadThenError => {
                    return Err(io::Error::other("injected fault: medium failed mid-read"))
                }
                FaultKind::NonFiniteRow | FaultKind::InvertedCornerRow => {
                    // Break the current line, then poison the next one: the
                    // newline keeps the corruption row-aligned.
                    self.pending = b"\n".to_vec();
                    self.pending.extend_from_slice(match self.kind {
                        FaultKind::NonFiniteRow => b"nan,nan,inf,-inf\n".as_slice(),
                        _ => b"9.0,9.0,1.0,1.0\n".as_slice(),
                    });
                    self.pending_pos = 0;
                    let n = self.pending.len().min(buf.len());
                    buf[..n].copy_from_slice(&self.pending[..n]);
                    self.pending_pos = n;
                    return Ok(n);
                }
                // Handled on the fall-through path (BitFlip / TornWrite
                // corrupt bytes as they stream; RenameFail has no stream
                // representation and passes through).
                FaultKind::BitFlip | FaultKind::TornWrite | FaultKind::RenameFail => {}
            }
        }
        let n = self.inner.read(buf)?;
        if self.injected && n > 0 {
            match self.kind {
                FaultKind::BitFlip => {
                    for chunk in buf[..n].chunks_mut(64) {
                        let pos = self.injector.below(chunk.len());
                        let bit = self.injector.below(8);
                        chunk[pos] ^= 1 << bit;
                    }
                }
                FaultKind::TornWrite => {
                    // Past the tear point the medium returns zeroed pages.
                    for b in &mut buf[..n] {
                        *b = 0;
                    }
                }
                _ => {}
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// A [`RectSource`] wrapper that injects corrupt rectangles into sweeps.
///
/// `stats()` passes through unchanged, so consumers see a summary that is
/// *inconsistent* with the sweep — exactly the state a torn file or flaky
/// replica produces, and what graceful-degradation paths must survive.
pub struct FaultSource<'a, S: RectSource + ?Sized> {
    inner: &'a S,
    kind: FaultKind,
    seed: u64,
}

impl<'a, S: RectSource + ?Sized> FaultSource<'a, S> {
    /// Wraps `inner`, injecting one `kind` fault per sweep.
    pub fn new(inner: &'a S, kind: FaultKind, seed: u64) -> FaultSource<'a, S> {
        FaultSource { inner, kind, seed }
    }
}

impl<S: RectSource + ?Sized> RectSource for FaultSource<'_, S> {
    fn scan(&self) -> Box<dyn Iterator<Item = Rect> + '_> {
        let mut injector = FaultInjector::new(self.seed);
        let n = self.inner.stats().n;
        match self.kind {
            FaultKind::Truncate | FaultKind::EarlyEof | FaultKind::ShortReadThenError => {
                let keep = if n == 0 { 0 } else { injector.below(n) };
                Box::new(self.inner.scan().take(keep))
            }
            FaultKind::TornWrite => {
                // Torn in-memory image: rows past the tear read back as
                // all-zero records (length preserved, content gone).
                let tear = if n == 0 { 0 } else { injector.below(n) };
                Box::new(self.inner.scan().enumerate().map(move |(i, r)| {
                    if i >= tear {
                        Rect::new(0.0, 0.0, 0.0, 0.0)
                    } else {
                        r
                    }
                }))
            }
            FaultKind::RenameFail => Box::new(self.inner.scan()),
            FaultKind::BitFlip => {
                // In-memory analogue of a flipped sign/exponent bit: one
                // rectangle's coordinate is perturbed to a hostile value.
                let at = if n == 0 { 0 } else { injector.below(n) };
                Box::new(self.inner.scan().enumerate().map(move |(i, r)| {
                    if i == at {
                        Rect {
                            lo: Point::new(r.lo.x * -1e30, r.lo.y),
                            hi: r.hi,
                        }
                    } else {
                        r
                    }
                }))
            }
            FaultKind::NonFiniteRow | FaultKind::InvertedCornerRow => {
                let bad = injector
                    .corrupt_rect(self.kind)
                    .expect("row kinds always produce a rect");
                let at = if n == 0 { 0 } else { injector.below(n + 1) };
                Box::new(
                    self.inner
                        .scan()
                        .enumerate()
                        .flat_map(move |(i, r)| if i == at { vec![bad, r] } else { vec![r] })
                        .chain(if at >= n { vec![bad] } else { vec![] }),
                )
            }
        }
    }

    fn stats(&self) -> DatasetStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_rects_csv_from, write_rects_csv, Dataset};
    use std::io::BufReader;

    fn sample_csv() -> Vec<u8> {
        let ds = Dataset::new(
            (0..50)
                .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 2.0))
                .collect(),
        );
        let path =
            std::env::temp_dir().join(format!("minskew-fault-sample-{}.csv", std::process::id()));
        write_rects_csv(&ds, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).ok();
        bytes
    }

    #[test]
    fn injector_is_deterministic() {
        let data = sample_csv();
        for kind in FaultKind::ALL {
            let a = FaultInjector::new(7).corrupt(&data, kind);
            let b = FaultInjector::new(7).corrupt(&data, kind);
            assert_eq!(a, b, "{kind:?} must replay identically");
            let c = FaultInjector::new(8).corrupt(&data, kind);
            // Different seeds usually differ (not guaranteed per-kind, but
            // across all kinds at least one must).
            if a != c {
                return;
            }
        }
        panic!("seeds 7 and 8 produced identical corruption for every kind");
    }

    #[test]
    fn corrupted_csv_errors_but_never_panics() {
        let data = sample_csv();
        for kind in FaultKind::ALL {
            for seed in 0..50u64 {
                let bytes = FaultInjector::new(seed).corrupt(&data, kind);
                // Any outcome but a panic is acceptable; corrupt rows must
                // never silently become non-finite rectangles.
                if let Ok(ds) = read_rects_csv_from(BufReader::new(&bytes[..])) {
                    assert!(ds.rects().iter().all(Rect::is_finite), "{kind:?}/{seed}");
                }
            }
        }
    }

    #[test]
    fn chaos_reader_faults_are_survivable() {
        let data = sample_csv();
        for kind in FaultKind::ALL {
            for seed in 0..50u64 {
                let reader = ChaosReader::new(&data[..], kind, seed, data.len() as u64);
                if let Ok(ds) = read_rects_csv_from(BufReader::new(reader)) {
                    assert!(ds.rects().iter().all(Rect::is_finite), "{kind:?}/{seed}");
                }
            }
        }
    }

    #[test]
    fn non_finite_rows_are_rejected_not_absorbed() {
        // The NaN row kinds must produce a parse error (NaN text) — never an
        // Ok dataset containing the poison row.
        let data = sample_csv();
        for seed in 0..20u64 {
            let bytes = FaultInjector::new(seed).corrupt(&data, FaultKind::NonFiniteRow);
            let res = read_rects_csv_from(BufReader::new(&bytes[..]));
            assert!(res.is_err(), "seed {seed}: NaN row must be rejected");
        }
    }

    #[test]
    fn inverted_corner_rows_are_normalised() {
        // Inverted corners are legal input (the reader normalises order), so
        // the sweep succeeds and the extra row is finite and well-ordered.
        let data = sample_csv();
        let bytes = FaultInjector::new(3).corrupt(&data, FaultKind::InvertedCornerRow);
        let ds = read_rects_csv_from(BufReader::new(&bytes[..])).expect("normalised");
        assert_eq!(ds.len(), 51);
        assert!(ds
            .rects()
            .iter()
            .all(|r| r.lo.x <= r.hi.x && r.lo.y <= r.hi.y));
    }

    #[test]
    fn fault_source_injects_and_preserves_stats() {
        let ds = Dataset::new(
            (0..30)
                .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0))
                .collect(),
        );
        for kind in FaultKind::ALL {
            let src = FaultSource::new(&ds, kind, 11);
            assert_eq!(src.stats().n, 30, "stats must pass through");
            let swept: Vec<Rect> = src.scan().collect();
            match kind {
                FaultKind::Truncate | FaultKind::EarlyEof | FaultKind::ShortReadThenError => {
                    assert!(swept.len() < 30, "{kind:?} must drop rows")
                }
                FaultKind::NonFiniteRow => {
                    assert_eq!(swept.len(), 31);
                    assert!(swept.iter().any(|r| !r.is_finite()));
                }
                FaultKind::InvertedCornerRow => {
                    assert_eq!(swept.len(), 31);
                    assert!(swept.iter().any(|r| r.lo.x > r.hi.x));
                }
                FaultKind::BitFlip => {
                    assert_eq!(swept.len(), 30);
                    assert!(swept.iter().zip(ds.rects()).any(|(a, b)| a != b));
                }
                FaultKind::TornWrite => {
                    assert_eq!(swept.len(), 30, "torn image preserves length");
                    assert!(swept.iter().any(|r| r.area() == 0.0));
                }
                FaultKind::RenameFail => {
                    assert_eq!(swept, ds.rects(), "no sweep representation");
                }
            }
        }
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_reader() {
        let mut injector = FaultInjector::new(0xBAD5EED);
        for len in [0usize, 1, 7, 64, 333, 4096] {
            let bytes: Vec<u8> = (0..len).map(|_| injector.next_u64() as u8).collect();
            // Ok or Err both fine; no panic.
            let _ = read_rects_csv_from(BufReader::new(&bytes[..]));
        }
    }
}
