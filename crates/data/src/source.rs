//! Streaming access to rectangle collections.
//!
//! A central advantage the paper claims for Min-Skew is that "the
//! construction algorithm does not require the entire data distribution to
//! fit in main memory" — it only ever needs sequential sweeps. This module
//! makes that concrete: [`RectSource`] abstracts "something that can be
//! swept", implemented both by the in-memory [`Dataset`] and by
//! [`CsvRectSource`], which re-reads a CSV file per sweep and keeps only
//! summary statistics resident.

use std::io::BufRead;
use std::path::{Path, PathBuf};

use minskew_geom::{mbr_of, Rect};

use crate::io::CsvError;
use crate::{Dataset, DatasetStats};

/// A rectangle collection that supports repeated sequential sweeps.
///
/// Construction algorithms that honour the paper's memory model
/// (Min-Skew's density-grid builds, the final bucket-assignment pass)
/// consume data exclusively through this trait.
pub trait RectSource {
    /// Starts a fresh sweep over all rectangles.
    fn scan(&self) -> Box<dyn Iterator<Item = Rect> + '_>;

    /// Summary statistics (`N`, MBR, total area, average dimensions),
    /// computed once when the source is opened.
    fn stats(&self) -> DatasetStats;

    /// Starts a fresh sweep, surfacing source failures as errors instead of
    /// panicking: the outer `Result` reports failure to *start* the sweep
    /// (e.g. the backing file vanished), each inner `Result` a failure to
    /// produce one rectangle (e.g. a row corrupted since validation).
    ///
    /// The default implementation wraps [`RectSource::scan`] and never
    /// fails, which is correct for in-memory sources; disk-backed sources
    /// override it.
    fn try_scan(&self) -> Result<Box<dyn Iterator<Item = Result<Rect, CsvError>> + '_>, CsvError> {
        Ok(Box::new(self.scan().map(Ok)))
    }

    /// Random access to the rectangles, when the source holds them resident.
    ///
    /// Parallel construction paths shard contiguous chunks of this slice
    /// across worker threads; a streaming source (the default) returns
    /// `None` and construction falls back to the serial single-sweep
    /// reference path, preserving the paper's O(1)-memory story.
    fn as_slice(&self) -> Option<&[Rect]> {
        None
    }
}

impl RectSource for Dataset {
    fn scan(&self) -> Box<dyn Iterator<Item = Rect> + '_> {
        Box::new(self.rects().iter().copied())
    }

    fn stats(&self) -> DatasetStats {
        *Dataset::stats(self)
    }

    fn as_slice(&self) -> Option<&[Rect]> {
        Some(self.rects())
    }
}

/// A disk-resident rectangle collection: each sweep re-reads the CSV file,
/// so resident memory stays O(1) regardless of dataset size.
///
/// The file is fully validated once at [`CsvRectSource::open`]; subsequent
/// sweeps assume the file is unchanged (a malformed or vanished file
/// mid-sweep panics with a clear message rather than silently corrupting
/// statistics).
#[derive(Debug, Clone)]
pub struct CsvRectSource {
    path: PathBuf,
    stats: DatasetStats,
}

impl CsvRectSource {
    /// Opens and validates a `x1,y1,x2,y2` CSV file, computing the summary
    /// statistics in one pass.
    pub fn open(path: impl AsRef<Path>) -> Result<CsvRectSource, CsvError> {
        let path = path.as_ref().to_path_buf();
        let mut n = 0usize;
        let mut mbr: Option<Rect> = None;
        let mut total_area = 0.0;
        let mut sum_w = 0.0;
        let mut sum_h = 0.0;
        for r in scan_file(&path)? {
            let r = r?;
            n += 1;
            mbr = Some(match mbr {
                Some(m) => m.union(&r),
                None => r,
            });
            total_area += r.area();
            sum_w += r.width();
            sum_h += r.height();
        }
        let denom = n.max(1) as f64;
        Ok(CsvRectSource {
            path,
            stats: DatasetStats {
                n,
                mbr: mbr.unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0)),
                total_area,
                avg_width: sum_w / denom,
                avg_height: sum_h / denom,
            },
        })
    }

    /// The file backing this source.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl RectSource for CsvRectSource {
    fn scan(&self) -> Box<dyn Iterator<Item = Rect> + '_> {
        let iter = scan_file(&self.path)
            .unwrap_or_else(|e| panic!("re-opening {}: {e}", self.path.display()));
        Box::new(iter.map(|r| r.unwrap_or_else(|e| panic!("file changed since validation: {e}"))))
    }

    fn stats(&self) -> DatasetStats {
        self.stats
    }

    fn try_scan(&self) -> Result<Box<dyn Iterator<Item = Result<Rect, CsvError>> + '_>, CsvError> {
        Ok(Box::new(scan_file(&self.path)?))
    }
}

/// Lazily parses a rect CSV, yielding one result per data line.
fn scan_file(path: &Path) -> Result<impl Iterator<Item = Result<Rect, CsvError>>, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    Ok(reader
        .lines()
        .enumerate()
        .filter_map(|(i, line)| match line {
            Err(e) => Some(Err(CsvError::Io(e))),
            Ok(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    return None;
                }
                Some(parse_line(trimmed, i + 1))
            }
        }))
}

fn parse_line(line: &str, line_no: usize) -> Result<Rect, CsvError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        return Err(CsvError::Parse(
            line_no,
            format!("expected 4 comma-separated values, got {}", fields.len()),
        ));
    }
    let mut vals = [0.0f64; 4];
    for (slot, field) in vals.iter_mut().zip(&fields) {
        *slot = field
            .parse()
            .map_err(|e| CsvError::Parse(line_no, format!("bad number {field:?}: {e}")))?;
        if !slot.is_finite() {
            return Err(CsvError::Parse(
                line_no,
                format!("non-finite value {field:?}"),
            ));
        }
    }
    Ok(Rect::new(vals[0], vals[1], vals[2], vals[3]))
}

/// Computes the MBR of a source by sweeping it (for callers holding only
/// the trait object; concrete sources answer from their cached stats).
pub fn source_mbr<S: RectSource + ?Sized>(source: &S) -> Option<Rect> {
    mbr_of(source.scan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_rects_csv;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("minskew-source-{}-{name}", std::process::id()))
    }

    #[test]
    fn csv_source_stats_match_dataset() {
        let ds = Dataset::new(vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),
            Rect::new(5.0, 1.0, 9.0, 4.0),
            Rect::new(-1.0, -2.0, 0.0, 0.0),
        ]);
        let path = tmp("stats.csv");
        write_rects_csv(&ds, &path).unwrap();
        let src = CsvRectSource::open(&path).unwrap();
        // Disk-backed sources stream; they have no resident slice.
        assert!(src.as_slice().is_none());
        let a = src.stats();
        let b = *ds.stats();
        assert_eq!(a.n, b.n);
        assert_eq!(a.mbr, b.mbr);
        assert!((a.total_area - b.total_area).abs() < 1e-12);
        assert!((a.avg_width - b.avg_width).abs() < 1e-12);
        // Sweeps yield the same rects, repeatedly.
        for _ in 0..2 {
            let got: Vec<Rect> = src.scan().collect();
            assert_eq!(got, ds.rects());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dataset_is_a_source() {
        let ds = Dataset::new(vec![Rect::new(0.0, 0.0, 1.0, 1.0)]);
        let src: &dyn RectSource = &ds;
        assert_eq!(src.scan().count(), 1);
        assert_eq!(src.stats().n, 1);
        assert_eq!(source_mbr(src), Some(Rect::new(0.0, 0.0, 1.0, 1.0)));
        // In-memory sources expose their slice for sharded construction.
        assert_eq!(src.as_slice().map(<[Rect]>::len), Some(1));
    }

    #[test]
    fn try_scan_surfaces_failures_instead_of_panicking() {
        let ds = Dataset::new(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 2.0, 3.0, 3.0),
        ]);
        let path = tmp("tryscan.csv");
        write_rects_csv(&ds, &path).unwrap();
        let src = CsvRectSource::open(&path).unwrap();
        // Healthy file: every row comes back Ok.
        let rows: Result<Vec<Rect>, CsvError> = src.try_scan().unwrap().collect();
        assert_eq!(rows.unwrap(), ds.rects());
        // File corrupted after validation: the sweep yields an Err row.
        std::fs::write(&path, "1,2,3,4\ngarbage\n").unwrap();
        let rows: Vec<Result<Rect, CsvError>> = src.try_scan().unwrap().collect();
        assert!(rows.iter().any(|r| r.is_err()));
        // File removed after validation: starting the sweep fails cleanly.
        std::fs::remove_file(&path).unwrap();
        assert!(src.try_scan().is_err());
        // The in-memory default implementation never fails.
        let rows: Result<Vec<Rect>, CsvError> = ds.try_scan().unwrap().collect();
        assert_eq!(rows.unwrap(), ds.rects());
    }

    #[test]
    fn open_rejects_malformed_files() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1,2,3,4\noops\n").unwrap();
        assert!(matches!(
            CsvRectSource::open(&path),
            Err(CsvError::Parse(2, _))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_is_an_empty_source() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "# just a header\n").unwrap();
        let src = CsvRectSource::open(&path).unwrap();
        assert_eq!(src.stats().n, 0);
        assert_eq!(src.scan().count(), 0);
        std::fs::remove_file(path).ok();
    }
}
