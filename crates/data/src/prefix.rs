//! 2-D prefix sums over a density grid: O(1) block aggregates.

use crate::{CellBlock, DensityGrid};

/// Prefix-sum tables of cell density and squared density.
///
/// The spatial-skew objective of Min-Skew (Definition 4.1) weights each
/// bucket's density variance by its cell count:
/// `n·s = Σ d_j² − (Σ d_j)² / n`, the *sum of squared errors* (SSE) of the
/// bucket. With prefix sums of `d` and `d²`, the SSE of **any** rectangular
/// block of cells is a constant-time computation, which turns the greedy
/// split search into a linear scan of O(1) probes per candidate position.
#[derive(Debug, Clone)]
pub struct GridPrefixSums {
    nx: usize,
    ny: usize,
    /// `(nx + 1) × (ny + 1)` inclusive-exclusive prefix table of density.
    sum: Vec<f64>,
    /// Same layout, of squared density.
    sum2: Vec<f64>,
}

impl GridPrefixSums {
    /// Builds the tables from a density grid in O(nx · ny).
    pub fn from_grid(grid: &DensityGrid) -> GridPrefixSums {
        let nx = grid.nx();
        let ny = grid.ny();
        let w = nx + 1;
        let mut sum = vec![0.0; w * (ny + 1)];
        let mut sum2 = vec![0.0; w * (ny + 1)];
        for iy in 0..ny {
            let mut row_s = 0.0;
            let mut row_s2 = 0.0;
            for ix in 0..nx {
                let d = grid.density(ix, iy) as f64;
                row_s += d;
                row_s2 += d * d;
                let above = (iy) * w + (ix + 1);
                let here = (iy + 1) * w + (ix + 1);
                sum[here] = sum[above] + row_s;
                sum2[here] = sum2[above] + row_s2;
            }
        }
        GridPrefixSums { nx, ny, sum, sum2 }
    }

    /// Sum of densities over the block.
    #[inline]
    pub fn block_sum(&self, b: &CellBlock) -> f64 {
        self.rect_query(&self.sum, b)
    }

    /// Sum of squared densities over the block.
    #[inline]
    pub fn block_sum2(&self, b: &CellBlock) -> f64 {
        self.rect_query(&self.sum2, b)
    }

    /// Mean density over the block.
    #[inline]
    pub fn block_mean(&self, b: &CellBlock) -> f64 {
        self.block_sum(b) / b.num_cells() as f64
    }

    /// Sum of squared errors of the block's densities around their mean:
    /// `Σ d_j² − (Σ d_j)² / n`.
    ///
    /// This equals `n_i × s_i` in the paper's Definition 4.1, so the total
    /// spatial-skew `S` of a partitioning is the sum of `block_sse` over its
    /// buckets. Clamped at zero to absorb floating-point cancellation.
    #[inline]
    pub fn block_sse(&self, b: &CellBlock) -> f64 {
        let s = self.block_sum(b);
        let s2 = self.block_sum2(b);
        (s2 - s * s / b.num_cells() as f64).max(0.0)
    }

    /// Sum of densities in column `ix`, rows `y0..=y1`.
    #[inline]
    pub fn column_sum(&self, ix: usize, y0: usize, y1: usize) -> f64 {
        self.block_sum(&CellBlock::new(ix, ix, y0, y1))
    }

    /// Sum of densities in row `iy`, columns `x0..=x1`.
    #[inline]
    pub fn row_sum(&self, iy: usize, x0: usize, x1: usize) -> f64 {
        self.block_sum(&CellBlock::new(x0, x1, iy, iy))
    }

    #[inline]
    fn rect_query(&self, table: &[f64], b: &CellBlock) -> f64 {
        debug_assert!(b.x1 < self.nx && b.y1 < self.ny, "block outside grid");
        let w = self.nx + 1;
        let (x0, x1, y0, y1) = (b.x0, b.x1 + 1, b.y0, b.y1 + 1);
        table[y1 * w + x1] - table[y0 * w + x1] - table[y1 * w + x0] + table[y0 * w + x0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Rect;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    /// Builds a grid whose densities are exactly `vals` (row-major),
    /// by placing `vals[i]` unit rects inside cell `i`.
    fn grid_from(vals: &[u32], nx: usize, ny: usize) -> DensityGrid {
        let bounds = Rect::new(0.0, 0.0, nx as f64, ny as f64);
        let mut rects = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                for _ in 0..vals[iy * nx + ix] {
                    let cx = ix as f64 + 0.5;
                    let cy = iy as f64 + 0.5;
                    rects.push(Rect::new(cx - 0.1, cy - 0.1, cx + 0.1, cy + 0.1));
                }
            }
        }
        let g = DensityGrid::build(rects.iter(), bounds, nx, ny);
        assert_eq!(g.densities(), vals);
        g
    }

    fn naive_sse(vals: &[f64]) -> f64 {
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        vals.iter().map(|v| (v - mean) * (v - mean)).sum()
    }

    #[test]
    fn block_aggregates_match_hand_computation() {
        #[rustfmt::skip]
        let vals = [
            1, 2, 3,
            4, 5, 6,
            7, 8, 9,
        ];
        let g = grid_from(&vals, 3, 3);
        let p = GridPrefixSums::from_grid(&g);
        let full = g.full_block();
        assert_eq!(p.block_sum(&full), 45.0);
        assert_eq!(p.block_sum2(&full), 285.0);
        assert!((p.block_mean(&full) - 5.0).abs() < 1e-12);
        // SSE of 1..9 around mean 5 = 60.
        assert!((p.block_sse(&full) - 60.0).abs() < 1e-9);
        // Sub-block: top-right 2x2 = [5, 6, 8, 9].
        let b = CellBlock::new(1, 2, 1, 2);
        assert_eq!(p.block_sum(&b), 28.0);
        assert_eq!(p.block_sum2(&b), 25.0 + 36.0 + 64.0 + 81.0);
        assert!((p.block_sse(&b) - naive_sse(&[5.0, 6.0, 8.0, 9.0])).abs() < 1e-9);
        // Row / column helpers.
        assert_eq!(p.row_sum(0, 0, 2), 6.0);
        assert_eq!(p.column_sum(2, 0, 2), 3.0 + 6.0 + 9.0);
    }

    #[test]
    fn uniform_block_has_zero_sse() {
        let vals = vec![7u32; 12];
        let g = grid_from(&vals, 4, 3);
        let p = GridPrefixSums::from_grid(&g);
        assert_eq!(p.block_sse(&g.full_block()), 0.0);
    }

    #[test]
    fn sse_is_additive_lower_bound_under_splits() {
        // Splitting never increases total SSE (variance decomposition).
        #[rustfmt::skip]
        let vals = [
            0, 0, 9, 9,
            0, 0, 9, 9,
        ];
        let g = grid_from(&vals, 4, 2);
        let p = GridPrefixSums::from_grid(&g);
        let full = g.full_block();
        let (l, r) = full.split_after(minskew_geom::Axis::X, 1);
        assert!(p.block_sse(&l) + p.block_sse(&r) <= p.block_sse(&full) + 1e-9);
        // The perfect split separates the two uniform halves entirely.
        assert_eq!(p.block_sse(&l), 0.0);
        assert_eq!(p.block_sse(&r), 0.0);
        assert!(p.block_sse(&full) > 0.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_prefix_matches_naive(
            vals in proptest::collection::vec(0u32..20, 24),
            xa in 0usize..6, xb in 0usize..6,
            ya in 0usize..4, yb in 0usize..4,
        ) {
            let (nx, ny) = (6, 4);
            let g = grid_from(&vals, nx, ny);
            let p = GridPrefixSums::from_grid(&g);
            // Any in-range corner pair, including 1-cell and 1-row/column
            // degenerate blocks.
            let (x0, x1) = (xa.min(xb), xa.max(xb));
            let (y0, y1) = (ya.min(yb), ya.max(yb));
            let b = CellBlock::new(x0, x1, y0, y1);
            let mut cells = Vec::new();
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    cells.push(vals[iy * nx + ix] as f64);
                }
            }
            let sum: f64 = cells.iter().sum();
            let sum2: f64 = cells.iter().map(|v| v * v).sum();
            prop_assert!((p.block_sum(&b) - sum).abs() < 1e-9);
            prop_assert!((p.block_sum2(&b) - sum2).abs() < 1e-9);
            prop_assert!((p.block_sse(&b) - naive_sse(&cells)).abs() < 1e-6);
        }

        /// Every block's aggregates must agree with naive summation — the
        /// random-corner case above plus an exhaustive sweep of all
        /// O(nx²·ny²) blocks of one random grid per case.
        #[test]
        fn prop_prefix_matches_naive_all_blocks(
            vals in proptest::collection::vec(0u32..50, 12),
        ) {
            let (nx, ny) = (4, 3);
            let g = grid_from(&vals, nx, ny);
            let p = GridPrefixSums::from_grid(&g);
            for x0 in 0..nx {
                for x1 in x0..nx {
                    for y0 in 0..ny {
                        for y1 in y0..ny {
                            let b = CellBlock::new(x0, x1, y0, y1);
                            let mut sum = 0.0;
                            let mut sum2 = 0.0;
                            for iy in y0..=y1 {
                                for ix in x0..=x1 {
                                    let d = vals[iy * nx + ix] as f64;
                                    sum += d;
                                    sum2 += d * d;
                                }
                            }
                            prop_assert!((p.block_sum(&b) - sum).abs() < 1e-9);
                            prop_assert!((p.block_sum2(&b) - sum2).abs() < 1e-9);
                        }
                    }
                }
            }
        }
    }
}
