//! Dataset model, summary statistics, density grids, and exact counting.
//!
//! This crate provides the input-side substrate of the selectivity-estimation
//! pipeline:
//!
//! * [`Dataset`] — an immutable collection of input rectangles together with
//!   the summary statistics the paper's formulas use (`N`, the input MBR,
//!   the total rectangle area `TA`, and average width/height).
//! * [`DensityGrid`] — a uniform grid of rectangular regions over the input
//!   MBR where each region carries its *spatial density* (the number of input
//!   rectangles intersecting it, §4 of the paper). The grid is the compact
//!   approximation Min-Skew partitions instead of the raw data.
//! * [`GridPrefixSums`] — 2-D prefix-sum tables of density and squared
//!   density, giving O(1) evaluation of the sum / sum-of-squares / SSE of any
//!   axis-aligned block of cells. The SSE of a block equals `n·s` from the
//!   paper's spatial-skew definition (Definition 4.1), so split searches
//!   become linear scans of O(1) probes.
//! * [`CellBlock`] — an inclusive rectangular range of grid cells, the unit a
//!   BSP over the grid manipulates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod atomic;
mod dataset;
pub mod fault;
mod grid;
mod io;
mod prefix;
mod source;

pub use atomic::{
    write_atomic, write_atomic_chaos, write_atomic_with, AtomicWriteError, AtomicWriteOptions,
    WriteStage,
};
pub use dataset::{Dataset, DatasetStats};
pub use fault::{ChaosReader, FaultInjector, FaultKind, FaultSource};
pub use grid::{CellBlock, DensityGrid};
pub use io::{read_rects_csv, read_rects_csv_from, write_rects_csv, CsvError};
pub use prefix::GridPrefixSums;
pub use source::{source_mbr, CsvRectSource, RectSource};
