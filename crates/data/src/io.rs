//! Plain-text dataset I/O.
//!
//! The paper's real-life inputs are TIGER/Sequoia extracts — line-segment or
//! polygon bounding boxes. Users who have such data can bring it as a CSV
//! of `x1,y1,x2,y2` rows (one rectangle per line, `#`-prefixed comment lines
//! and blank lines ignored) and run every estimator and experiment in this
//! workspace on it.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use minskew_geom::Rect;

use crate::Dataset;

/// Errors produced while reading a rectangle CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line was malformed; payload is (1-based line number, reason).
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse(line, why) => write!(f, "line {line}: {why}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> CsvError {
        CsvError::Io(e)
    }
}

/// Reads a dataset from a `x1,y1,x2,y2` CSV file.
///
/// Corner order per row is normalised; non-finite values are rejected.
pub fn read_rects_csv(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    read_rects_csv_from(std::io::BufReader::new(file))
}

/// Reads a dataset in `x1,y1,x2,y2` CSV form from any buffered reader.
///
/// This is the seam the fault-injection suite drives: the parser is total
/// over arbitrary byte streams — every malformed line, injected I/O error,
/// or mid-stream truncation maps to a [`CsvError`], never a panic.
pub fn read_rects_csv_from(reader: impl BufRead) -> Result<Dataset, CsvError> {
    let mut rects = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(CsvError::Parse(
                line_no,
                format!("expected 4 comma-separated values, got {}", fields.len()),
            ));
        }
        let mut vals = [0.0f64; 4];
        for (slot, field) in vals.iter_mut().zip(&fields) {
            *slot = field
                .parse()
                .map_err(|e| CsvError::Parse(line_no, format!("bad number {field:?}: {e}")))?;
            if !slot.is_finite() {
                return Err(CsvError::Parse(
                    line_no,
                    format!("non-finite value {field:?}"),
                ));
            }
        }
        rects.push(Rect::new(vals[0], vals[1], vals[2], vals[3]));
    }
    Ok(Dataset::new(rects))
}

/// Writes a dataset as a `x1,y1,x2,y2` CSV file (with a header comment).
pub fn write_rects_csv(data: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# x1,y1,x2,y2 — {} rectangles", data.len())?;
    for r in data.rects() {
        writeln!(w, "{},{},{},{}", r.lo.x, r.lo.y, r.hi.x, r.hi.y)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("minskew-io-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let ds = Dataset::new(vec![
            Rect::new(0.0, 1.5, 2.0, 3.0),
            Rect::new(-4.25, 0.0, 0.0, 10.0),
        ]);
        let path = tmp("roundtrip.csv");
        write_rects_csv(&ds, &path).unwrap();
        let back = read_rects_csv(&path).unwrap();
        assert_eq!(back.rects(), ds.rects());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1,2,3,4\n  # another\n5,6,7,8\n").unwrap();
        let ds = read_rects_csv(&path).unwrap();
        assert_eq!(ds.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corner_order_normalised() {
        let path = tmp("order.csv");
        std::fs::write(&path, "3,4,1,2\n").unwrap();
        let ds = read_rects_csv(&path).unwrap();
        assert_eq!(ds.rects()[0], Rect::new(1.0, 2.0, 3.0, 4.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_rows_reported_with_line_numbers() {
        for (content, expect_line) in [
            ("1,2,3\n", 1),
            ("1,2,3,4\nx,2,3,4\n", 2),
            ("1,2,3,4\n\n1,2,3,inf\n", 3),
        ] {
            let path = tmp("bad.csv");
            std::fs::write(&path, content).unwrap();
            match read_rects_csv(&path) {
                Err(CsvError::Parse(line, _)) => assert_eq!(line, expect_line, "{content:?}"),
                other => panic!("expected parse error for {content:?}, got {other:?}"),
            }
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_rects_csv("/definitely/not/here.csv") {
            Err(CsvError::Io(_)) => {}
            other => panic!("expected I/O error, got {other:?}"),
        }
    }
}
