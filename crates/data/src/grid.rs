//! Uniform density grids: the compact input approximation Min-Skew consumes.

use minskew_geom::{Axis, Point, Rect};

/// A uniform grid of rectangular regions over a bounding rectangle, each
/// region annotated with its *spatial density*: the number of input
/// rectangles intersecting it (§4 of the paper).
///
/// The grid is the heuristic that makes good BSP construction tractable: it
/// replaces the raw input (which may not fit in memory) with `nx × ny`
/// counters obtained in a **single sweep** of the data.
///
/// Cells are indexed `(ix, iy)` with `ix ∈ [0, nx)` left-to-right and
/// `iy ∈ [0, ny)` bottom-to-top; storage is row-major by `iy`. For counting
/// purposes cells behave half-open (`[x0, x1) × [y0, y1)`, closed on the top
/// and right boundary of the grid), so every point of the bounded domain
/// belongs to exactly one cell.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    bounds: Rect,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    density: Vec<u32>,
}

impl DensityGrid {
    /// Builds an `nx × ny` density grid over `bounds` in one pass over
    /// `rects` (owned or borrowed — the sweep works equally over an
    /// in-memory slice or a streaming [`crate::RectSource`] scan).
    /// Rectangles entirely outside `bounds` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `nx == 0 || ny == 0`.
    pub fn build<I, B>(rects: I, bounds: Rect, nx: usize, ny: usize) -> DensityGrid
    where
        I: IntoIterator<Item = B>,
        B: std::borrow::Borrow<Rect>,
    {
        assert!(
            nx > 0 && ny > 0,
            "grid must have at least one cell per axis"
        );
        // A degenerate bounds axis collapses that axis to a single cell:
        // every datum shares the one coordinate, so finer resolution is
        // meaningless (and would divide by zero).
        let nx = if bounds.width() == 0.0 { 1 } else { nx };
        let ny = if bounds.height() == 0.0 { 1 } else { ny };
        let cell_w = bounds.width() / nx as f64;
        let cell_h = bounds.height() / ny as f64;
        let mut grid = DensityGrid {
            bounds,
            nx,
            ny,
            cell_w,
            cell_h,
            density: vec![0; nx * ny],
        };
        for r in rects {
            let r = r.borrow();
            if !bounds.intersects(r) {
                continue;
            }
            let (ix0, ix1) = grid.axis_range(r, Axis::X);
            let (iy0, iy1) = grid.axis_range(r, Axis::Y);
            for iy in iy0..=iy1 {
                let row = iy * grid.nx;
                for d in &mut grid.density[row + ix0..=row + ix1] {
                    *d += 1;
                }
            }
        }
        grid
    }

    /// Parallel counterpart of [`DensityGrid::build`]: sharded counts, then
    /// a merge — each worker sweeps one contiguous chunk of `rects` into its
    /// own counter array, and the shards are summed cell-wise.
    ///
    /// **Bit-identical to the serial build at every thread count**: cell
    /// densities are `u32` counters, and integer addition is
    /// order-independent, so the merged shard totals equal the serial
    /// sweep's exactly. `threads == 1` (the default everywhere) runs the
    /// serial reference path; `threads == 0` means one worker per available
    /// core.
    ///
    /// Unlike [`DensityGrid::build`] this requires the input as a slice:
    /// sharding needs random access. Streaming sources keep using the
    /// serial single-sweep build.
    ///
    /// # Panics
    ///
    /// Panics if `nx == 0 || ny == 0`.
    pub fn build_with_threads(
        rects: &[Rect],
        bounds: Rect,
        nx: usize,
        ny: usize,
        threads: usize,
    ) -> DensityGrid {
        let threads = minskew_par::effective_threads(threads);
        // Below ~8k rects the sweep is microseconds; thread spawn would
        // dominate. The output is identical either way.
        const PAR_MIN_RECTS: usize = 8_192;
        if threads <= 1 || rects.len() < PAR_MIN_RECTS {
            return DensityGrid::build(rects.iter(), bounds, nx, ny);
        }
        let mut grid = DensityGrid::build(std::iter::empty::<&Rect>(), bounds, nx, ny);
        let shards = minskew_par::fold_shards(
            threads,
            rects,
            || vec![0u32; grid.nx * grid.ny],
            |shard: &mut Vec<u32>, r: &Rect| {
                if !bounds.intersects(r) {
                    return;
                }
                let (ix0, ix1) = grid.axis_range(r, Axis::X);
                let (iy0, iy1) = grid.axis_range(r, Axis::Y);
                for iy in iy0..=iy1 {
                    let row = iy * grid.nx;
                    for d in &mut shard[row + ix0..=row + ix1] {
                        *d += 1;
                    }
                }
            },
        );
        for shard in shards {
            for (cell, s) in grid.density.iter_mut().zip(shard) {
                *cell += s;
            }
        }
        grid
    }

    /// Builds a roughly square grid with approximately `regions` cells
    /// (the paper parameterises Min-Skew by the *number of regions*, e.g.
    /// 10 000 regions = a 100 × 100 grid).
    pub fn with_regions<I, B>(rects: I, bounds: Rect, regions: usize) -> DensityGrid
    where
        I: IntoIterator<Item = B>,
        B: std::borrow::Borrow<Rect>,
    {
        let side = (regions.max(1) as f64).sqrt().round().max(1.0) as usize;
        DensityGrid::build(rects, bounds, side, side)
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of regions (`nx * ny`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The gridded domain.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Density of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn density(&self, ix: usize, iy: usize) -> u32 {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        self.density[iy * self.nx + ix]
    }

    /// Row-major (`iy * nx + ix`) view of all cell densities.
    #[inline]
    pub fn densities(&self) -> &[u32] {
        &self.density
    }

    /// The cell containing point `p`, clamped into the grid.
    ///
    /// Points outside `bounds` map to the nearest boundary cell; callers that
    /// care should test containment first.
    #[inline]
    pub fn cell_containing(&self, p: Point) -> (usize, usize) {
        (self.index_1d(p.x, Axis::X), self.index_1d(p.y, Axis::Y))
    }

    /// The geometric region of cell `(ix, iy)`.
    pub fn cell_rect(&self, ix: usize, iy: usize) -> Rect {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        let x0 = self.bounds.lo.x + ix as f64 * self.cell_w;
        let y0 = self.bounds.lo.y + iy as f64 * self.cell_h;
        // Snap the outermost edges exactly onto the bounds to avoid float
        // drift leaving slivers at the domain boundary.
        let x1 = if ix + 1 == self.nx {
            self.bounds.hi.x
        } else {
            x0 + self.cell_w
        };
        let y1 = if iy + 1 == self.ny {
            self.bounds.hi.y
        } else {
            y0 + self.cell_h
        };
        Rect::new(x0, y0, x1, y1)
    }

    /// The geometric region covered by a [`CellBlock`].
    pub fn block_rect(&self, b: &CellBlock) -> Rect {
        let lo = self.cell_rect(b.x0, b.y0);
        let hi = self.cell_rect(b.x1, b.y1);
        Rect::new(lo.lo.x, lo.lo.y, hi.hi.x, hi.hi.y)
    }

    /// The block spanning the whole grid.
    pub fn full_block(&self) -> CellBlock {
        CellBlock {
            x0: 0,
            x1: self.nx - 1,
            y0: 0,
            y1: self.ny - 1,
        }
    }

    /// Inclusive range of cell indices a rectangle overlaps along `axis`,
    /// clamped into the grid.
    pub fn axis_range(&self, r: &Rect, axis: Axis) -> (usize, usize) {
        match axis {
            Axis::X => (self.index_1d(r.lo.x, axis), self.index_1d(r.hi.x, axis)),
            Axis::Y => (self.index_1d(r.lo.y, axis), self.index_1d(r.hi.y, axis)),
        }
    }

    #[inline]
    fn index_1d(&self, v: f64, axis: Axis) -> usize {
        let (lo, cell, n) = match axis {
            Axis::X => (self.bounds.lo.x, self.cell_w, self.nx),
            Axis::Y => (self.bounds.lo.y, self.cell_h, self.ny),
        };
        if cell == 0.0 {
            return 0;
        }
        let idx = ((v - lo) / cell).floor();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(n - 1)
        }
    }
}

/// An inclusive rectangular range of grid cells: `[x0, x1] × [y0, y1]`.
///
/// A BSP over the grid represents each bucket as one `CellBlock`; splits
/// happen on cell boundaries via [`CellBlock::split_after`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellBlock {
    /// First column (inclusive).
    pub x0: usize,
    /// Last column (inclusive).
    pub x1: usize,
    /// First row (inclusive).
    pub y0: usize,
    /// Last row (inclusive).
    pub y1: usize,
}

impl CellBlock {
    /// Creates a block; asserts `x0 <= x1 && y0 <= y1`.
    pub fn new(x0: usize, x1: usize, y0: usize, y1: usize) -> CellBlock {
        assert!(x0 <= x1 && y0 <= y1, "inverted cell block");
        CellBlock { x0, x1, y0, y1 }
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }

    /// Number of cells contained.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.width() * self.height()
    }

    /// Extent along `axis`, in cells.
    #[inline]
    pub fn len(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.width(),
            Axis::Y => self.height(),
        }
    }

    /// Returns `true` if the block is a single cell (cannot be split).
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.num_cells() == 1
    }

    /// Splits the block perpendicular to `axis` *after* index `i`
    /// (so the lower half ends at `i` and the upper half starts at `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `i` lies strictly inside the block's extent
    /// (`x0 <= i < x1`, resp. `y0 <= i < y1`), i.e. both halves are
    /// non-empty.
    pub fn split_after(&self, axis: Axis, i: usize) -> (CellBlock, CellBlock) {
        match axis {
            Axis::X => {
                assert!(self.x0 <= i && i < self.x1, "split index outside block");
                (
                    CellBlock { x1: i, ..*self },
                    CellBlock { x0: i + 1, ..*self },
                )
            }
            Axis::Y => {
                assert!(self.y0 <= i && i < self.y1, "split index outside block");
                (
                    CellBlock { y1: i, ..*self },
                    CellBlock { y0: i + 1, ..*self },
                )
            }
        }
    }

    /// Returns `true` if cell `(ix, iy)` lies in the block.
    #[inline]
    pub fn contains_cell(&self, ix: usize, iy: usize) -> bool {
        ix >= self.x0 && ix <= self.x1 && iy >= self.y0 && iy <= self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn unit_bounds() -> Rect {
        Rect::new(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn single_rect_density_footprint() {
        let r = [Rect::new(2.5, 2.5, 7.5, 4.5)];
        let g = DensityGrid::build(r.iter(), unit_bounds(), 4, 4);
        // Covers x cells 1..=3 (2.5..7.5 over cell width 2.5) and y cells 1..=1.
        let mut expected = vec![0u32; 16];
        for ix in 1..=3 {
            expected[4 + ix] = 1; // iy = 1 row
        }
        assert_eq!(g.densities(), expected.as_slice());
    }

    #[test]
    fn density_counts_intersections_not_centers() {
        // One big rect spanning everything: every cell has density 1.
        let r = [unit_bounds()];
        let g = DensityGrid::build(r.iter(), unit_bounds(), 3, 3);
        assert!(g.densities().iter().all(|&d| d == 1));
        assert_eq!(g.num_cells(), 9);
    }

    #[test]
    fn with_regions_builds_square_grid() {
        let r = [unit_bounds()];
        let g = DensityGrid::with_regions(r.iter(), unit_bounds(), 10_000);
        assert_eq!((g.nx(), g.ny()), (100, 100));
        let g = DensityGrid::with_regions(r.iter(), unit_bounds(), 1);
        assert_eq!((g.nx(), g.ny()), (1, 1));
    }

    #[test]
    fn out_of_bounds_rects_ignored() {
        let r = [Rect::new(20.0, 20.0, 30.0, 30.0)];
        let g = DensityGrid::build(r.iter(), unit_bounds(), 2, 2);
        assert!(g.densities().iter().all(|&d| d == 0));
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let g = DensityGrid::build(std::iter::empty::<&Rect>(), unit_bounds(), 4, 4);
        assert_eq!(g.cell_containing(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_containing(Point::new(10.0, 10.0)), (3, 3));
        assert_eq!(g.cell_containing(Point::new(-5.0, 12.0)), (0, 3));
        assert_eq!(g.cell_containing(Point::new(2.5, 2.5)), (1, 1));
    }

    #[test]
    fn cell_rects_tile_bounds() {
        let g = DensityGrid::build(
            std::iter::empty::<&Rect>(),
            Rect::new(1.0, 2.0, 11.0, 8.0),
            5,
            3,
        );
        let mut area = 0.0;
        for iy in 0..3 {
            for ix in 0..5 {
                area += g.cell_rect(ix, iy).area();
            }
        }
        assert!((area - g.bounds().area()).abs() < 1e-9);
        assert_eq!(g.cell_rect(4, 2).hi, g.bounds().hi);
        assert_eq!(g.cell_rect(0, 0).lo, g.bounds().lo);
    }

    #[test]
    fn block_rect_spans_cells() {
        let g = DensityGrid::build(std::iter::empty::<&Rect>(), unit_bounds(), 4, 4);
        let b = CellBlock::new(1, 2, 0, 3);
        assert_eq!(g.block_rect(&b), Rect::new(2.5, 0.0, 7.5, 10.0));
        assert_eq!(g.block_rect(&g.full_block()), unit_bounds());
    }

    #[test]
    fn degenerate_bounds_collapse_axis() {
        let r = [Rect::new(5.0, 0.0, 5.0, 10.0)];
        let bounds = Rect::new(5.0, 0.0, 5.0, 10.0); // zero width
        let g = DensityGrid::build(r.iter(), bounds, 8, 4);
        assert_eq!(g.nx(), 1);
        assert_eq!(g.ny(), 4);
        assert!(g.densities().iter().all(|&d| d == 1));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Enough rects to cross the parallel threshold, deterministic layout.
        let bounds = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
        let rects: Vec<Rect> = (0..10_000)
            .map(|i| {
                let x = (i % 100) as f64 * 10.0;
                let y = (i / 100) as f64 * 10.0;
                let w = 5.0 + (i % 7) as f64 * 20.0;
                Rect::new(x, y, (x + w).min(1_000.0), (y + w).min(1_000.0))
            })
            .collect();
        let serial = DensityGrid::build(rects.iter(), bounds, 16, 16);
        for threads in [1usize, 2, 3, 8] {
            let par = DensityGrid::build_with_threads(&rects, bounds, 16, 16, threads);
            assert_eq!(par.densities(), serial.densities(), "threads = {threads}");
            assert_eq!(par.bounds(), serial.bounds());
            assert_eq!((par.nx(), par.ny()), (serial.nx(), serial.ny()));
        }
    }

    #[test]
    fn cell_block_splits() {
        let b = CellBlock::new(0, 4, 2, 6);
        assert_eq!(b.num_cells(), 25);
        let (l, r) = b.split_after(Axis::X, 1);
        assert_eq!(l, CellBlock::new(0, 1, 2, 6));
        assert_eq!(r, CellBlock::new(2, 4, 2, 6));
        assert_eq!(l.num_cells() + r.num_cells(), b.num_cells());
        let (lo, hi) = b.split_after(Axis::Y, 5);
        assert_eq!(lo, CellBlock::new(0, 4, 2, 5));
        assert_eq!(hi, CellBlock::new(0, 4, 6, 6));
        assert!(CellBlock::new(3, 3, 1, 1).is_unit());
    }

    #[test]
    #[should_panic(expected = "split index outside block")]
    fn split_at_boundary_panics() {
        CellBlock::new(0, 4, 0, 0).split_after(Axis::X, 4);
    }

    #[test]
    fn contains_cell() {
        let b = CellBlock::new(1, 3, 2, 5);
        assert!(b.contains_cell(1, 2));
        assert!(b.contains_cell(3, 5));
        assert!(!b.contains_cell(0, 3));
        assert!(!b.contains_cell(2, 6));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Density invariants: every in-bounds rect touches at least one
        /// cell, no cell exceeds N, and each cell's density equals the
        /// brute-force count of rects overlapping its index ranges.
        #[test]
        fn prop_density_counts_are_exact(
            raw in proptest::collection::vec(
                (0.0..100.0f64, 0.0..100.0f64, 0.0..30.0f64, 0.0..30.0f64),
                1..60,
            ),
            nx in 1usize..9,
            ny in 1usize..9,
        ) {
            let bounds = Rect::new(0.0, 0.0, 120.0, 120.0);
            let rects: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                .collect();
            let g = DensityGrid::build(rects.iter(), bounds, nx, ny);
            let n = rects.len() as u32;
            let mut total = 0u32;
            for iy in 0..g.ny() {
                for ix in 0..g.nx() {
                    let d = g.density(ix, iy);
                    prop_assert!(d <= n);
                    let expected = rects
                        .iter()
                        .filter(|r| {
                            let (x0, x1) = g.axis_range(r, Axis::X);
                            let (y0, y1) = g.axis_range(r, Axis::Y);
                            (x0..=x1).contains(&ix) && (y0..=y1).contains(&iy)
                        })
                        .count() as u32;
                    prop_assert_eq!(d, expected);
                    total += d;
                }
            }
            // Every rect contributes to at least one cell.
            prop_assert!(total >= n);
        }
    }
}
