//! k-nearest-neighbour search (branch-and-bound on MINDIST).
//!
//! Not used by the selectivity-estimation experiments, but a spatial index
//! shipped as a library is expected to answer proximity queries; GIS
//! workloads mix range and nearest-neighbour access. The implementation is
//! the classic best-first traversal over a priority queue ordered by
//! `MINDIST` (the smallest possible distance between the query point and
//! anything inside a node's MBR), which visits the minimum number of nodes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use minskew_geom::{Point, Rect};

use crate::node::{Item, Node};
use crate::tree::RStarTree;

/// Squared MINDIST from a point to a rectangle (0 inside).
fn min_dist2(p: Point, r: &Rect) -> f64 {
    let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
    let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
    dx * dx + dy * dy
}

/// Heap entry: either a node to expand or an item result candidate.
enum Candidate<'a, T> {
    Node(&'a Node<T>),
    Item(&'a Item<T>),
}

struct Entry<'a, T> {
    dist2: f64,
    candidate: Candidate<'a, T>,
}

impl<T> PartialEq for Entry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl<T> Eq for Entry<'_, T> {}
impl<T> PartialOrd for Entry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; NaN cannot occur (inputs are
        // finite by Dataset/Rect construction).
        other
            .dist2
            .partial_cmp(&self.dist2)
            .unwrap_or(Ordering::Equal)
    }
}

impl<T> RStarTree<T> {
    /// Returns the `k` items nearest to `p` (by distance to their
    /// rectangles; a containing rectangle has distance zero), closest first.
    ///
    /// Fewer than `k` items are returned when the tree is smaller than `k`.
    pub fn nearest_neighbors(&self, p: Point, k: usize) -> Vec<&Item<T>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<Entry<'_, T>> = BinaryHeap::new();
        heap.push(Entry {
            dist2: min_dist2(p, &self.mbr()),
            candidate: Candidate::Node(self.root()),
        });
        while let Some(entry) = heap.pop() {
            match entry.candidate {
                Candidate::Item(item) => {
                    // Popped in global distance order: this item is closer
                    // than everything still in the heap.
                    out.push(item);
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(node) => match node {
                    Node::Leaf { items, .. } => {
                        for item in items {
                            heap.push(Entry {
                                dist2: min_dist2(p, &item.rect),
                                candidate: Candidate::Item(item),
                            });
                        }
                    }
                    Node::Internal { children, .. } => {
                        for child in children {
                            heap.push(Entry {
                                dist2: min_dist2(p, &child.mbr()),
                                candidate: Candidate::Node(child),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// Distance-ordered variant returning `(item, distance)` pairs.
    pub fn nearest_neighbors_with_distance(&self, p: Point, k: usize) -> Vec<(&Item<T>, f64)> {
        self.nearest_neighbors(p, k)
            .into_iter()
            .map(|item| (item, min_dist2(p, &item.rect).sqrt()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mindist_basics() {
        let r = Rect::new(2.0, 2.0, 4.0, 4.0);
        assert_eq!(min_dist2(Point::new(3.0, 3.0), &r), 0.0); // inside
        assert_eq!(min_dist2(Point::new(2.0, 2.0), &r), 0.0); // corner
        assert_eq!(min_dist2(Point::new(0.0, 3.0), &r), 4.0); // left
        assert_eq!(min_dist2(Point::new(5.0, 5.0), &r), 2.0); // diagonal
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rects: Vec<Rect> = (0..600)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..10.0),
                    y + rng.gen_range(0.0..10.0),
                )
            })
            .collect();
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        for _ in 0..50 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let k = rng.gen_range(1..20usize);
            let got = tree.nearest_neighbors(p, k);
            assert_eq!(got.len(), k);
            // Brute force: sort all distances.
            let mut dists: Vec<f64> = rects.iter().map(|r| min_dist2(p, r)).collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (i, item) in got.iter().enumerate() {
                let d = min_dist2(p, &item.rect);
                assert!(
                    (d - dists[i]).abs() < 1e-9,
                    "neighbour {i}: got dist2 {d}, brute force {}",
                    dists[i]
                );
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let empty: RStarTree<u8> = RStarTree::new(RTreeConfig::default());
        assert!(empty.nearest_neighbors(Point::new(0.0, 0.0), 3).is_empty());

        let mut one = RStarTree::new(RTreeConfig::default());
        one.insert(Rect::new(5.0, 5.0, 6.0, 6.0), 7u8);
        let got = one.nearest_neighbors(Point::new(0.0, 0.0), 10);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, 7);
        assert!(one.nearest_neighbors(Point::new(0.0, 0.0), 0).is_empty());

        let with_d = one.nearest_neighbors_with_distance(Point::new(5.0, 2.0), 1);
        assert!((with_d[0].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn knn_ordered_closest_first() {
        let mut tree = RStarTree::new(RTreeConfig::default());
        for i in 0..50 {
            let x = i as f64 * 10.0;
            tree.insert(Rect::new(x, 0.0, x + 1.0, 1.0), i);
        }
        let got = tree.nearest_neighbors_with_distance(Point::new(250.0, 0.5), 5);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1, "distances must be non-decreasing");
        }
        assert_eq!(got[0].0.data, 25);
    }
}
