//! Tree node representation.

use minskew_geom::{mbr_of, Rect};

/// A data item stored in a leaf: a rectangle plus caller payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Item<T> {
    /// The item's (bounding) rectangle.
    pub rect: Rect,
    /// Caller payload, typically an identifier into external storage.
    pub data: T,
}

impl<T> Item<T> {
    /// Creates an item.
    pub fn new(rect: Rect, data: T) -> Item<T> {
        Item { rect, data }
    }
}

/// A tree node. Leaves hold items; internal nodes hold child nodes.
///
/// Levels are counted from the bottom: leaves are level 0, the root is level
/// `height - 1`. All leaves sit at the same depth (a classic R-tree
/// invariant, checked by `RStarTree::validate`).
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf { mbr: Rect, items: Vec<Item<T>> },
    Internal { mbr: Rect, children: Vec<Node<T>> },
}

/// An entry pending (re)insertion: either a data item (targets level 0) or a
/// whole subtree orphaned by forced reinsertion or tree condensation
/// (targets the level above its own root).
#[derive(Debug)]
pub(crate) enum Entry<T> {
    Item(Item<T>),
    Child(Node<T>),
}

impl<T> Entry<T> {
    pub(crate) fn rect(&self) -> Rect {
        match self {
            Entry::Item(it) => it.rect,
            Entry::Child(n) => n.mbr(),
        }
    }
}

impl<T> Node<T> {
    pub(crate) fn empty_leaf() -> Node<T> {
        Node::Leaf {
            mbr: Rect::new(0.0, 0.0, 0.0, 0.0),
            items: Vec::new(),
        }
    }

    pub(crate) fn new_leaf(items: Vec<Item<T>>) -> Node<T> {
        let mbr =
            mbr_of(items.iter().map(|i| i.rect)).unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        Node::Leaf { mbr, items }
    }

    pub(crate) fn new_internal(children: Vec<Node<T>>) -> Node<T> {
        let mbr = mbr_of(children.iter().map(|c| c.mbr()))
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        Node::Internal { mbr, children }
    }

    #[inline]
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => *mbr,
        }
    }

    /// Number of entries directly in this node (items or children).
    #[inline]
    pub(crate) fn entry_count(&self) -> usize {
        match self {
            Node::Leaf { items, .. } => items.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    /// Total number of items in the subtree.
    pub(crate) fn subtree_len(&self) -> usize {
        match self {
            Node::Leaf { items, .. } => items.len(),
            Node::Internal { children, .. } => children.iter().map(Node::subtree_len).sum(),
        }
    }
}
