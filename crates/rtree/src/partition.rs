//! Extraction of a bucket partitioning from the tree's internal nodes
//! (the paper's §3.4 *R-tree index based grouping*).

use minskew_geom::Rect;

use crate::node::Node;
use crate::tree::RStarTree;

/// Aggregates of one subtree, exported as a histogram bucket.
///
/// Holds exactly the statistics the paper's bucket format stores: the
/// bounding box, the rectangle count, and (as sums, so callers can average)
/// the rectangle dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtreeSummary {
    /// MBR of the subtree.
    pub mbr: Rect,
    /// Number of data rectangles in the subtree.
    pub count: usize,
    /// Sum of data-rectangle widths (divide by `count` for the average).
    pub sum_width: f64,
    /// Sum of data-rectangle heights.
    pub sum_height: f64,
}

impl<T> RStarTree<T> {
    /// Cuts the tree into at most `max_nodes` disjoint-by-construction
    /// subtrees and summarises each.
    ///
    /// Mirrors the paper's procedure for turning an R-tree into a spatial
    /// histogram: starting from the root, repeatedly *expand* the frontier
    /// node with the most data rectangles into its children, as long as the
    /// frontier stays within the quota ("we tweaked the branching factor to
    /// produce close to the number we desired but ensuring we never exceeded
    /// the allocated quota"). Leaves cannot be expanded, so the method may
    /// return fewer than `max_nodes` summaries — the paper observes the same
    /// shortfall for its R-tree technique.
    ///
    /// Returns an empty vector for an empty tree.
    ///
    /// # Panics
    ///
    /// Panics if `max_nodes == 0`.
    pub fn partition_frontier(&self, max_nodes: usize) -> Vec<SubtreeSummary> {
        assert!(max_nodes > 0, "cannot build a zero-bucket partitioning");
        if self.is_empty() {
            return Vec::new();
        }
        // Frontier of (subtree, item count). Linear max-scans are fine: the
        // frontier never exceeds a few hundred buckets.
        let mut frontier: Vec<(&Node<T>, usize)> = vec![(self.root(), self.len())];
        loop {
            // Largest expandable (internal) frontier entry.
            let candidate = frontier
                .iter()
                .enumerate()
                .filter(|(_, (n, _))| matches!(n, Node::Internal { .. }))
                .max_by_key(|(_, (_, c))| *c)
                .map(|(i, _)| i);
            let Some(i) = candidate else { break };
            let Node::Internal { children, .. } = frontier[i].0 else {
                unreachable!()
            };
            if frontier.len() - 1 + children.len() > max_nodes {
                // Expanding the biggest node would blow the quota. Smaller
                // nodes have at least as many children-per-expansion benefit
                // ratios but the paper stops here; further packing attempts
                // yield marginal gains, so stop as well.
                break;
            }
            frontier.swap_remove(i);
            for c in children {
                frontier.push((c, c.subtree_len()));
            }
        }
        frontier
            .into_iter()
            .map(|(node, count)| summarize(node, count))
            .collect()
    }
}

fn summarize<T>(node: &Node<T>, count: usize) -> SubtreeSummary {
    let mut sum_width = 0.0;
    let mut sum_height = 0.0;
    fn rec<T>(node: &Node<T>, sw: &mut f64, sh: &mut f64) {
        match node {
            Node::Leaf { items, .. } => {
                for i in items {
                    *sw += i.rect.width();
                    *sh += i.rect.height();
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    rec(c, sw, sh);
                }
            }
        }
    }
    rec(node, &mut sum_width, &mut sum_height);
    SubtreeSummary {
        mbr: node.mbr(),
        count,
        sum_width,
        sum_height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use minskew_geom::Rect;

    fn build(n: usize) -> RStarTree<usize> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(8));
        for i in 0..n {
            let x = (i % 40) as f64 * 2.0;
            let y = (i / 40) as f64 * 2.0;
            t.insert(Rect::new(x, y, x + 1.0, y + 1.0), i);
        }
        t
    }

    #[test]
    fn frontier_counts_cover_all_items() {
        let t = build(600);
        for quota in [1usize, 5, 20, 50, 100] {
            let parts = t.partition_frontier(quota);
            assert!(!parts.is_empty());
            assert!(parts.len() <= quota, "quota {quota}: got {}", parts.len());
            let total: usize = parts.iter().map(|p| p.count).sum();
            assert_eq!(total, 600, "every item in exactly one bucket");
        }
    }

    #[test]
    fn frontier_respects_quota_tightly() {
        let t = build(600);
        let parts = t.partition_frontier(64);
        // Should use a decent share of the quota (not collapse to the root).
        assert!(parts.len() > 16, "only {} buckets extracted", parts.len());
    }

    #[test]
    fn summaries_have_consistent_dimensions() {
        let t = build(200);
        let parts = t.partition_frontier(10);
        for p in &parts {
            // All data rects are 1x1, so the sums equal the counts.
            assert!((p.sum_width - p.count as f64).abs() < 1e-9);
            assert!((p.sum_height - p.count as f64).abs() < 1e-9);
            assert!(p.mbr.area() > 0.0);
        }
    }

    #[test]
    fn empty_tree_yields_no_buckets() {
        let t: RStarTree<u8> = RStarTree::new(RTreeConfig::default());
        assert!(t.partition_frontier(10).is_empty());
    }

    #[test]
    fn single_item_tree() {
        let mut t = RStarTree::new(RTreeConfig::default());
        t.insert(Rect::new(0.0, 0.0, 3.0, 2.0), 0u8);
        let parts = t.partition_frontier(10);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].count, 1);
        assert_eq!(parts[0].mbr, Rect::new(0.0, 0.0, 3.0, 2.0));
        assert_eq!(parts[0].sum_width, 3.0);
        assert_eq!(parts[0].sum_height, 2.0);
    }
}
