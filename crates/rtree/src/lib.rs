//! A from-scratch R\*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).
//!
//! The paper under reproduction uses the R\*-tree in two roles:
//!
//! 1. As the **index-based partitioning** technique (§3.4): the MBRs of the
//!    internal nodes of an R\*-tree summarise the data distribution, so a
//!    frontier of nodes becomes a set of histogram buckets. See
//!    [`RStarTree::partition_frontier`].
//! 2. As the fast **exact ground truth** for the evaluation harness:
//!    computing real result sizes for 10 000 queries over 400 000+
//!    rectangles is infeasible by scanning; the tree answers
//!    [`RStarTree::count_intersecting`] in roughly `O(√N + k)`.
//!
//! The implementation follows the published algorithm: `ChooseSubtree`
//! minimises *overlap enlargement* when descending to leaf parents and *area
//! enlargement* above, splits choose their axis by minimum margin sum and
//! their distribution by minimum overlap, and overflowing nodes first retry a
//! **forced reinsertion** of the 30 % of entries farthest from the node
//! centre (once per level per insertion) before splitting. Sort-Tile-Recursive
//! (STR) bulk loading is provided for building large static trees quickly.
//!
//! # Examples
//!
//! ```
//! use minskew_geom::Rect;
//! use minskew_rtree::RStarTree;
//!
//! let mut tree = RStarTree::new(Default::default());
//! for i in 0..100 {
//!     let x = (i % 10) as f64;
//!     let y = (i / 10) as f64;
//!     tree.insert(Rect::new(x, y, x + 0.4, y + 0.4), i);
//! }
//! assert_eq!(tree.len(), 100);
//! assert_eq!(tree.count_intersecting(&Rect::new(0.0, 0.0, 4.9, 0.9)), 5);
//! tree.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulk;
mod hilbert;
mod knn;
mod node;
mod partition;
mod split;
mod tree;

pub use hilbert::{hilbert_index, hilbert_point};
pub use node::Item;
pub use partition::SubtreeSummary;
pub use tree::{ConfigError, RStarTree, RTreeConfig, ValidationError};
