//! The R\*-tree node-split algorithm.
//!
//! Given an overflowing set of entries, the R\*-tree split proceeds in two
//! phases (Beckmann et al., §4.2):
//!
//! 1. **ChooseSplitAxis** — for each axis, sort the entries by lower and by
//!    upper rectangle value; for every legal distribution (first `k` entries
//!    vs the rest, `m <= k <= |E| - m`) accumulate the *margin* (half
//!    perimeter) of the two group MBRs. The axis with the minimum margin sum
//!    wins.
//! 2. **ChooseSplitIndex** — along the chosen axis pick the distribution with
//!    the minimum *overlap* between the two group MBRs, breaking ties by
//!    minimum combined area.

use minskew_geom::{mbr_of, Rect};

/// Outcome of a split: the two entry groups.
pub(crate) struct SplitResult<E> {
    pub first: Vec<E>,
    pub second: Vec<E>,
}

/// Splits `entries` (length `>= 2 * min_entries`) into two groups per the
/// R\*-tree heuristic. `rect_of` projects an entry to its rectangle.
pub(crate) fn rstar_split<E>(
    mut entries: Vec<E>,
    min_entries: usize,
    rect_of: impl Fn(&E) -> Rect,
) -> SplitResult<E> {
    let total = entries.len();
    debug_assert!(total >= 2 * min_entries && min_entries >= 1);

    // Candidate sort orders: (axis, by-lower / by-upper).
    // We evaluate all four and remember, per axis, the summed margins.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum SortKind {
        XLo,
        XHi,
        YLo,
        YHi,
    }
    let kinds = [SortKind::XLo, SortKind::XHi, SortKind::YLo, SortKind::YHi];

    let key = |kind: SortKind, r: &Rect| -> f64 {
        match kind {
            SortKind::XLo => r.lo.x,
            SortKind::XHi => r.hi.x,
            SortKind::YLo => r.lo.y,
            SortKind::YHi => r.hi.y,
        }
    };

    // For each sort order, compute margin sum and best (overlap, area, k).
    struct OrderStats {
        margin_sum: f64,
        best_overlap: f64,
        best_area: f64,
        best_k: usize,
    }

    let mut stats: Vec<OrderStats> = Vec::with_capacity(4);
    // Evaluate an order by sorting a vector of rects (entries themselves are
    // only permuted once at the end, for the winning order).
    let rects: Vec<Rect> = entries.iter().map(&rect_of).collect();
    let mut order: Vec<usize> = (0..total).collect();

    for kind in kinds {
        order.sort_by(|&a, &b| {
            key(kind, &rects[a])
                .partial_cmp(&key(kind, &rects[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Prefix and suffix cumulative MBRs over this order.
        let mut prefix: Vec<Rect> = Vec::with_capacity(total);
        let mut acc = rects[order[0]];
        prefix.push(acc);
        for &i in &order[1..] {
            acc = acc.union(&rects[i]);
            prefix.push(acc);
        }
        let mut suffix: Vec<Rect> = vec![rects[order[total - 1]]; total];
        for j in (0..total - 1).rev() {
            suffix[j] = suffix[j + 1].union(&rects[order[j]]);
        }

        let mut margin_sum = 0.0;
        let mut best_overlap = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        let mut best_k = min_entries;
        for k in min_entries..=(total - min_entries) {
            let a = prefix[k - 1];
            let b = suffix[k];
            margin_sum += a.margin() + b.margin();
            let overlap = a.intersection_area(&b);
            let area = a.area() + b.area();
            if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
                best_overlap = overlap;
                best_area = area;
                best_k = k;
            }
        }
        stats.push(OrderStats {
            margin_sum,
            best_overlap,
            best_area,
            best_k,
        });
    }

    // ChooseSplitAxis: compare the margin sum of axis X (orders 0 + 1)
    // against axis Y (orders 2 + 3).
    let x_margin = stats[0].margin_sum + stats[1].margin_sum;
    let y_margin = stats[2].margin_sum + stats[3].margin_sum;
    let axis_orders: [usize; 2] = if x_margin <= y_margin { [0, 1] } else { [2, 3] };

    // ChooseSplitIndex: among the two sort orders of the winning axis, pick
    // the distribution with minimal overlap (tie: minimal area).
    let winner = if (
        stats[axis_orders[0]].best_overlap,
        stats[axis_orders[0]].best_area,
    ) <= (
        stats[axis_orders[1]].best_overlap,
        stats[axis_orders[1]].best_area,
    ) {
        axis_orders[0]
    } else {
        axis_orders[1]
    };
    let kind = kinds[winner];
    let k = stats[winner].best_k;

    // Final permutation of the actual entries by the winning order.
    entries.sort_by(|a, b| {
        key(kind, &rect_of(a))
            .partial_cmp(&key(kind, &rect_of(b)))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let second = entries.split_off(k);
    SplitResult {
        first: entries,
        second,
    }
}

/// Convenience: MBR of a group of entries (panics on empty groups, which a
/// legal split never produces).
pub(crate) fn group_mbr<E>(group: &[E], rect_of: impl Fn(&E) -> Rect) -> Rect {
    mbr_of(group.iter().map(rect_of)).expect("split group must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_min_entries() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::new(i as f64, 0.0, i as f64 + 0.5, 1.0))
            .collect();
        let res = rstar_split(rects, 4, |r| *r);
        assert!(res.first.len() >= 4 && res.second.len() >= 4);
        assert_eq!(res.first.len() + res.second.len(), 10);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters along x should split cleanly between
        // them with zero overlap.
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(Rect::new(i as f64 * 0.1, 0.0, i as f64 * 0.1 + 0.05, 1.0));
        }
        for i in 0..5 {
            rects.push(Rect::new(
                100.0 + i as f64 * 0.1,
                0.0,
                100.0 + i as f64 * 0.1 + 0.05,
                1.0,
            ));
        }
        let res = rstar_split(rects, 2, |r| *r);
        let a = group_mbr(&res.first, |r| *r);
        let b = group_mbr(&res.second, |r| *r);
        assert_eq!(a.intersection_area(&b), 0.0);
        // Each cluster stayed whole: 5 + 5.
        assert_eq!(res.first.len(), 5);
        assert_eq!(res.second.len(), 5);
    }

    #[test]
    fn split_chooses_long_axis() {
        // Entries spread along y, thin along x: split should cut y.
        let rects: Vec<Rect> = (0..8)
            .map(|i| Rect::new(0.0, i as f64 * 10.0, 1.0, i as f64 * 10.0 + 5.0))
            .collect();
        let res = rstar_split(rects, 3, |r| *r);
        let a = group_mbr(&res.first, |r| *r);
        let b = group_mbr(&res.second, |r| *r);
        // Groups should be stacked vertically (disjoint in y).
        assert!(a.hi.y <= b.lo.y || b.hi.y <= a.lo.y);
    }

    #[test]
    fn split_handles_identical_rects() {
        let rects = vec![Rect::new(1.0, 1.0, 2.0, 2.0); 12];
        let res = rstar_split(rects, 5, |r| *r);
        assert!(res.first.len() >= 5 && res.second.len() >= 5);
        assert_eq!(res.first.len() + res.second.len(), 12);
    }
}
