//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs a static dataset into a fully-built tree: sort by centre x,
//! cut into `S ≈ √(N/M)` vertical slabs, sort each slab by centre y, and
//! pack runs into nodes; repeat one level up over the node centres until a
//! single root remains. Chunks are sized *evenly* (instead of greedily
//! filling to `M`) so every node ends up with at least `m` entries and the
//! resulting tree passes full validation.

use crate::node::{Item, Node};
use crate::tree::{RStarTree, RTreeConfig};

/// Splits `len` elements into chunks as evenly as possible with at most
/// `max` elements each, returning the chunk lengths.
fn even_chunk_lens(len: usize, max: usize) -> Vec<usize> {
    debug_assert!(len > 0 && max > 0);
    let chunks = len.div_ceil(max);
    let base = len / chunks;
    let extra = len % chunks;
    (0..chunks)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

/// One STR tiling pass: groups `elems` into parent groups of at most
/// `max_entries`, each group spatially clustered.
fn pack_level<E>(
    mut elems: Vec<E>,
    max_entries: usize,
    center_of: impl Fn(&E) -> (f64, f64),
) -> Vec<Vec<E>> {
    let n = elems.len();
    debug_assert!(n > 0);
    if n <= max_entries {
        return vec![elems];
    }
    let node_count = n.div_ceil(max_entries);
    let slab_count = (node_count as f64).sqrt().ceil() as usize;
    elems.sort_by(|a, b| {
        center_of(a)
            .0
            .partial_cmp(&center_of(b).0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut groups = Vec::with_capacity(node_count);
    let slab_lens = even_chunk_lens(n, n.div_ceil(slab_count));
    // Consume via the iterator so chunk extraction is O(n) overall
    // (split_off-style chaining would copy the remaining tail per chunk,
    // turning bulk loading quadratic).
    let mut it = elems.into_iter();
    for slab_len in slab_lens {
        let mut slab: Vec<E> = it.by_ref().take(slab_len).collect();
        slab.sort_by(|a, b| {
            center_of(a)
                .1
                .partial_cmp(&center_of(b).1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut slab_it = slab.into_iter();
        for chunk_len in even_chunk_lens(slab_len, max_entries) {
            groups.push(slab_it.by_ref().take(chunk_len).collect());
        }
    }
    groups
}

pub(crate) fn str_bulk_load<T>(config: RTreeConfig, items: Vec<Item<T>>) -> RStarTree<T> {
    let len = items.len();
    if len == 0 {
        return RStarTree::new(config);
    }
    let item_center = |i: &Item<T>| {
        let c = i.rect.center();
        (c.x, c.y)
    };
    let mut nodes: Vec<Node<T>> = pack_level(items, config.max_entries, item_center)
        .into_iter()
        .map(Node::new_leaf)
        .collect();
    let mut height = 1;
    while nodes.len() > 1 {
        let node_center = |n: &Node<T>| {
            let c = n.mbr().center();
            (c.x, c.y)
        };
        nodes = pack_level(nodes, config.max_entries, node_center)
            .into_iter()
            .map(Node::new_internal)
            .collect();
        height += 1;
    }
    let root = nodes.pop().expect("non-empty input yields a root");
    RStarTree::from_parts(config, root, height, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Rect;

    #[test]
    fn even_chunks_are_balanced() {
        assert_eq!(even_chunk_lens(10, 4), vec![4, 3, 3]);
        assert_eq!(even_chunk_lens(8, 4), vec![4, 4]);
        assert_eq!(even_chunk_lens(3, 4), vec![3]);
        assert_eq!(even_chunk_lens(9, 4), vec![3, 3, 3]);
        for (len, max) in [(1, 1), (17, 5), (100, 16), (401, 16)] {
            let lens = even_chunk_lens(len, max);
            assert_eq!(lens.iter().sum::<usize>(), len);
            assert!(lens.iter().all(|&l| l <= max && l > 0));
            let min = lens.iter().min().unwrap();
            let max_l = lens.iter().max().unwrap();
            assert!(max_l - min <= 1, "chunks must differ by at most one");
        }
    }

    #[test]
    fn bulk_load_small_and_large() {
        for n in [0usize, 1, 5, 16, 17, 100, 3000] {
            let items: Vec<Item<usize>> = (0..n)
                .map(|i| {
                    let x = (i % 60) as f64;
                    let y = (i / 60) as f64;
                    Item::new(Rect::new(x, y, x + 0.5, y + 0.5), i)
                })
                .collect();
            let tree = RStarTree::bulk_load(RTreeConfig::default(), items);
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n = {n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rects: Vec<Rect> = (0..2500)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..20.0),
                    y + rng.gen_range(0.0..20.0),
                )
            })
            .collect();
        let items: Vec<Item<usize>> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| Item::new(*r, i))
            .collect();
        let tree = RStarTree::bulk_load(RTreeConfig::with_max_entries(32), items);
        tree.validate().unwrap();
        for _ in 0..100 {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let q = Rect::new(x, y, x + 120.0, y + 120.0);
            let exact = rects.iter().filter(|r| r.intersects(&q)).count();
            assert_eq!(tree.count_intersecting(&q), exact);
        }
    }
}
