//! Hilbert-curve utilities and Hilbert-packed bulk loading.
//!
//! The paper speculates (§3.4) that R-trees built with the data
//! distribution in mind "can be expected to produce partitions which are
//! more conducive to selectivity estimation" [TS96]. The classic
//! distribution-aware packing is the **Hilbert-packed R-tree** (Kamel &
//! Faloutsos): sort items by the Hilbert-curve index of their centres and
//! pack runs into nodes. The space-filling curve's locality keeps each
//! node's items close together, typically beating STR's slab artefacts on
//! clustered data.

use minskew_geom::Rect;

use crate::node::{Item, Node};
use crate::tree::{RStarTree, RTreeConfig};

/// Order of the discrete Hilbert curve used for packing (a 2^16 × 2^16
/// lattice: far finer than any node boundary matters).
const ORDER: u32 = 16;

/// Maps lattice coordinates `(x, y)` (each `< 2^order`) to their index on
/// the order-`order` Hilbert curve.
///
/// Classic bit-by-bit rotation algorithm; O(order) time, no recursion.
pub fn hilbert_index(mut x: u32, mut y: u32, order: u32) -> u64 {
    debug_assert!((1..=31).contains(&order));
    debug_assert!(x < (1 << order) && y < (1 << order));
    let n: u32 = 1 << order;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant (reflection over the full lattice).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_index`]: curve position to lattice coordinates.
pub fn hilbert_point(mut d: u64, order: u32) -> (u32, u32) {
    let mut x: u32 = 0;
    let mut y: u32 = 0;
    let mut s: u32 = 1;
    while s < (1 << order) {
        let rx = 1 & (d / 2) as u32;
        let ry = 1 & ((d as u32) ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        d /= 4;
        s *= 2;
    }
    (x, y)
}

/// Quantises a point into the packing lattice over `bounds`.
fn lattice_coords(cx: f64, cy: f64, bounds: &Rect) -> (u32, u32) {
    let max = ((1u32 << ORDER) - 1) as f64;
    let fx = if bounds.width() == 0.0 {
        0.0
    } else {
        ((cx - bounds.lo.x) / bounds.width()).clamp(0.0, 1.0)
    };
    let fy = if bounds.height() == 0.0 {
        0.0
    } else {
        ((cy - bounds.lo.y) / bounds.height()).clamp(0.0, 1.0)
    };
    ((fx * max) as u32, (fy * max) as u32)
}

/// Bulk loads a Hilbert-packed tree: items sorted by the Hilbert index of
/// their centres, packed into evenly-filled leaves, upper levels packed in
/// the same curve order.
pub(crate) fn hilbert_bulk_load<T>(config: RTreeConfig, mut items: Vec<Item<T>>) -> RStarTree<T> {
    let len = items.len();
    if len == 0 {
        return RStarTree::new(config);
    }
    let bounds = minskew_geom::mbr_of(items.iter().map(|i| i.rect)).expect("non-empty");
    items.sort_by_cached_key(|i| {
        let c = i.rect.center();
        let (x, y) = lattice_coords(c.x, c.y, &bounds);
        hilbert_index(x, y, ORDER)
    });
    // Pack bottom-up preserving curve order at every level.
    let mut nodes: Vec<Node<T>> = pack_run(items, config.max_entries)
        .into_iter()
        .map(Node::new_leaf)
        .collect();
    let mut height = 1;
    while nodes.len() > 1 {
        nodes = pack_run(nodes, config.max_entries)
            .into_iter()
            .map(Node::new_internal)
            .collect();
        height += 1;
    }
    let root = nodes.pop().expect("non-empty input yields a root");
    RStarTree::from_parts(config, root, height, len)
}

/// Splits an ordered run into evenly-sized chunks of at most `max` elements
/// (all chunks within one element of each other, so the `m <= M/2` minimum
/// is always respected).
fn pack_run<E>(elems: Vec<E>, max: usize) -> Vec<Vec<E>> {
    let n = elems.len();
    let chunks = n.div_ceil(max);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut it = elems.into_iter();
    for i in 0..chunks {
        let take = if i < extra { base + 1 } else { base };
        out.push(it.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Point;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hilbert_is_a_bijection_on_small_orders() {
        for order in [1u32, 2, 3, 5] {
            let n = 1u32 << order;
            let mut seen = vec![false; (n * n) as usize];
            for x in 0..n {
                for y in 0..n {
                    let d = hilbert_index(x, y, order);
                    assert!(d < (n as u64 * n as u64));
                    assert!(!seen[d as usize], "duplicate index {d}");
                    seen[d as usize] = true;
                    assert_eq!(hilbert_point(d, order), (x, y), "roundtrip at ({x},{y})");
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn hilbert_consecutive_points_are_adjacent() {
        // The defining locality property: consecutive curve positions are
        // lattice neighbours (Manhattan distance exactly 1).
        let order = 6;
        let n = 1u64 << (2 * order);
        let (mut px, mut py) = hilbert_point(0, order);
        for d in 1..n {
            let (x, y) = hilbert_point(d, order);
            let dist = x.abs_diff(px) + y.abs_diff(py);
            assert_eq!(dist, 1, "jump at d = {d}");
            (px, py) = (x, y);
        }
    }

    #[test]
    fn known_first_quadrant_order() {
        // Order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(hilbert_index(0, 0, 1), 0);
        assert_eq!(hilbert_index(0, 1, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 0, 1), 3);
    }

    #[test]
    fn hilbert_bulk_load_valid_and_query_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let rects: Vec<Rect> = (0..3_000)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..15.0),
                    y + rng.gen_range(0.0..15.0),
                )
            })
            .collect();
        let items: Vec<Item<usize>> = rects
            .iter()
            .enumerate()
            .map(|(i, &r)| Item::new(r, i))
            .collect();
        let tree = RStarTree::bulk_load_hilbert(RTreeConfig::with_max_entries(16), items);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 3_000);
        for _ in 0..80 {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let q = Rect::new(x, y, x + 90.0, y + 90.0);
            let exact = rects.iter().filter(|r| r.intersects(&q)).count();
            assert_eq!(tree.count_intersecting(&q), exact);
        }
    }

    #[test]
    fn hilbert_leaves_are_compact_on_clustered_data() {
        // Two tight clusters: Hilbert packing must not produce leaves
        // spanning both clusters (STR's slabs can).
        let mut items = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for c in [(100.0, 100.0), (900.0, 900.0)] {
            for _ in 0..160 {
                let x = c.0 + rng.gen_range(-20.0..20.0);
                let y = c.1 + rng.gen_range(-20.0..20.0);
                items.push(Item::new(Rect::from_point(Point::new(x, y)), 0u8));
            }
        }
        let tree = RStarTree::bulk_load_hilbert(RTreeConfig::with_max_entries(16), items);
        tree.validate().unwrap();
        let parts = tree.partition_frontier(40);
        for p in &parts {
            assert!(
                p.mbr.width() < 500.0,
                "a Hilbert-packed bucket spans both clusters: {}",
                p.mbr
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: RStarTree<u8> = RStarTree::bulk_load_hilbert(RTreeConfig::default(), vec![]);
        assert!(empty.is_empty());
        let one = RStarTree::bulk_load_hilbert(
            RTreeConfig::default(),
            vec![Item::new(Rect::new(0.0, 0.0, 1.0, 1.0), 9u8)],
        );
        assert_eq!(one.len(), 1);
        one.validate().unwrap();
    }
}
