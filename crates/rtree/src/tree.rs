//! The `RStarTree` container: insertion with forced reinsertion, queries,
//! and structural validation.

use std::collections::VecDeque;

use minskew_geom::Rect;

use crate::node::{Entry, Item, Node};
use crate::split::{group_mbr, rstar_split};

/// An inconsistent [`RTreeConfig`] reported by the fallible constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid R*-tree configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Tuning parameters of the tree.
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). A node holding more than `M` entries
    /// overflows and is treated by forced reinsertion or a split.
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`), `2 <= m <= M / 2`.
    pub min_entries: usize,
    /// Number of entries evicted by forced reinsertion (`p`); the R\*-tree
    /// paper found 30 % of `M` to work best.
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Creates a configuration with `m = 40 %` and `p = 30 %` of
    /// `max_entries`, the ratios recommended by the R\*-tree paper.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4`.
    pub fn with_max_entries(max_entries: usize) -> RTreeConfig {
        match RTreeConfig::try_with_max_entries(max_entries) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`RTreeConfig::with_max_entries`]: returns an
    /// error instead of panicking when `max_entries < 4`.
    pub fn try_with_max_entries(max_entries: usize) -> Result<RTreeConfig, ConfigError> {
        if max_entries < 4 {
            return Err(ConfigError(format!(
                "max_entries must be at least 4, got {max_entries}"
            )));
        }
        let min_entries = ((max_entries as f64 * 0.4).round() as usize).clamp(2, max_entries / 2);
        let reinsert_count = ((max_entries as f64 * 0.3).round() as usize).max(1);
        Ok(RTreeConfig {
            max_entries,
            min_entries,
            reinsert_count,
        })
    }

    /// Checks internal consistency, reporting the first violated constraint.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.max_entries < 4 {
            return Err(ConfigError("max_entries must be at least 4".into()));
        }
        if !(self.min_entries >= 2 && self.min_entries <= self.max_entries / 2) {
            return Err(ConfigError("min_entries must satisfy 2 <= m <= M/2".into()));
        }
        if !(self.reinsert_count >= 1 && self.reinsert_count <= self.max_entries - self.min_entries)
        {
            return Err(ConfigError(
                "reinsert_count must satisfy 1 <= p <= M - m".into(),
            ));
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

impl Default for RTreeConfig {
    /// `M = 16`, `m = 6`, `p = 5`.
    fn default() -> RTreeConfig {
        RTreeConfig::with_max_entries(16)
    }
}

/// A structural-invariant violation reported by [`RStarTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R*-tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

/// An R\*-tree over rectangles with caller payloads.
///
/// See the crate docs for the role this structure plays in the paper
/// reproduction. All operations are single-threaded; the evaluation harness
/// builds one tree per dataset and queries it read-only.
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    config: RTreeConfig,
    root: Node<T>,
    /// Number of levels; leaves are level 0, the root is `height - 1`.
    height: usize,
    len: usize,
}

enum Pending<T> {
    None,
    /// The visited child split; this is the new sibling to add one level up.
    Split(Node<T>),
    /// Forced reinsertion evicted these entries from a node at the given
    /// level; they must be re-inserted from the root.
    Reinsert(Vec<Entry<T>>, usize),
}

impl<T> RStarTree<T> {
    /// Creates an empty tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`RTreeConfig`]).
    pub fn new(config: RTreeConfig) -> RStarTree<T> {
        config.validate();
        RStarTree {
            config,
            root: Node::empty_leaf(),
            height: 1,
            len: 0,
        }
    }

    /// Fallible counterpart of [`RStarTree::new`].
    pub fn try_new(config: RTreeConfig) -> Result<RStarTree<T>, ConfigError> {
        config.try_validate()?;
        Ok(RStarTree {
            config,
            root: Node::empty_leaf(),
            height: 1,
            len: 0,
        })
    }

    /// Bulk loads a tree from items using Sort-Tile-Recursive packing.
    ///
    /// Much faster than repeated insertion for static datasets
    /// (`O(N log N)` comparison work, perfectly packed nodes) at the price
    /// of slightly worse query-time clustering than true R\*-insertion.
    pub fn bulk_load(config: RTreeConfig, items: Vec<Item<T>>) -> RStarTree<T> {
        config.validate();
        crate::bulk::str_bulk_load(config, items)
    }

    /// Fallible counterpart of [`RStarTree::bulk_load`].
    pub fn try_bulk_load(
        config: RTreeConfig,
        items: Vec<Item<T>>,
    ) -> Result<RStarTree<T>, ConfigError> {
        config.try_validate()?;
        Ok(crate::bulk::str_bulk_load(config, items))
    }

    /// Bulk loads a tree by **Hilbert packing** (Kamel & Faloutsos): items
    /// sorted along a Hilbert space-filling curve and packed in runs.
    ///
    /// Compared to STR, the curve's locality avoids slab artefacts on
    /// clustered data, which also makes the internal-node MBRs better
    /// histogram buckets — the property the paper speculates about via
    /// \[TS96\].
    pub fn bulk_load_hilbert(config: RTreeConfig, items: Vec<Item<T>>) -> RStarTree<T> {
        config.validate();
        crate::hilbert::hilbert_bulk_load(config, items)
    }

    /// Fallible counterpart of [`RStarTree::bulk_load_hilbert`].
    pub fn try_bulk_load_hilbert(
        config: RTreeConfig,
        items: Vec<Item<T>>,
    ) -> Result<RStarTree<T>, ConfigError> {
        config.try_validate()?;
        Ok(crate::hilbert::hilbert_bulk_load(config, items))
    }

    pub(crate) fn from_parts(
        config: RTreeConfig,
        root: Node<T>,
        height: usize,
        len: usize,
    ) -> RStarTree<T> {
        RStarTree {
            config,
            root,
            height,
            len,
        }
    }

    /// Number of items stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a tree that is a single leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration the tree was built with.
    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// MBR of the whole tree (meaningless for an empty tree).
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.root.mbr()
    }

    pub(crate) fn root(&self) -> &Node<T> {
        &self.root
    }

    /// Inserts an item, applying the full R\*-tree algorithm
    /// (ChooseSubtree, forced reinsertion, margin-based splits).
    pub fn insert(&mut self, rect: Rect, data: T) {
        self.len += 1;
        self.insert_entries([(Entry::Item(Item::new(rect, data)), 0)]);
    }

    /// Drives the insertion queue for one or more (entry, target level)
    /// pairs — the shared machinery behind [`Self::insert`] and the orphan
    /// reinsertion of [`Self::remove`].
    fn insert_entries(&mut self, entries: impl IntoIterator<Item = (Entry<T>, usize)>) {
        // Forced reinsertion fires at most once per level per insertion.
        let mut mask = vec![false; self.height];
        let mut queue: VecDeque<(Entry<T>, usize)> = entries.into_iter().collect();
        while let Some((entry, level)) = queue.pop_front() {
            let root_level = self.height - 1;
            let pending = Self::insert_rec(
                &self.config,
                &mut self.root,
                root_level,
                entry,
                level,
                &mut mask,
                true,
            );
            match pending {
                Pending::None => {}
                Pending::Split(sibling) => {
                    // Grow the tree: the old root and its new sibling become
                    // children of a fresh root.
                    let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
                    self.root = Node::new_internal(vec![old_root, sibling]);
                    self.height += 1;
                    mask.push(false);
                }
                Pending::Reinsert(entries, lvl) => {
                    for e in entries {
                        queue.push_back((e, lvl));
                    }
                }
            }
        }
    }

    fn insert_rec(
        config: &RTreeConfig,
        node: &mut Node<T>,
        node_level: usize,
        entry: Entry<T>,
        insert_level: usize,
        mask: &mut [bool],
        is_root: bool,
    ) -> Pending<T> {
        debug_assert!(node_level >= insert_level);
        if node_level == insert_level {
            let was_empty = node.entry_count() == 0;
            let entry_rect = entry.rect();
            match (node, entry) {
                (Node::Leaf { mbr, items }, Entry::Item(item)) => {
                    items.push(item);
                    *mbr = if was_empty {
                        entry_rect
                    } else {
                        mbr.union(&entry_rect)
                    };
                    if items.len() > config.max_entries {
                        return Self::overflow(
                            config,
                            Node::leaf_parts(mbr, items),
                            node_level,
                            mask,
                            is_root,
                        );
                    }
                }
                (Node::Internal { mbr, children }, Entry::Child(child)) => {
                    children.push(child);
                    *mbr = if was_empty {
                        entry_rect
                    } else {
                        mbr.union(&entry_rect)
                    };
                    if children.len() > config.max_entries {
                        return Self::overflow(
                            config,
                            Node::internal_parts(mbr, children),
                            node_level,
                            mask,
                            is_root,
                        );
                    }
                }
                _ => unreachable!("entry kind does not match node kind at its level"),
            }
            return Pending::None;
        }

        let Node::Internal { mbr, children } = node else {
            unreachable!("internal levels must contain internal nodes")
        };
        let idx = Self::choose_subtree(children, entry.rect(), node_level == 1);
        let pending = Self::insert_rec(
            config,
            &mut children[idx],
            node_level - 1,
            entry,
            insert_level,
            mask,
            false,
        );
        match pending {
            Pending::None => {
                *mbr = mbr.union(&children[idx].mbr());
                Pending::None
            }
            Pending::Split(sibling) => {
                children.push(sibling);
                // Recompute: the split redistributed the child's entries, so
                // its MBR may have shrunk in addition to the new sibling.
                let mut recomputed = minskew_geom::mbr_of(children.iter().map(|c| c.mbr()))
                    .expect("internal node has children");
                std::mem::swap(mbr, &mut recomputed);
                if children.len() > config.max_entries {
                    Self::overflow(
                        config,
                        Node::internal_parts(mbr, children),
                        node_level,
                        mask,
                        is_root,
                    )
                } else {
                    Pending::None
                }
            }
            Pending::Reinsert(entries, lvl) => {
                // The subtree lost entries; shrink MBRs along the path.
                *mbr = minskew_geom::mbr_of(children.iter().map(|c| c.mbr()))
                    .expect("internal node has children");
                Pending::Reinsert(entries, lvl)
            }
        }
    }

    /// R\*-tree overflow treatment: forced reinsertion the first time a
    /// level overflows during one insertion, a split afterwards (and always
    /// at the root).
    fn overflow(
        config: &RTreeConfig,
        node: NodeParts<'_, T>,
        level: usize,
        mask: &mut [bool],
        is_root: bool,
    ) -> Pending<T> {
        if !is_root && level < mask.len() && !mask[level] {
            mask[level] = true;
            Pending::Reinsert(Self::evict_farthest(config, node), level)
        } else {
            Pending::Split(Self::split_node(config, node))
        }
    }

    /// Removes the `p` entries whose centres lie farthest from the node's
    /// MBR centre, returning them ordered closest-first ("close reinsert").
    fn evict_farthest(config: &RTreeConfig, node: NodeParts<'_, T>) -> Vec<Entry<T>> {
        let p = config.reinsert_count;
        match node {
            NodeParts::Leaf(mbr, items) => {
                let center = mbr.center();
                items.sort_by(|a, b| {
                    let da = a.rect.center().dist2(&center);
                    let db = b.rect.center().dist2(&center);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                });
                let keep = items.len() - p;
                let removed: Vec<Entry<T>> = items.drain(keep..).map(Entry::Item).collect();
                *mbr = minskew_geom::mbr_of(items.iter().map(|i| i.rect))
                    .expect("leaf keeps at least m entries");
                removed
            }
            NodeParts::Internal(mbr, children) => {
                let center = mbr.center();
                children.sort_by(|a, b| {
                    let da = a.mbr().center().dist2(&center);
                    let db = b.mbr().center().dist2(&center);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                });
                let keep = children.len() - p;
                let removed: Vec<Entry<T>> = children.drain(keep..).map(Entry::Child).collect();
                *mbr = minskew_geom::mbr_of(children.iter().map(|c| c.mbr()))
                    .expect("internal node keeps at least m entries");
                removed
            }
        }
    }

    /// Splits an overflowing node in place; returns the new sibling.
    fn split_node(config: &RTreeConfig, node: NodeParts<'_, T>) -> Node<T> {
        match node {
            NodeParts::Leaf(mbr, items) => {
                let all = std::mem::take(items);
                let res = rstar_split(all, config.min_entries, |i: &Item<T>| i.rect);
                *items = res.first;
                *mbr = group_mbr(items, |i| i.rect);
                Node::new_leaf(res.second)
            }
            NodeParts::Internal(mbr, children) => {
                let all = std::mem::take(children);
                let res = rstar_split(all, config.min_entries, |c: &Node<T>| c.mbr());
                *children = res.first;
                *mbr = group_mbr(children, |c| c.mbr());
                Node::new_internal(res.second)
            }
        }
    }

    /// R\*-tree ChooseSubtree: overlap-enlargement criterion for parents of
    /// leaves, area-enlargement criterion above.
    fn choose_subtree(children: &[Node<T>], rect: Rect, children_are_leaves: bool) -> usize {
        debug_assert!(!children.is_empty());
        if children_are_leaves {
            // Minimise overlap enlargement; resolve ties by area
            // enlargement, then area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, child) in children.iter().enumerate() {
                let enlarged = child.mbr().union(&rect);
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                for (j, other) in children.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_before += child.mbr().intersection_area(&other.mbr());
                    overlap_after += enlarged.intersection_area(&other.mbr());
                }
                let key = (
                    overlap_after - overlap_before,
                    enlarged.area() - child.mbr().area(),
                    child.mbr().area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, child) in children.iter().enumerate() {
                let key = (child.mbr().enlargement(&rect), child.mbr().area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// Removes one item equal to `(rect, data)`, returning `true` if found.
    ///
    /// Implements the classic delete: locate the leaf, remove the entry,
    /// then *condense* — nodes that underflow below `m` entries are
    /// dissolved and their entries reinserted at their original levels —
    /// and finally shrink the root while it has a single child.
    pub fn remove(&mut self, rect: &Rect, data: &T) -> bool
    where
        T: PartialEq,
    {
        let root_level = self.height - 1;
        let mut orphans: Vec<(Entry<T>, usize)> = Vec::new();
        let min_entries = self.config.min_entries;
        if !Self::remove_rec(
            min_entries,
            &mut self.root,
            root_level,
            rect,
            data,
            &mut orphans,
        ) {
            return false;
        }
        self.len -= 1;
        // Shrink the root while it is an internal node with one child.
        loop {
            let single =
                matches!(&self.root, Node::Internal { children, .. } if children.len() == 1);
            if !single {
                break;
            }
            let Node::Internal { children, .. } =
                std::mem::replace(&mut self.root, Node::empty_leaf())
            else {
                unreachable!()
            };
            self.root = children.into_iter().next().expect("checked above");
            self.height -= 1;
        }
        if self.len == 0 {
            // Drop a stale-MBR empty leaf left behind by the last removal.
            self.root = Node::empty_leaf();
            self.height = 1;
        }
        self.insert_entries(orphans);
        true
    }

    /// Recursive removal + condense. Returns `true` if the item was found
    /// and removed somewhere below `node`.
    fn remove_rec(
        min_entries: usize,
        node: &mut Node<T>,
        node_level: usize,
        rect: &Rect,
        data: &T,
        orphans: &mut Vec<(Entry<T>, usize)>,
    ) -> bool
    where
        T: PartialEq,
    {
        match node {
            Node::Leaf { mbr, items } => {
                let Some(pos) = items
                    .iter()
                    .position(|i| i.rect == *rect && i.data == *data)
                else {
                    return false;
                };
                items.swap_remove(pos);
                if !items.is_empty() {
                    *mbr =
                        minskew_geom::mbr_of(items.iter().map(|i| i.rect)).expect("non-empty leaf");
                }
                true
            }
            Node::Internal { mbr, children } => {
                let mut removed_at = None;
                for (idx, child) in children.iter_mut().enumerate() {
                    if !child.mbr().contains_rect(rect) {
                        continue;
                    }
                    if Self::remove_rec(min_entries, child, node_level - 1, rect, data, orphans) {
                        removed_at = Some(idx);
                        break;
                    }
                }
                let Some(idx) = removed_at else { return false };
                if children[idx].entry_count() < min_entries {
                    // Condense: dissolve the underflowing child and queue
                    // its entries for reinsertion at their levels.
                    let orphan = children.swap_remove(idx);
                    match orphan {
                        Node::Leaf { items, .. } => {
                            orphans.extend(items.into_iter().map(|i| (Entry::Item(i), 0)));
                        }
                        Node::Internal {
                            children: grand, ..
                        } => {
                            // `grand` nodes live at node_level - 2 and must be
                            // re-attached as children of (node_level - 1)-level
                            // nodes.
                            orphans.extend(
                                grand.into_iter().map(|g| (Entry::Child(g), node_level - 1)),
                            );
                        }
                    }
                }
                if !children.is_empty() {
                    *mbr = minskew_geom::mbr_of(children.iter().map(|c| c.mbr()))
                        .expect("non-empty internal node");
                }
                true
            }
        }
    }

    /// Number of items whose rectangles intersect `query` (the exact result
    /// size of the paper's range queries).
    pub fn count_intersecting(&self, query: &Rect) -> usize {
        fn rec<T>(node: &Node<T>, query: &Rect) -> usize {
            if !node.mbr().intersects(query) {
                return 0;
            }
            match node {
                Node::Leaf { items, .. } => {
                    items.iter().filter(|i| i.rect.intersects(query)).count()
                }
                Node::Internal { children, .. } => children.iter().map(|c| rec(c, query)).sum(),
            }
        }
        if self.len == 0 {
            return 0;
        }
        rec(&self.root, query)
    }

    /// Invokes `f` on every item intersecting `query`.
    pub fn for_each_intersecting(&self, query: &Rect, mut f: impl FnMut(&Item<T>)) {
        fn rec<'a, T>(node: &'a Node<T>, query: &Rect, f: &mut impl FnMut(&'a Item<T>)) {
            if !node.mbr().intersects(query) {
                return;
            }
            match node {
                Node::Leaf { items, .. } => {
                    for item in items.iter().filter(|i| i.rect.intersects(query)) {
                        f(item);
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        rec(c, query, f);
                    }
                }
            }
        }
        if self.len == 0 {
            return;
        }
        rec(&self.root, query, &mut f);
    }

    /// Collects references to every item intersecting `query`.
    pub fn query_collect(&self, query: &Rect) -> Vec<&Item<T>> {
        fn rec<'a, T>(node: &'a Node<T>, query: &Rect, out: &mut Vec<&'a Item<T>>) {
            if !node.mbr().intersects(query) {
                return;
            }
            match node {
                Node::Leaf { items, .. } => {
                    out.extend(items.iter().filter(|i| i.rect.intersects(query)));
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        rec(c, query, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        if self.len > 0 {
            rec(&self.root, query, &mut out);
        }
        out
    }

    /// Visits every item in the tree (storage order, not spatial order).
    pub fn for_each(&self, mut f: impl FnMut(&Item<T>)) {
        fn rec<'a, T>(node: &'a Node<T>, f: &mut impl FnMut(&'a Item<T>)) {
            match node {
                Node::Leaf { items, .. } => items.iter().for_each(&mut *f),
                Node::Internal { children, .. } => {
                    for c in children {
                        rec(c, f);
                    }
                }
            }
        }
        if self.len > 0 {
            rec(&self.root, &mut f);
        }
    }

    /// Checks every structural invariant of the tree. Used by tests and
    /// available to callers embedding the tree in larger systems.
    ///
    /// Invariants: uniform leaf depth; entry counts in `[m, M]` for non-root
    /// nodes (the root needs `>= 2` children when internal); stored MBRs
    /// exactly equal the union of their entries; stored item count matches.
    pub fn validate(&self) -> Result<(), ValidationError> {
        fn rec<T>(
            node: &Node<T>,
            level: usize,
            is_root: bool,
            cfg: &RTreeConfig,
            leaf_level_seen: &mut Option<usize>,
        ) -> Result<usize, ValidationError> {
            let count = node.entry_count();
            if !is_root && (count < cfg.min_entries || count > cfg.max_entries) {
                return Err(ValidationError(format!(
                    "node at level {level} has {count} entries (allowed {}..={})",
                    cfg.min_entries, cfg.max_entries
                )));
            }
            match node {
                Node::Leaf { mbr, items } => {
                    match leaf_level_seen {
                        Some(l) if *l != level => {
                            return Err(ValidationError(format!(
                                "leaves at different depths: {l} vs {level}"
                            )))
                        }
                        None => *leaf_level_seen = Some(level),
                        _ => {}
                    }
                    if !items.is_empty() {
                        let recomputed =
                            minskew_geom::mbr_of(items.iter().map(|i| i.rect)).unwrap();
                        if recomputed != *mbr {
                            return Err(ValidationError(format!(
                                "leaf MBR stale: stored {mbr}, recomputed {recomputed}"
                            )));
                        }
                    }
                    Ok(items.len())
                }
                Node::Internal { mbr, children } => {
                    if is_root && children.len() < 2 {
                        return Err(ValidationError(
                            "internal root must have at least two children".into(),
                        ));
                    }
                    if level == 0 {
                        return Err(ValidationError("internal node at leaf level".into()));
                    }
                    let recomputed =
                        minskew_geom::mbr_of(children.iter().map(|c| c.mbr())).unwrap();
                    if recomputed != *mbr {
                        return Err(ValidationError(format!(
                            "internal MBR stale: stored {mbr}, recomputed {recomputed}"
                        )));
                    }
                    let mut total = 0;
                    for c in children {
                        total += rec(c, level - 1, false, cfg, leaf_level_seen)?;
                    }
                    Ok(total)
                }
            }
        }
        let mut leaf_level = None;
        let total = rec(
            &self.root,
            self.height - 1,
            true,
            &self.config,
            &mut leaf_level,
        )?;
        if total != self.len {
            return Err(ValidationError(format!(
                "stored len {} but {total} items reachable",
                self.len
            )));
        }
        if let Some(l) = leaf_level {
            if l != 0 {
                return Err(ValidationError(format!("leaves at level {l}, expected 0")));
            }
        }
        Ok(())
    }
}

/// Borrowed decomposition of a node used by overflow treatment, which needs
/// to mutate the entry vector and the MBR of the *same* node the caller has
/// already matched on.
enum NodeParts<'a, T> {
    Leaf(&'a mut Rect, &'a mut Vec<Item<T>>),
    Internal(&'a mut Rect, &'a mut Vec<Node<T>>),
}

impl<T> Node<T> {
    fn leaf_parts<'a>(mbr: &'a mut Rect, items: &'a mut Vec<Item<T>>) -> NodeParts<'a, T> {
        NodeParts::Leaf(mbr, items)
    }

    fn internal_parts<'a>(mbr: &'a mut Rect, children: &'a mut Vec<Node<T>>) -> NodeParts<'a, T> {
        NodeParts::Internal(mbr, children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n_side: usize) -> Vec<(Rect, usize)> {
        let mut v = Vec::new();
        for iy in 0..n_side {
            for ix in 0..n_side {
                let (x, y) = (ix as f64, iy as f64);
                v.push((Rect::new(x, y, x + 0.6, y + 0.6), iy * n_side + ix));
            }
        }
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t: RStarTree<u32> = RStarTree::new(RTreeConfig::default());
        assert!(t.is_empty());
        assert_eq!(t.count_intersecting(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        assert!(t.query_collect(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn insert_and_count_small() {
        let mut t = RStarTree::new(RTreeConfig::default());
        for (r, d) in grid_items(5) {
            t.insert(r, d);
        }
        assert_eq!(t.len(), 25);
        t.validate().unwrap();
        // A query covering the bottom row.
        assert_eq!(t.count_intersecting(&Rect::new(0.0, 0.0, 4.6, 0.6)), 5);
        // Whole space.
        assert_eq!(t.count_intersecting(&t.mbr()), 25);
        // Far away.
        assert_eq!(t.count_intersecting(&Rect::new(50.0, 50.0, 60.0, 60.0)), 0);
    }

    #[test]
    fn grows_multiple_levels_and_stays_valid() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        for (r, d) in grid_items(20) {
            t.insert(r, d);
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 3, "height = {}", t.height());
        t.validate().unwrap();
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let rects: Vec<Rect> = (0..800)
            .map(|_| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let w = rng.gen_range(0.0..30.0);
                let h = rng.gen_range(0.0..30.0);
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i);
        }
        t.validate().unwrap();
        for _ in 0..200 {
            let x = rng.gen_range(-50.0..1050.0);
            let y = rng.gen_range(-50.0..1050.0);
            let w = rng.gen_range(0.0..200.0);
            let h = rng.gen_range(0.0..200.0);
            let q = Rect::new(x, y, x + w, y + h);
            let exact = rects.iter().filter(|r| r.intersects(&q)).count();
            assert_eq!(t.count_intersecting(&q), exact);
            assert_eq!(t.query_collect(&q).len(), exact);
        }
    }

    #[test]
    fn duplicate_rectangles_are_retained() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        for i in 0..50 {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
        assert_eq!(t.count_intersecting(&r), 50);
    }

    #[test]
    fn for_each_visits_all_matches() {
        let mut t = RStarTree::new(RTreeConfig::default());
        for (r, d) in grid_items(10) {
            t.insert(r, d);
        }
        let mut seen = Vec::new();
        t.for_each_intersecting(&Rect::new(0.0, 0.0, 9.6, 0.6), |i| seen.push(i.data));
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn remove_simple() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        let items = grid_items(6);
        for (r, d) in &items {
            t.insert(*r, *d);
        }
        assert_eq!(t.len(), 36);
        // Remove half the items, validating as we go.
        for (r, d) in items.iter().take(18) {
            assert!(t.remove(r, d), "item {d} should be present");
            t.validate().unwrap();
        }
        assert_eq!(t.len(), 18);
        // Removed items are gone; the rest remain findable.
        for (i, (r, d)) in items.iter().enumerate() {
            let found = t
                .query_collect(r)
                .iter()
                .any(|it| it.rect == *r && it.data == *d);
            assert_eq!(found, i >= 18, "item {d}");
        }
        // Removing a missing item is a no-op returning false.
        assert!(!t.remove(&items[0].0, &items[0].1));
        assert_eq!(t.len(), 18);
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        let items = grid_items(8);
        for (r, d) in &items {
            t.insert(*r, *d);
        }
        for (r, d) in &items {
            assert!(t.remove(r, d));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
        assert_eq!(t.count_intersecting(&Rect::new(-1e9, -1e9, 1e9, 1e9)), 0);
        // The tree is reusable after being emptied.
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 0);
        assert_eq!(t.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn interleaved_insert_remove_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(6));
        let mut live: Vec<(Rect, usize)> = Vec::new();
        let mut next_id = 0usize;
        for step in 0..2_000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let x = rng.gen_range(0.0..500.0);
                let y = rng.gen_range(0.0..500.0);
                let r = Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.0..20.0),
                    y + rng.gen_range(0.0..20.0),
                );
                t.insert(r, next_id);
                live.push((r, next_id));
                next_id += 1;
            } else {
                let k = rng.gen_range(0..live.len());
                let (r, d) = live.swap_remove(k);
                assert!(t.remove(&r, &d), "step {step}: {d} must be removable");
            }
            if step % 200 == 0 {
                t.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), live.len());
        for _ in 0..50 {
            let x = rng.gen_range(0.0..500.0);
            let y = rng.gen_range(0.0..500.0);
            let q = Rect::new(x, y, x + 60.0, y + 60.0);
            let exact = live.iter().filter(|(r, _)| r.intersects(&q)).count();
            assert_eq!(t.count_intersecting(&q), exact);
        }
    }

    #[test]
    fn for_each_visits_everything_once() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        for (r, d) in grid_items(9) {
            t.insert(r, d);
        }
        let mut seen = Vec::new();
        t.for_each(|item| seen.push(item.data));
        seen.sort_unstable();
        assert_eq!(seen, (0..81).collect::<Vec<_>>());
        let empty: RStarTree<u8> = RStarTree::new(RTreeConfig::default());
        let mut any = false;
        empty.for_each(|_| any = true);
        assert!(!any);
    }

    #[test]
    fn config_validation() {
        let cfg = RTreeConfig::with_max_entries(10);
        assert_eq!(cfg.min_entries, 4);
        assert_eq!(cfg.reinsert_count, 3);
    }

    #[test]
    #[should_panic(expected = "max_entries")]
    fn tiny_max_entries_rejected() {
        RTreeConfig::with_max_entries(3);
    }

    #[test]
    fn fallible_constructors_report_bad_configs() {
        assert!(RTreeConfig::try_with_max_entries(3).is_err());
        let cfg = RTreeConfig::try_with_max_entries(8).expect("valid capacity");
        assert!(cfg.try_validate().is_ok());
        let broken = RTreeConfig {
            max_entries: 8,
            min_entries: 7, // > M/2
            reinsert_count: 1,
        };
        assert!(broken.try_validate().is_err());
        assert!(RStarTree::<usize>::try_new(broken).is_err());
        assert!(RStarTree::<usize>::try_bulk_load(broken, vec![]).is_err());
        assert!(RStarTree::<usize>::try_bulk_load_hilbert(broken, vec![]).is_err());
        // The Ok paths build real trees.
        let items: Vec<Item<usize>> = (0..40)
            .map(|i| Item::new(Rect::new(i as f64, 0.0, i as f64 + 0.5, 1.0), i))
            .collect();
        let t = RStarTree::try_bulk_load(cfg, items.clone()).expect("valid config");
        assert_eq!(t.len(), 40);
        t.validate().expect("bulk-loaded tree is well-formed");
        let h = RStarTree::try_bulk_load_hilbert(cfg, items).expect("valid config");
        assert_eq!(h.len(), 40);
    }
}
