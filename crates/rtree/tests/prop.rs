//! Property-based stress tests: arbitrary operation sequences must keep the
//! tree structurally valid and query-equivalent to a naive shadow set.

#![cfg(feature = "proptest")]

use minskew_geom::{Point, Rect};
use minskew_rtree::{RStarTree, RTreeConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Rect),
    /// Remove the live item at this (modular) position.
    RemoveAt(usize),
    Query(Rect),
    Knn(Point, usize),
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..500.0f64, 0.0..500.0f64, 0.0..40.0f64, 0.0..40.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_rect().prop_map(Op::Insert),
        2 => any::<usize>().prop_map(Op::RemoveAt),
        2 => arb_rect().prop_map(Op::Query),
        1 => ((0.0..500.0f64, 0.0..500.0f64), 1usize..8)
            .prop_map(|((x, y), k)| Op::Knn(Point::new(x, y), k)),
    ]
}

fn min_dist2(p: Point, r: &Rect) -> f64 {
    let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
    let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
    dx * dx + dy * dy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_sequences_stay_consistent(
        ops in proptest::collection::vec(arb_op(), 1..300),
        max_entries in 4usize..24,
    ) {
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(max_entries));
        let mut shadow: Vec<(Rect, usize)> = Vec::new();
        let mut next_id = 0usize;
        for op in ops {
            match op {
                Op::Insert(r) => {
                    tree.insert(r, next_id);
                    shadow.push((r, next_id));
                    next_id += 1;
                }
                Op::RemoveAt(pos) => {
                    if !shadow.is_empty() {
                        let (r, id) = shadow.swap_remove(pos % shadow.len());
                        prop_assert!(tree.remove(&r, &id));
                    }
                }
                Op::Query(q) => {
                    let expected = shadow.iter().filter(|(r, _)| r.intersects(&q)).count();
                    prop_assert_eq!(tree.count_intersecting(&q), expected);
                    let mut got: Vec<usize> =
                        tree.query_collect(&q).iter().map(|i| i.data).collect();
                    got.sort_unstable();
                    let mut want: Vec<usize> = shadow
                        .iter()
                        .filter(|(r, _)| r.intersects(&q))
                        .map(|&(_, id)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Knn(p, k) => {
                    let got = tree.nearest_neighbors(p, k);
                    prop_assert_eq!(got.len(), k.min(shadow.len()));
                    // Distances must match the k smallest shadow distances.
                    let mut dists: Vec<f64> =
                        shadow.iter().map(|(r, _)| min_dist2(p, r)).collect();
                    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    for (i, item) in got.iter().enumerate() {
                        let d = min_dist2(p, &item.rect);
                        prop_assert!((d - dists[i]).abs() < 1e-9);
                    }
                }
            }
            prop_assert_eq!(tree.len(), shadow.len());
        }
        tree.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn bulk_load_equals_insertion_results(
        rects in proptest::collection::vec(arb_rect(), 0..400),
        q in arb_rect(),
    ) {
        let items: Vec<_> = rects
            .iter()
            .enumerate()
            .map(|(i, &r)| minskew_rtree::Item::new(r, i))
            .collect();
        let bulk = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), items);
        bulk.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut incremental = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (i, &r) in rects.iter().enumerate() {
            incremental.insert(r, i);
        }
        prop_assert_eq!(bulk.count_intersecting(&q), incremental.count_intersecting(&q));
    }
}
