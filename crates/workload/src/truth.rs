//! Exact ground-truth result sizes via a bulk-loaded R\*-tree.

use minskew_data::Dataset;
use minskew_geom::Rect;
use minskew_rtree::{Item, RStarTree, RTreeConfig};

/// Exact query-result sizes for a dataset.
///
/// Wraps an STR-bulk-loaded R\*-tree; answering a query costs roughly
/// `O(√N + k)` instead of the `O(N)` scan, which is what makes evaluating
/// 10 000 queries per experiment point over 400 000+ rectangles practical.
pub struct GroundTruth {
    tree: RStarTree<()>,
    /// Dataset MBR cached at index time: queries disjoint from it are
    /// answered without touching the tree at all.
    mbr: Rect,
    n: usize,
}

impl GroundTruth {
    /// Indexes the dataset (STR bulk load, high fan-out for read-only use).
    pub fn index(data: &Dataset) -> GroundTruth {
        let items = data.rects().iter().map(|&r| Item::new(r, ())).collect();
        GroundTruth {
            tree: RStarTree::bulk_load(RTreeConfig::with_max_entries(64), items),
            mbr: data.stats().mbr,
            n: data.len(),
        }
    }

    /// Exact number of input rectangles intersecting `query`.
    ///
    /// Short-circuits when the query is disjoint from the dataset MBR (or
    /// the dataset is empty): workload generators and auto-tuning sweeps
    /// probe far outside the populated domain constantly, and those queries
    /// should cost a rectangle test, not a tree descent per call.
    pub fn count(&self, query: &Rect) -> usize {
        if self.n == 0 || !query.intersects(&self.mbr) {
            return 0;
        }
        self.tree.count_intersecting(query)
    }

    /// Exact counts for a batch of queries, spread across `threads` worker
    /// threads (`1` = inline serial, `0` = one worker per available core).
    ///
    /// Counts are integers computed independently per query and written
    /// back at the query's index, so the output is identical at every
    /// thread count. Queries fan out through a chunked work queue rather
    /// than static chunks: result sizes (and thus per-query cost) span
    /// orders of magnitude, and a static split would let one dense region
    /// serialize the whole batch.
    pub fn counts_with_threads(&self, queries: &[Rect], threads: usize) -> Vec<usize> {
        // 32 queries per chunk: coarse enough to amortise the queue's
        // atomic increment, fine enough to balance skewed workloads.
        minskew_par::map_chunks_queued(threads, 32, queries, |q| self.count(q))
    }

    /// Exact counts for a batch of queries.
    ///
    /// Large batches are spread across all available cores (the tree is
    /// read-only); small batches run inline to avoid thread overhead.
    pub fn counts(&self, queries: &[Rect]) -> Vec<usize> {
        let threads = if queries.len() < 256 {
            1
        } else {
            minskew_par::effective_threads(0)
        };
        self.counts_with_threads(queries, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    #[test]
    fn matches_brute_force() {
        let ds = charminar_with(3_000, 1);
        let gt = GroundTruth::index(&ds);
        for (i, q) in [
            Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
            Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0),
            Rect::new(9_000.0, 0.0, 10_000.0, 1_000.0),
            Rect::new(5_000.0, 5_000.0, 5_000.0, 5_000.0),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                gt.count(q),
                ds.count_intersecting(q),
                "query {i} disagrees with the scan"
            );
        }
    }

    #[test]
    fn batch_counts() {
        let ds = charminar_with(1_000, 2);
        let gt = GroundTruth::index(&ds);
        let queries = vec![Rect::new(0.0, 0.0, 5_000.0, 5_000.0); 3];
        let counts = gt.counts(&queries);
        assert_eq!(counts.len(), 3);
        assert!(counts.iter().all(|&c| c == counts[0]));
    }

    #[test]
    fn disjoint_queries_short_circuit_and_stay_exact() {
        let ds = charminar_with(2_000, 3);
        let gt = GroundTruth::index(&ds);
        let mbr = ds.stats().mbr;
        // Entirely outside the domain on every side, plus one query just
        // *touching* the MBR edge — touching is an intersection and must
        // NOT be short-circuited away.
        let outside = [
            Rect::new(mbr.hi.x + 1.0, mbr.lo.y, mbr.hi.x + 100.0, mbr.hi.y),
            Rect::new(mbr.lo.x, mbr.hi.y + 1.0, mbr.hi.x, mbr.hi.y + 50.0),
            Rect::new(
                mbr.lo.x - 500.0,
                mbr.lo.y - 500.0,
                mbr.lo.x - 1.0,
                mbr.lo.y - 1.0,
            ),
        ];
        for q in &outside {
            assert_eq!(gt.count(q), 0);
            assert_eq!(gt.count(q), ds.count_intersecting(q));
        }
        let touching = Rect::new(mbr.hi.x, mbr.lo.y, mbr.hi.x + 10.0, mbr.hi.y);
        assert_eq!(gt.count(&touching), ds.count_intersecting(&touching));
        // Empty dataset: every query short-circuits to zero.
        let empty = GroundTruth::index(&Dataset::new(vec![]));
        assert_eq!(empty.count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
    }

    #[test]
    fn threaded_batch_counts_equal_serial() {
        let ds = charminar_with(4_000, 5);
        let gt = GroundTruth::index(&ds);
        // A mix of dense, sparse, disjoint, point, and touching queries.
        let mbr = ds.stats().mbr;
        let queries: Vec<Rect> = (0..300)
            .map(|i| {
                let t = (i % 100) as f64 * 110.0;
                match i % 4 {
                    0 => Rect::new(t, t, t + 900.0, t + 900.0),
                    1 => Rect::new(t, t, t, t), // point query
                    2 => Rect::new(mbr.hi.x + t + 1.0, 0.0, mbr.hi.x + t + 2.0, 10.0),
                    _ => Rect::new(0.0, t, 1_500.0, t + 1_500.0),
                }
            })
            .collect();
        let serial = gt.counts_with_threads(&queries, 1);
        for threads in [0usize, 2, 3, 8] {
            assert_eq!(
                gt.counts_with_threads(&queries, threads),
                serial,
                "threads = {threads}"
            );
        }
        assert_eq!(gt.counts(&queries), serial);
    }
}
