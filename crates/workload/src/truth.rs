//! Exact ground-truth result sizes via a bulk-loaded R\*-tree.

use minskew_data::Dataset;
use minskew_geom::Rect;
use minskew_rtree::{Item, RStarTree, RTreeConfig};

/// Exact query-result sizes for a dataset.
///
/// Wraps an STR-bulk-loaded R\*-tree; answering a query costs roughly
/// `O(√N + k)` instead of the `O(N)` scan, which is what makes evaluating
/// 10 000 queries per experiment point over 400 000+ rectangles practical.
pub struct GroundTruth {
    tree: RStarTree<()>,
}

impl GroundTruth {
    /// Indexes the dataset (STR bulk load, high fan-out for read-only use).
    pub fn index(data: &Dataset) -> GroundTruth {
        let items = data.rects().iter().map(|&r| Item::new(r, ())).collect();
        GroundTruth {
            tree: RStarTree::bulk_load(RTreeConfig::with_max_entries(64), items),
        }
    }

    /// Exact number of input rectangles intersecting `query`.
    pub fn count(&self, query: &Rect) -> usize {
        self.tree.count_intersecting(query)
    }

    /// Exact counts for a batch of queries.
    ///
    /// Large batches are spread across all available cores (the tree is
    /// read-only, so the fan-out is a plain scoped-thread split); small
    /// batches run inline to avoid thread overhead.
    pub fn counts(&self, queries: &[Rect]) -> Vec<usize> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if threads <= 1 || queries.len() < 256 {
            return queries.iter().map(|q| self.count(q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| scope.spawn(move || qs.iter().map(|q| self.count(q)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("counting thread panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    #[test]
    fn matches_brute_force() {
        let ds = charminar_with(3_000, 1);
        let gt = GroundTruth::index(&ds);
        for (i, q) in [
            Rect::new(0.0, 0.0, 2_000.0, 2_000.0),
            Rect::new(4_000.0, 4_000.0, 6_000.0, 6_000.0),
            Rect::new(9_000.0, 0.0, 10_000.0, 1_000.0),
            Rect::new(5_000.0, 5_000.0, 5_000.0, 5_000.0),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                gt.count(q),
                ds.count_intersecting(q),
                "query {i} disagrees with the scan"
            );
        }
    }

    #[test]
    fn batch_counts() {
        let ds = charminar_with(1_000, 2);
        let gt = GroundTruth::index(&ds);
        let queries = vec![Rect::new(0.0, 0.0, 5_000.0, 5_000.0); 3];
        let counts = gt.counts(&queries);
        assert_eq!(counts.len(), 3);
        assert!(counts.iter().all(|&c| c == counts[0]));
    }
}
