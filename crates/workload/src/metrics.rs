//! Error metrics: the paper's average relative error plus auxiliaries.

use minskew_core::SpatialEstimator;

use crate::{GroundTruth, QueryWorkload};

/// Accuracy of one estimator over one query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// Technique name.
    pub name: String,
    /// The paper's §5 metric: `Σᵢ |rᵢ − eᵢ| / Σᵢ rᵢ`.
    pub avg_relative_error: f64,
    /// Mean of per-query `|rᵢ − eᵢ| / max(rᵢ, 1)` (a common alternative;
    /// more sensitive to errors on small results).
    pub mean_per_query_error: f64,
    /// Root-mean-square absolute error.
    pub rms_error: f64,
    /// Number of queries evaluated.
    pub queries: usize,
    /// Summary footprint in bytes.
    pub size_bytes: usize,
}

impl std::fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} avg-rel-err {:6.2}%  per-query {:6.2}%  rms {:9.2}  ({} B)",
            self.name,
            self.avg_relative_error * 100.0,
            self.mean_per_query_error * 100.0,
            self.rms_error,
            self.size_bytes,
        )
    }
}

/// A bootstrap confidence interval for the average relative error.
///
/// Resampling the query set (with replacement) quantifies how much the
/// reported error depends on the particular 10,000 queries drawn — the
/// error bars missing from the paper's plots. Deterministic given `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorInterval {
    /// The point estimate (same value as
    /// [`ErrorReport::avg_relative_error`]).
    pub mean: f64,
    /// Lower bound of the central 95% bootstrap interval.
    pub lo: f64,
    /// Upper bound of the central 95% bootstrap interval.
    pub hi: f64,
}

/// Bootstraps a 95% confidence interval for the average relative error of
/// `estimator` over `workload` (default 200 resamples).
///
/// # Panics
///
/// Same preconditions as [`evaluate`]; additionally `resamples >= 10`.
pub fn bootstrap_error(
    estimator: &dyn SpatialEstimator,
    workload: &QueryWorkload,
    truth_counts: &[usize],
    resamples: usize,
    seed: u64,
) -> ErrorInterval {
    use rand::{Rng, SeedableRng};
    assert_eq!(truth_counts.len(), workload.len());
    assert!(resamples >= 10, "too few resamples for an interval");
    let n = workload.len();
    // Precompute per-query (abs error, truth) once; resampling then only
    // aggregates.
    let pairs: Vec<(f64, f64)> = workload
        .queries()
        .iter()
        .zip(truth_counts)
        .map(|(q, &r)| {
            let e = estimator.estimate_count(q);
            ((e - r as f64).abs(), r as f64)
        })
        .collect();
    let point = {
        let num: f64 = pairs.iter().map(|p| p.0).sum();
        let den: f64 = pairs.iter().map(|p| p.1).sum();
        num / den
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut stats: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut num = 0.0;
            let mut den = 0.0;
            for _ in 0..n {
                let (e, r) = pairs[rng.gen_range(0..n)];
                num += e;
                den += r;
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        })
        .collect();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let lo = stats[(resamples as f64 * 0.025) as usize];
    let hi = stats[((resamples as f64 * 0.975) as usize).min(resamples - 1)];
    ErrorInterval {
        mean: point,
        lo,
        hi,
    }
}

/// Evaluates an estimator against exact counts.
///
/// `truth_counts` must be the exact result sizes of `workload`'s queries in
/// order (from [`GroundTruth::counts`], computed once and shared across the
/// estimators being compared).
///
/// # Panics
///
/// Panics if `truth_counts.len() != workload.len()`, or if every query has
/// an empty result (the paper's metric is undefined then; §5 footnote).
pub fn evaluate(
    estimator: &dyn SpatialEstimator,
    workload: &QueryWorkload,
    truth_counts: &[usize],
) -> ErrorReport {
    assert_eq!(
        truth_counts.len(),
        workload.len(),
        "one exact count per query required"
    );
    let mut abs_sum = 0.0;
    let mut truth_sum = 0.0;
    let mut per_query = 0.0;
    let mut sq_sum = 0.0;
    for (q, &r) in workload.queries().iter().zip(truth_counts) {
        let e = estimator.estimate_count(q);
        let r = r as f64;
        let abs = (e - r).abs();
        abs_sum += abs;
        truth_sum += r;
        per_query += abs / r.max(1.0);
        sq_sum += abs * abs;
    }
    assert!(
        truth_sum > 0.0,
        "average relative error undefined: all queries empty"
    );
    let n = workload.len() as f64;
    ErrorReport {
        name: estimator.name().to_owned(),
        avg_relative_error: abs_sum / truth_sum,
        mean_per_query_error: per_query / n,
        rms_error: (sq_sum / n).sqrt(),
        queries: workload.len(),
        // Paper accounting: the summary competes for the space budget;
        // serving-only caches (index, SoA plane) are excluded.
        size_bytes: estimator.summary_bytes(),
    }
}

/// Convenience: index the data, generate the workload, and evaluate several
/// estimators against the same exact counts. Returns one report per
/// estimator, in input order.
pub fn evaluate_all(
    estimators: &[&dyn SpatialEstimator],
    workload: &QueryWorkload,
    truth: &GroundTruth,
) -> Vec<ErrorReport> {
    let counts = truth.counts(workload.queries());
    estimators
        .iter()
        .map(|e| evaluate(*e, workload, &counts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_core::{build_uniform, MinSkewBuilder};
    use minskew_data::Dataset;
    use minskew_datagen::charminar_with;
    use minskew_geom::Rect;

    #[test]
    fn perfect_estimator_scores_zero() {
        // A whole-space query is answered exactly by any covering
        // histogram (every bucket fully contained), so the error is zero.
        let ds = charminar_with(1_000, 1);
        let h = MinSkewBuilder::new(10).regions(400).build(&ds);
        let whole = ds.stats().mbr;
        let w = QueryWorkload::from_queries(vec![whole; 4], 1.0);
        let gt = GroundTruth::index(&ds);
        let counts = gt.counts(w.queries());
        let rep = evaluate(&h, &w, &counts);
        assert!(rep.avg_relative_error < 1e-9, "{}", rep.avg_relative_error);
        assert_eq!(rep.queries, 4);
    }

    #[test]
    fn metric_matches_hand_computation() {
        // Two queries with truths 10 and 90; a constant-50 estimator.
        struct Const;
        impl SpatialEstimator for Const {
            fn estimate_count(&self, _q: &Rect) -> f64 {
                50.0
            }
            fn input_len(&self) -> usize {
                100
            }
            fn name(&self) -> &str {
                "Const"
            }
            fn size_bytes(&self) -> usize {
                8
            }
        }
        let ds = Dataset::new(vec![Rect::new(0.0, 0.0, 1.0, 1.0); 10]);
        let w = QueryWorkload::generate(&ds, 0.5, 2, 3);
        let rep = evaluate(&Const, &w, &[10, 90]);
        // (|50-10| + |50-90|) / (10+90) = 80/100.
        assert!((rep.avg_relative_error - 0.8).abs() < 1e-12);
        // per-query: (40/10 + 40/90)/2.
        let expected = (4.0 + 40.0 / 90.0) / 2.0;
        assert!((rep.mean_per_query_error - expected).abs() < 1e-12);
        assert!((rep.rms_error - 40.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_all_orders_reports() {
        let ds = charminar_with(2_000, 4);
        let uni = build_uniform(&ds);
        let ms = MinSkewBuilder::new(20).regions(400).build(&ds);
        let w = QueryWorkload::generate(&ds, 0.1, 200, 5);
        let gt = GroundTruth::index(&ds);
        let reports = evaluate_all(&[&uni, &ms], &w, &gt);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "Uniform");
        assert_eq!(reports[1].name, "Min-Skew");
        // Min-Skew beats Uniform on Charminar.
        assert!(reports[1].avg_relative_error < reports[0].avg_relative_error);
    }

    #[test]
    #[should_panic(expected = "one exact count per query")]
    fn mismatched_counts_rejected() {
        let ds = charminar_with(100, 6);
        let h = build_uniform(&ds);
        let w = QueryWorkload::generate(&ds, 0.1, 5, 7);
        evaluate(&h, &w, &[1, 2, 3]);
    }

    #[test]
    fn bootstrap_interval_brackets_the_point_estimate() {
        let ds = charminar_with(3_000, 20);
        let h = MinSkewBuilder::new(30).regions(900).build(&ds);
        let w = QueryWorkload::generate(&ds, 0.1, 400, 21);
        let gt = GroundTruth::index(&ds);
        let counts = gt.counts(w.queries());
        let rep = evaluate(&h, &w, &counts);
        let ci = bootstrap_error(&h, &w, &counts, 200, 22);
        assert!((ci.mean - rep.avg_relative_error).abs() < 1e-12);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi, "{ci:?}");
        assert!(ci.hi - ci.lo < 1.0, "interval implausibly wide: {ci:?}");
        // Deterministic per seed.
        assert_eq!(ci, bootstrap_error(&h, &w, &counts, 200, 22));
        assert_ne!(ci, bootstrap_error(&h, &w, &counts, 200, 23));
    }

    #[test]
    fn bootstrap_narrows_with_more_queries() {
        let ds = charminar_with(3_000, 24);
        let h = MinSkewBuilder::new(30).regions(900).build(&ds);
        let gt = GroundTruth::index(&ds);
        let width = |count: usize| {
            let w = QueryWorkload::generate(&ds, 0.1, count, 25);
            let counts = gt.counts(w.queries());
            let ci = bootstrap_error(&h, &w, &counts, 200, 26);
            ci.hi - ci.lo
        };
        assert!(
            width(1_600) < width(100),
            "a 16x bigger query set should shrink the interval"
        );
    }

    #[test]
    fn display_is_readable() {
        let ds = charminar_with(500, 8);
        let h = build_uniform(&ds);
        let w = QueryWorkload::generate(&ds, 0.2, 50, 9);
        let gt = GroundTruth::index(&ds);
        let rep = evaluate(&h, &w, &gt.counts(w.queries()));
        let s = rep.to_string();
        assert!(s.contains("Uniform") && s.contains('%'));
    }
}
